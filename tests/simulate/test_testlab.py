"""The virtual lab."""

import pytest

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.simulate.testing import TestLab


class TestLabBasics:
    def test_perfect_positive_pool(self):
        lab = TestLab(PerfectTest(), truth_mask=0b0100, rng=0)
        assert lab.run(0b0110) is True

    def test_perfect_negative_pool(self):
        lab = TestLab(PerfectTest(), truth_mask=0b0100, rng=0)
        assert lab.run(0b1001) is False

    def test_counters(self):
        lab = TestLab(PerfectTest(), truth_mask=0, rng=0)
        lab.run(0b111)
        lab.run(0b1)
        assert lab.num_tests == 2
        assert lab.stats.num_samples_used == 4
        assert len(lab.stats.history) == 2

    def test_empty_pool_rejected(self):
        lab = TestLab(PerfectTest(), truth_mask=0, rng=0)
        with pytest.raises(ValueError):
            lab.run(0)

    def test_run_batch_order(self):
        lab = TestLab(PerfectTest(), truth_mask=0b01, rng=0)
        outcomes = lab.run_batch([0b01, 0b10])
        assert outcomes == [True, False]

    def test_noise_uses_rng_deterministically(self):
        model = BinaryErrorModel(0.7, 0.7)
        a = TestLab(model, truth_mask=0b1, rng=42)
        b = TestLab(model, truth_mask=0b1, rng=42)
        assert [a.run(0b1) for _ in range(20)] == [b.run(0b1) for _ in range(20)]

    def test_history_records_outcomes(self):
        lab = TestLab(PerfectTest(), truth_mask=0b1, rng=0)
        lab.run(0b1)
        pool, outcome = lab.stats.history[0]
        assert pool == 0b1 and outcome is True
