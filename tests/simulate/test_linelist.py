"""Line-list generation and the covariate risk model."""

import numpy as np
import pytest

from repro.simulate.linelist import (
    LogisticRiskModel,
    PersonRecord,
    generate_line_list,
    line_list_to_prior,
)


def make_record(**overrides) -> PersonRecord:
    base = dict(
        person_id=0,
        age_band=1,
        symptomatic=False,
        known_exposure=False,
        days_since_exposure=-1,
        vaccinated=False,
        household_size=2,
    )
    base.update(overrides)
    return PersonRecord(**base)


class TestLogisticRiskModel:
    def test_risk_is_probability(self):
        model = LogisticRiskModel()
        assert 0.0 < model.risk(make_record()) < 1.0

    def test_symptoms_raise_risk(self):
        model = LogisticRiskModel()
        assert model.risk(make_record(symptomatic=True)) > model.risk(make_record())

    def test_exposure_raises_risk(self):
        model = LogisticRiskModel()
        assert model.risk(
            make_record(known_exposure=True, days_since_exposure=1)
        ) > model.risk(make_record())

    def test_risk_decays_with_days_since_exposure(self):
        model = LogisticRiskModel()
        fresh = model.risk(make_record(known_exposure=True, days_since_exposure=0))
        stale = model.risk(make_record(known_exposure=True, days_since_exposure=9))
        assert fresh > stale

    def test_vaccination_protects(self):
        model = LogisticRiskModel()
        assert model.risk(make_record(vaccinated=True)) < model.risk(make_record())

    def test_age_gradient(self):
        model = LogisticRiskModel()
        young = model.risk(make_record(age_band=0))
        old = model.risk(make_record(age_band=3))
        assert old > young

    def test_household_size_raises_risk(self):
        model = LogisticRiskModel()
        assert model.risk(make_record(household_size=6)) > model.risk(
            make_record(household_size=1)
        )

    def test_vector_matches_scalar(self):
        model = LogisticRiskModel()
        records = [make_record(person_id=i, symptomatic=i % 2 == 0) for i in range(5)]
        vec = model.risks(records)
        assert np.allclose(vec, [model.risk(r) for r in records])


class TestGenerateLineList:
    def test_count_and_ids(self):
        records = generate_line_list(50, rng=0)
        assert len(records) == 50
        assert [r.person_id for r in records] == list(range(50))

    def test_deterministic(self):
        a = generate_line_list(20, rng=7)
        b = generate_line_list(20, rng=7)
        assert a == b

    def test_exposure_rate_roughly_respected(self):
        records = generate_line_list(4000, rng=1, exposure_rate=0.3)
        rate = sum(r.known_exposure for r in records) / 4000
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_symptoms_correlate_with_exposure(self):
        records = generate_line_list(6000, rng=2)
        exposed = [r for r in records if r.known_exposure]
        unexposed = [r for r in records if not r.known_exposure]
        rate_e = sum(r.symptomatic for r in exposed) / len(exposed)
        rate_u = sum(r.symptomatic for r in unexposed) / len(unexposed)
        assert rate_e > rate_u * 1.5

    def test_days_since_exposure_consistency(self):
        for r in generate_line_list(200, rng=3):
            if r.known_exposure:
                assert 0 <= r.days_since_exposure < 10
            else:
                assert r.days_since_exposure == -1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            generate_line_list(0)


class TestLineListToPrior:
    def test_end_to_end_prior(self):
        records = generate_line_list(12, rng=4)
        prior = line_list_to_prior(records)
        assert prior.n_items == 12
        assert np.all(prior.risks > 0) and np.all(prior.risks < 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_list_to_prior([])

    def test_screening_from_line_list(self):
        from repro.bayes.dilution import BinaryErrorModel
        from repro.halving.policy import BHAPolicy
        from repro.workflows.classify import run_screen

        prior = line_list_to_prior(generate_line_list(10, rng=5))
        result = run_screen(prior, BinaryErrorModel(0.99, 0.995), BHAPolicy(), rng=6)
        assert result.confusion.n_items == 10
