"""Scenario presets."""

import pytest

from repro.bayes.dilution import ResponseModel
from repro.simulate.scenario import SCENARIOS, get_scenario


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_build(self, name):
        prior, model = get_scenario(name).build(8, rng=0)
        assert prior.n_items == 8
        assert isinstance(model, ResponseModel)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_scenario("marsbase")

    def test_outbreak_has_high_risk_tier(self):
        prior, _ = get_scenario("outbreak").build(8, rng=0)
        assert prior.risks.max() > 0.2
        assert prior.risks.min() < 0.05

    def test_community_low_uniform(self):
        prior, _ = get_scenario("community").build(10, rng=0)
        assert prior.risks.max() == pytest.approx(0.02)

    def test_hospital_continuous_model(self):
        _, model = get_scenario("hospital").build(4, rng=0)
        assert model.binary is False
