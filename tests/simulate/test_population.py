"""Cohort generation and ground truth."""

import numpy as np
import dataclasses

import pytest

from repro.bayes.priors import PriorSpec
from repro.simulate.population import Cohort, draw_truth, make_cohort


class TestDrawTruth:
    def test_deterministic(self):
        risks = np.full(10, 0.3)
        assert draw_truth(risks, rng=7) == draw_truth(risks, rng=7)

    def test_zero_risk_no_positives(self):
        assert draw_truth(np.full(8, 1e-12), rng=0) == 0

    def test_certain_risk_all_positive(self):
        assert draw_truth(np.full(4, 1 - 1e-12), rng=0) == 0b1111

    def test_frequency_matches_risk(self):
        rng = np.random.default_rng(0)
        risks = np.full(1, 0.25)
        hits = sum(draw_truth(risks, rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.25, abs=0.03)


class TestCohort:
    def test_properties(self):
        cohort = Cohort(PriorSpec.uniform(6, 0.1), truth_mask=0b100101)
        assert cohort.n_items == 6
        assert cohort.n_positive == 3
        assert cohort.true_prevalence == 0.5
        assert cohort.positives() == [0, 2, 5]

    def test_is_positive(self):
        cohort = Cohort(PriorSpec.uniform(3, 0.1), truth_mask=0b010)
        assert cohort.is_positive(1)
        assert not cohort.is_positive(0)

    def test_frozen(self):
        cohort = Cohort(PriorSpec.uniform(2, 0.1), 0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cohort.truth_mask = 3


class TestMakeCohort:
    def test_truth_from_prior(self):
        prior = PriorSpec.uniform(8, 0.2)
        cohort = make_cohort(prior, rng=1)
        assert cohort.prior is prior
        assert 0 <= cohort.truth_mask < (1 << 8)

    def test_misspecified_truth(self):
        prior = PriorSpec.uniform(4, 1e-9)
        cohort = make_cohort(prior, rng=0, truth_risks=np.full(4, 1 - 1e-12))
        assert cohort.truth_mask == 0b1111  # truth ignores the prior

    def test_truth_risks_length_checked(self):
        with pytest.raises(ValueError):
            make_cohort(PriorSpec.uniform(4, 0.1), truth_risks=np.array([0.5]))

    def test_deterministic(self):
        prior = PriorSpec.uniform(10, 0.3)
        assert make_cohort(prior, rng=5).truth_mask == make_cohort(prior, rng=5).truth_mask
