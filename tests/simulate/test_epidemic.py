"""SIR dynamics and surveillance prior streams."""

import numpy as np
import pytest

from repro.simulate.epidemic import sir_prevalence, surveillance_priors


class TestSirPrevalence:
    def test_length(self):
        assert sir_prevalence(30).shape == (30,)

    def test_starts_at_i0(self):
        assert sir_prevalence(10, i0=0.005)[0] == pytest.approx(0.005)

    def test_valid_fractions(self):
        series = sir_prevalence(200, beta=0.4, gamma=0.05, i0=0.01)
        assert np.all(series >= 0) and np.all(series <= 1)

    def test_epidemic_wave_shape(self):
        series = sir_prevalence(300, beta=0.3, gamma=0.1, i0=0.001)
        peak = series.argmax()
        assert 0 < peak < 299  # rises then falls
        assert series[peak] > series[0]
        assert series[-1] < series[peak]

    def test_no_transmission_decays(self):
        series = sir_prevalence(50, beta=0.0, gamma=0.2, i0=0.1)
        assert np.all(np.diff(series) <= 0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sir_prevalence(0)
        with pytest.raises(ValueError):
            sir_prevalence(10, beta=-1)

    def test_deterministic(self):
        a = sir_prevalence(40, beta=0.3, gamma=0.1, i0=0.01)
        b = sir_prevalence(40, beta=0.3, gamma=0.1, i0=0.01)
        assert np.array_equal(a, b)

    def test_boundary_i0_zero_stays_zero(self):
        series = sir_prevalence(20, beta=0.5, gamma=0.1, i0=0.0)
        assert np.all(series == 0.0)

    def test_boundary_i0_one_decays_to_zero(self):
        series = sir_prevalence(200, beta=0.5, gamma=0.2, i0=1.0)
        assert series[0] == 1.0
        assert np.all(np.diff(series) <= 0)  # S=0: pure recovery
        assert series[-1] < 1e-10
        assert np.all((series >= 0) & (series <= 1))


class TestSurveillancePriors:
    def test_one_prior_per_day(self):
        series = sir_prevalence(5)
        days = list(surveillance_priors(series, cohort_size=6, rng=0))
        assert [d for d, _p in days] == [0, 1, 2, 3, 4]
        assert all(p.n_items == 6 for _d, p in days)

    def test_risks_track_prevalence(self):
        series = np.array([0.01, 0.3])
        days = list(surveillance_priors(series, cohort_size=2000, dispersion=50, rng=0))
        assert days[0][1].risks.mean() < days[1][1].risks.mean()

    def test_deterministic(self):
        series = sir_prevalence(3)
        a = [p.risks for _d, p in surveillance_priors(series, 5, rng=9)]
        b = [p.risks for _d, p in surveillance_priors(series, 5, rng=9)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_boundary_prevalences_clip_to_valid_risks(self):
        series = np.array([0.0, 1.0])
        days = list(surveillance_priors(series, cohort_size=50, rng=0))
        for _day, prior in days:
            assert np.all((prior.risks > 0) & (prior.risks < 1))
        assert days[0][1].risks.mean() < 0.05
        assert days[1][1].risks.mean() > 0.95


class TestCrossSiteIndependence:
    """Sites sharing a base seed must see independent risk streams.

    This is the seeding discipline multi-site campaigns rely on: per-site
    generators are derived from ``SeedSequence([base, site])``, so the
    same base seed replays the whole fleet while no two sites share a
    stream.
    """

    @staticmethod
    def _site_risks(base, site, series, cohort=12):
        rng = np.random.default_rng(np.random.SeedSequence([base, site]))
        return [p.risks for _d, p in surveillance_priors(series, cohort, rng=rng)]

    def test_same_site_replays(self):
        series = sir_prevalence(4, beta=0.4, i0=0.02)
        for x, y in zip(self._site_risks(7, 1, series), self._site_risks(7, 1, series)):
            assert np.array_equal(x, y)

    def test_different_sites_diverge(self):
        series = sir_prevalence(4, beta=0.4, i0=0.02)
        a = self._site_risks(7, 0, series)
        b = self._site_risks(7, 1, series)
        assert not any(np.array_equal(x, y) for x, y in zip(a, b))

    def test_campaign_seed_helper_is_site_independent(self):
        from repro.surveil import site_screen_seed

        fleet_seeds = [site_screen_seed(7, 0, k, 0) for k in range(6)]
        assert len(set(fleet_seeds)) == 6
        assert fleet_seeds == [site_screen_seed(7, 0, k, 0) for k in range(6)]
