"""Screens driven from arbitrary (correlated) prior state spaces."""

import numpy as np
import pytest

from repro.bayes.correlated import HouseholdPrior
from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.simulate.population import draw_truth_from_space
from repro.workflows.classify import run_screen, run_screen_from_space


class TestDrawTruthFromSpace:
    def test_deterministic(self):
        space = HouseholdPrior([3, 3], 0.1, 0.6).build_dense()
        assert draw_truth_from_space(space, 4) == draw_truth_from_space(space, 4)

    def test_truth_is_valid_state(self):
        space = HouseholdPrior([2, 2], 0.1, 0.6).build_dense()
        truth = draw_truth_from_space(space, 0)
        assert truth in set(space.masks.tolist())

    def test_frequency_matches_marginal(self):
        hp = HouseholdPrior([3], 0.2, 0.5)
        space = hp.build_dense()
        rng = np.random.default_rng(0)
        hits = sum(
            bin(draw_truth_from_space(space, rng)).count("1") for _ in range(3000)
        )
        assert hits / (3000 * 3) == pytest.approx(hp.marginal_risk(), abs=0.01)


class TestRunScreenFromSpace:
    def test_household_screen_completes(self):
        space = HouseholdPrior([4, 4], 0.1, 0.65).build_dense()
        result = run_screen_from_space(space, PerfectTest(), BHAPolicy(), rng=1)
        assert result.report.all_classified
        assert result.accuracy == 1.0
        assert result.confusion.n_items == 8

    def test_fixed_truth_respected(self):
        space = HouseholdPrior([3, 3], 0.1, 0.6).build_dense()
        result = run_screen_from_space(
            space, PerfectTest(), BHAPolicy(), rng=2, truth_mask=0b000111
        )
        assert result.report.positives() == [0, 1, 2]

    def test_reduces_to_run_screen_for_independent_prior(self):
        # Feeding run_screen's own dense prior through the space driver
        # must replay the identical screen (same truth, rng, policy).
        prior = PriorSpec.uniform(8, 0.07)
        model = BinaryErrorModel(0.98, 0.99)
        from repro.simulate.population import make_cohort

        cohort = make_cohort(prior, rng=9)
        a = run_screen(prior, model, BHAPolicy(), rng=3, cohort=cohort, max_stages=40)
        b = run_screen_from_space(
            prior.build_dense(), model, BHAPolicy(), rng=3,
            truth_mask=cohort.truth_mask, max_stages=40,
        )
        assert a.report.statuses == b.report.statuses
        assert a.efficiency.num_tests == b.efficiency.num_tests

    def test_household_beats_marginal_matched_independent(self):
        # The household example's headline, as a regression test.
        hp = HouseholdPrior([4, 3, 4, 3], intro_prob=0.10, attack_rate=0.65)
        household_space = hp.build_dense()
        indep = PriorSpec.uniform(hp.n_items, hp.marginal_risk())
        model = BinaryErrorModel(0.99, 0.995)
        dep_tests = ind_tests = 0
        for trial in range(6):
            truth = hp.draw_truth(rng=100 + trial)
            dep = run_screen_from_space(
                household_space, model, BHAPolicy(), rng=7, truth_mask=truth
            )
            ind = run_screen_from_space(
                indep.build_dense(), model, BHAPolicy(), rng=7, truth_mask=truth
            )
            dep_tests += dep.efficiency.num_tests
            ind_tests += ind.efficiency.num_tests
        assert dep_tests < ind_tests

    def test_prune_and_entropy_options(self):
        space = HouseholdPrior([3, 3], 0.1, 0.5).build_dense()
        result = run_screen_from_space(
            space, PerfectTest(), BHAPolicy(), rng=5,
            prune_epsilon=1e-9, track_entropy=True,
        )
        gains = [r.information_gain for r in result.posterior.log.records]
        assert all(g is not None for g in gains)
