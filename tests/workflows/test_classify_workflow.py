"""The serial screen driver."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import (
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
    LookaheadPolicy,
)
from repro.simulate.population import Cohort, make_cohort
from repro.workflows.classify import run_screen


class TestRunScreen:
    def test_perfect_test_full_accuracy(self):
        prior = PriorSpec.uniform(10, 0.08)
        result = run_screen(prior, PerfectTest(), BHAPolicy(), rng=13)
        assert result.report.all_classified
        assert result.accuracy == 1.0
        assert result.confusion.sensitivity == 1.0
        assert result.confusion.specificity == 1.0

    def test_deterministic_given_seed(self):
        prior = PriorSpec.uniform(8, 0.1)
        model = DilutionErrorModel(0.97, 0.99, 0.3)
        a = run_screen(prior, model, BHAPolicy(), rng=5)
        b = run_screen(prior, model, BHAPolicy(), rng=5)
        assert a.efficiency.num_tests == b.efficiency.num_tests
        assert a.cohort.truth_mask == b.cohort.truth_mask

    def test_fixed_cohort_respected(self):
        prior = PriorSpec.uniform(6, 0.1)
        cohort = Cohort(prior, truth_mask=0b000101)
        result = run_screen(prior, PerfectTest(), BHAPolicy(), rng=0, cohort=cohort)
        assert result.report.positives() == [0, 2]

    def test_individual_testing_costs_n_tests(self):
        prior = PriorSpec.uniform(9, 0.1)
        result = run_screen(prior, PerfectTest(), IndividualTestingPolicy(), rng=2)
        assert result.efficiency.num_tests == 9
        assert result.stages_used == 1

    def test_bha_beats_individual_at_low_prevalence(self):
        prior = PriorSpec.uniform(12, 0.02)
        totals = {"bha": 0, "individual": 0}
        for seed in range(5):
            totals["bha"] += run_screen(
                prior, PerfectTest(), BHAPolicy(), rng=seed
            ).efficiency.num_tests
            totals["individual"] += run_screen(
                prior, PerfectTest(), IndividualTestingPolicy(), rng=seed
            ).efficiency.num_tests
        assert totals["bha"] < totals["individual"]

    def test_lookahead_uses_fewer_stages_than_bha(self):
        prior = PriorSpec.uniform(10, 0.1)
        bha_stages = la_stages = 0
        for seed in range(5):
            bha_stages += run_screen(prior, PerfectTest(), BHAPolicy(), rng=seed).stages_used
            la_stages += run_screen(
                prior, PerfectTest(), LookaheadPolicy(3), rng=seed
            ).stages_used
        assert la_stages < bha_stages

    def test_dorfman_two_stages_with_perfect_test(self):
        prior = PriorSpec.uniform(8, 0.1)
        result = run_screen(prior, PerfectTest(), DorfmanPolicy(4), rng=1)
        assert result.stages_used <= 2

    def test_stage_budget_exhaustion(self):
        prior = PriorSpec.uniform(8, 0.3)
        model = BinaryErrorModel(0.8, 0.8)  # noisy: needs many tests
        result = run_screen(prior, model, BHAPolicy(), rng=0, max_stages=2)
        assert result.stages_used == 2
        assert result.exhausted_budget
        assert not result.report.all_classified

    def test_pruning_preserves_outcome(self):
        prior = PriorSpec.uniform(10, 0.05)
        cohort = make_cohort(prior, rng=8)
        exact = run_screen(prior, PerfectTest(), BHAPolicy(), rng=1, cohort=cohort)
        pruned = run_screen(
            prior, PerfectTest(), BHAPolicy(), rng=1, cohort=cohort, prune_epsilon=1e-9
        )
        assert pruned.report.statuses == exact.report.statuses

    def test_mismatched_cohort_rejected(self):
        prior = PriorSpec.uniform(4, 0.1)
        other = Cohort(PriorSpec.uniform(6, 0.1), 0)
        with pytest.raises(ValueError):
            run_screen(prior, PerfectTest(), BHAPolicy(), cohort=other)

    def test_track_entropy_records_gains(self):
        prior = PriorSpec.uniform(6, 0.1)
        result = run_screen(
            prior, PerfectTest(), BHAPolicy(), rng=3, track_entropy=True
        )
        gains = [r.information_gain for r in result.posterior.log.records]
        assert all(g is not None for g in gains)

    def test_marginals_are_probabilities(self):
        prior = PriorSpec.uniform(7, 0.15)
        result = run_screen(prior, DilutionErrorModel(), BHAPolicy(), rng=4)
        m = result.report.marginals
        assert np.all(m >= -1e-12) and np.all(m <= 1 + 1e-12)
