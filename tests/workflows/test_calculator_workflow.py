"""The pooling calculator."""

import pytest

from repro.bayes.dilution import PerfectTest
from repro.halving.policy import BHAPolicy
from repro.workflows.calculator import (
    format_calculator_table,
    pooling_calculator,
)


@pytest.fixture(scope="module")
def entries():
    return pooling_calculator(
        PerfectTest(),
        BHAPolicy,
        prevalences=[0.01, 0.30],
        cohort_size=10,
        replications=6,
        rng=0,
    )


class TestPoolingCalculator:
    def test_one_entry_per_prevalence(self, entries):
        assert [e.prevalence for e in entries] == [0.01, 0.30]

    def test_cost_increases_with_prevalence(self, entries):
        assert entries[0].mean_tests_per_individual < entries[1].mean_tests_per_individual

    def test_low_prevalence_pooling_recommended(self, entries):
        assert entries[0].pooling_recommended
        assert entries[0].expected_savings > 0.3

    def test_accuracy_perfect_with_perfect_test(self, entries):
        assert all(e.mean_accuracy == 1.0 for e in entries)

    def test_replication_metadata(self, entries):
        assert all(e.replications == 6 and e.cohort_size == 10 for e in entries)

    def test_invalid_replications(self):
        with pytest.raises(ValueError):
            pooling_calculator(PerfectTest(), BHAPolicy, [0.1], replications=0)

    def test_table_renders(self, entries):
        out = format_calculator_table(entries)
        assert "prevalence" in out
        assert "1.0%" in out
        assert "pool" in out
