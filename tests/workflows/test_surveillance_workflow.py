"""Longitudinal surveillance campaigns."""

import numpy as np
import pytest

from repro.bayes.dilution import PerfectTest
from repro.halving.policy import BHAPolicy
from repro.workflows.surveillance import run_surveillance


@pytest.fixture(scope="module")
def campaign():
    return run_surveillance(
        PerfectTest(), BHAPolicy, days=6, cohort_size=8, rng=0, max_stages=30
    )


class TestSurveillance:
    def test_one_outcome_per_day(self, campaign):
        assert len(campaign.days) == 6
        assert [d.day for d in campaign.days] == list(range(6))

    def test_totals_consistent(self, campaign):
        assert campaign.total_individuals == 48
        assert campaign.total_tests == sum(
            d.result.efficiency.num_tests for d in campaign.days
        )

    def test_series_shapes(self, campaign):
        assert campaign.prevalence_series().shape == (6,)
        assert campaign.tests_per_individual_series().shape == (6,)
        assert campaign.accuracy_series().shape == (6,)

    def test_perfect_test_perfect_accuracy(self, campaign):
        assert np.all(campaign.accuracy_series() == 1.0)

    def test_detection_bookkeeping(self, campaign):
        assert campaign.detected_positives() == campaign.true_positives_present()

    @pytest.mark.parametrize("backend", ["sparse", "particle"])
    def test_backend_parameter(self, backend):
        campaign = run_surveillance(
            PerfectTest(), BHAPolicy, days=2, cohort_size=8, rng=0,
            max_stages=30, backend=backend,
        )
        assert len(campaign.days) == 2
        assert campaign.total_individuals == 16

    def test_dense_backend_is_default_path(self):
        prev = np.array([0.05, 0.05])
        dense = run_surveillance(
            PerfectTest(), BHAPolicy, cohort_size=8, rng=2, prevalence=prev
        )
        explicit = run_surveillance(
            PerfectTest(), BHAPolicy, cohort_size=8, rng=2, prevalence=prev,
            backend="dense",
        )
        assert dense.total_tests == explicit.total_tests
        assert np.array_equal(dense.accuracy_series(), explicit.accuracy_series())

    def test_explicit_prevalence_series(self):
        prev = np.array([0.01, 0.2])
        campaign = run_surveillance(
            PerfectTest(), BHAPolicy, cohort_size=6, rng=1, prevalence=prev
        )
        assert len(campaign.days) == 2
        assert campaign.days[1].prevalence == pytest.approx(0.2)

    def test_estimated_prevalence_tracks_truth(self):
        from repro.bayes.dilution import BinaryErrorModel
        from repro.halving.policy import BHAPolicy
        import numpy as np

        model = BinaryErrorModel(0.98, 0.995)
        prev = np.array([0.01, 0.01, 0.20, 0.20])
        campaign = run_surveillance(
            model, BHAPolicy, cohort_size=12, rng=5, prevalence=prev, dispersion=100
        )
        posteriors = campaign.estimated_prevalence_series(model, window=2)
        assert len(posteriors) == 4
        assert all(p is not None for p in posteriors)
        # Estimated prevalence should rise with the step in truth.
        assert posteriors[3].mean > posteriors[1].mean

    def test_estimated_prevalence_window_smooths(self):
        from repro.bayes.dilution import BinaryErrorModel
        from repro.halving.policy import BHAPolicy
        import numpy as np

        model = BinaryErrorModel(0.98, 0.995)
        campaign = run_surveillance(
            model, BHAPolicy, cohort_size=10, rng=6,
            prevalence=np.full(5, 0.05), dispersion=100,
        )
        narrow = campaign.estimated_prevalence_series(model, window=1)
        wide = campaign.estimated_prevalence_series(model, window=5)
        # Wider window = more data on the last day = tighter interval.
        lo_n, hi_n = narrow[-1].credible_interval()
        lo_w, hi_w = wide[-1].credible_interval()
        assert (hi_w - lo_w) <= (hi_n - lo_n) + 1e-9

    def test_cost_rises_with_prevalence(self):
        # Screening at 1% vs 25% prevalence: pooling saves much more at 1%.
        low = run_surveillance(
            PerfectTest(), BHAPolicy, cohort_size=10, rng=3,
            prevalence=np.full(4, 0.01), dispersion=100,
        )
        high = run_surveillance(
            PerfectTest(), BHAPolicy, cohort_size=10, rng=3,
            prevalence=np.full(4, 0.25), dispersion=100,
        )
        assert low.overall_tests_per_individual < high.overall_tests_per_individual
