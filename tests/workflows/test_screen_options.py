"""ScreenOptions: validation, resolution, and driver equivalence."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.halving.policy import BHAPolicy
from repro.sbgt.session import SBGTSession
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen
from repro.workflows.options import ScreenOptions, resolve_screen_options

MODEL = BinaryErrorModel(0.99, 0.99)
PRIOR = PriorSpec.uniform(6, 0.1)


class TestValidation:
    def test_defaults_are_valid(self):
        opts = ScreenOptions()
        assert opts.positive_threshold == 0.99
        assert opts.negative_threshold == 0.01
        assert opts.max_stages == 50
        assert opts.prune_epsilon == 0.0
        assert opts.track_entropy is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"positive_threshold": 1.5},
            {"negative_threshold": -0.1},
            {"positive_threshold": 0.3, "negative_threshold": 0.4},
            {"positive_threshold": 0.5, "negative_threshold": 0.5},
            {"max_stages": 0},
            {"prune_epsilon": 1.0},
            {"prune_epsilon": -0.01},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScreenOptions(**kwargs)

    def test_with_returns_validated_copy(self):
        opts = ScreenOptions().with_(max_stages=5)
        assert opts.max_stages == 5
        assert ScreenOptions().max_stages == 50  # original untouched
        with pytest.raises(ValueError):
            opts.with_(max_stages=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ScreenOptions().max_stages = 3


class TestResolution:
    def test_options_passed_through(self):
        opts = ScreenOptions(max_stages=7)
        assert resolve_screen_options(opts, {}, "f") is opts

    def test_no_args_yields_defaults(self):
        assert resolve_screen_options(None, {}, "f") == ScreenOptions()

    def test_custom_defaults_used(self):
        d = ScreenOptions(max_stages=9)
        assert resolve_screen_options(None, {}, "f", defaults=d) is d

    def test_legacy_overrides_defaults_with_warning(self):
        d = ScreenOptions(max_stages=9, track_entropy=True)
        with pytest.warns(DeprecationWarning, match="max_stages.*deprecated"):
            out = resolve_screen_options(None, {"max_stages": 3}, "f", defaults=d)
        assert out.max_stages == 3
        assert out.track_entropy is True  # non-overridden defaults survive

    def test_unknown_keyword_raises_type_error(self):
        with pytest.raises(TypeError, match=r"f\(\) got unexpected keyword.*max_stage\b"):
            resolve_screen_options(None, {"max_stage": 3}, "f")

    def test_options_plus_legacy_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_screen_options(ScreenOptions(), {"max_stages": 3}, "f")


class TestWorkflowDriver:
    def test_options_and_legacy_kwargs_equivalent(self):
        cohort = make_cohort(PRIOR, rng=1)
        new = run_screen(
            PRIOR, MODEL, BHAPolicy(), rng=np.random.default_rng(0), cohort=cohort,
            options=ScreenOptions(max_stages=10),
        )
        with pytest.warns(DeprecationWarning):
            old = run_screen(
                PRIOR, MODEL, BHAPolicy(), rng=np.random.default_rng(0), cohort=cohort,
                max_stages=10,
            )
        assert new.stages_used == old.stages_used
        assert new.efficiency.num_tests == old.efficiency.num_tests
        assert new.report.statuses == old.report.statuses

    def test_unknown_kwarg_names_driver(self):
        with pytest.raises(TypeError, match=r"run_screen\(\)"):
            run_screen(PRIOR, MODEL, BHAPolicy(), rng=0, bogus=1)

    def test_max_stages_budget_respected(self):
        cohort = make_cohort(PRIOR, rng=2)
        res = run_screen(
            PRIOR, MODEL, BHAPolicy(), rng=np.random.default_rng(0), cohort=cohort,
            options=ScreenOptions(max_stages=1),
        )
        assert res.stages_used <= 1


class TestSessionDriver:
    def test_session_accepts_options_and_restores_config(self):
        with Context(mode="serial") as ctx:
            session = SBGTSession(ctx, PRIOR, MODEL)
            before = session.config
            res = session.run_screen(
                BHAPolicy(), rng=0, options=ScreenOptions(max_stages=10)
            )
            assert res.stages_used <= 10
            assert session.config == before  # temporary override rolled back

    def test_session_legacy_kwargs_warn_and_match_options(self):
        with Context(mode="serial") as ctx:
            new = SBGTSession(ctx, PRIOR, MODEL).run_screen(
                BHAPolicy(), rng=0, options=ScreenOptions(max_stages=10)
            )
            with pytest.warns(DeprecationWarning, match="SBGTSession.run_screen"):
                old = SBGTSession(ctx, PRIOR, MODEL).run_screen(
                    BHAPolicy(), rng=0, max_stages=10
                )
        assert new.stages_used == old.stages_used
        assert new.report.statuses == old.report.statuses

    def test_session_rejects_options_plus_legacy(self):
        with Context(mode="serial") as ctx:
            session = SBGTSession(ctx, PRIOR, MODEL)
            with pytest.raises(TypeError, match="not both"):
                session.run_screen(
                    BHAPolicy(), rng=0,
                    options=ScreenOptions(), max_stages=3,
                )
