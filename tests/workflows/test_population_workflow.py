"""Population-scale (multi-cohort) screening."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.simulate.population import make_cohort
from repro.workflows.population import (
    screen_population,
    split_into_cohorts,
)


class TestSplitIntoCohorts:
    def test_sizes(self):
        priors = split_into_cohorts(np.full(25, 0.05), 8)
        assert [p.n_items for p in priors] == [8, 8, 8, 1]

    def test_exact_division(self):
        priors = split_into_cohorts(np.full(16, 0.05), 8)
        assert [p.n_items for p in priors] == [8, 8]

    def test_risk_sorting_stratifies(self):
        risks = np.array([0.5, 0.01, 0.4, 0.02, 0.45, 0.03])
        priors = split_into_cohorts(risks, 3)
        assert priors[0].risks.max() < priors[1].risks.min()

    def test_unsorted_preserves_order(self):
        risks = np.array([0.5, 0.01, 0.4])
        priors = split_into_cohorts(risks, 3, sort_by_risk=False)
        assert np.allclose(priors[0].risks, risks)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_into_cohorts(np.array([]), 4)
        with pytest.raises(ValueError):
            split_into_cohorts(np.full(4, 0.1), 0)


class TestScreenPopulation:
    def test_all_cohorts_screened(self, ctx):
        priors = split_into_cohorts(np.full(30, 0.03), 10)
        result = screen_population(ctx, priors, PerfectTest(), BHAPolicy, rng=0)
        assert len(result.screens) == 3
        assert result.total_individuals == 30
        assert result.overall_accuracy == 1.0

    def test_deterministic_given_seed(self, ctx):
        priors = split_into_cohorts(np.full(20, 0.05), 10)
        a = screen_population(ctx, priors, PerfectTest(), BHAPolicy, rng=7)
        b = screen_population(ctx, priors, PerfectTest(), BHAPolicy, rng=7)
        assert a.total_tests == b.total_tests
        assert a.found_positives() == b.found_positives()

    def test_fixed_cohorts_respected(self, ctx):
        priors = [PriorSpec.uniform(6, 0.05), PriorSpec.uniform(6, 0.05)]
        cohorts = [make_cohort(p, rng=i) for i, p in enumerate(priors)]
        result = screen_population(
            ctx, priors, PerfectTest(), BHAPolicy, rng=1, cohorts=cohorts
        )
        truth_positives = []
        for c_i, cohort in enumerate(cohorts):
            truth_positives.extend(6 * c_i + i for i in cohort.positives())
        assert result.found_positives() == truth_positives

    def test_mismatched_cohorts_rejected(self, ctx):
        priors = [PriorSpec.uniform(4, 0.1)]
        with pytest.raises(ValueError):
            screen_population(ctx, priors, PerfectTest(), BHAPolicy, cohorts=[])

    def test_empty_priors_rejected(self, ctx):
        with pytest.raises(ValueError):
            screen_population(ctx, [], PerfectTest(), BHAPolicy)

    def test_max_stages_is_slowest_cohort(self, ctx):
        priors = split_into_cohorts(np.full(24, 0.08), 8)
        result = screen_population(
            ctx, priors, BinaryErrorModel(0.98, 0.99), BHAPolicy, rng=5
        )
        assert result.max_stages == max(s.stages_used for s in result.screens)

    def test_savings_at_scale(self, ctx):
        priors = split_into_cohorts(np.full(60, 0.02), 12)
        result = screen_population(
            ctx, priors, BinaryErrorModel(0.99, 0.995), BHAPolicy, rng=3,
            negative_threshold=0.002,
        )
        assert result.tests_per_individual < 0.6

    def test_process_mode(self, process_ctx):
        priors = split_into_cohorts(np.full(12, 0.05), 6)
        result = screen_population(process_ctx, priors, PerfectTest(), BHAPolicy, rng=2)
        assert result.total_individuals == 12
        assert result.overall_accuracy == 1.0
