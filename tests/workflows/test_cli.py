"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_screen_defaults(self):
        args = build_parser().parse_args(["screen"])
        assert args.cohort == 16
        assert args.assay == "dilution"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["screen", "--policy", "magic"])

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("bha", "bha"),
            ("lookahead-2", "lookahead-2"),
            ("infogain", "infogain"),
            ("dorfman-4", "dorfman-4"),
            ("individual", "individual"),
            ("array-3x4", "array-3x4"),
            ("hybrid", "hybrid-auto"),
            ("hybrid-6", "hybrid-6"),
        ],
    )
    def test_policy_names(self, name, expected):
        args = build_parser().parse_args(["screen", "--policy", name])
        assert args.policy.name == expected

    def test_array_policy_dimensions(self):
        args = build_parser().parse_args(["screen", "--policy", "array-2x5"])
        assert args.policy.rows == 2
        assert args.policy.cols == 5

    def test_hybrid_pool_size(self):
        args = build_parser().parse_args(["screen", "--policy", "hybrid-6"])
        assert args.policy.pool_size == 6


class TestCommands:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "community" in out and "outbreak" in out and "hospital" in out

    def test_screen_runs(self, capsys):
        rc = main(
            ["screen", "--cohort", "8", "--prevalence", "0.05", "--seed", "1",
             "--assay", "perfect", "--workers", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "tests/individual" in out
        assert "accuracy" in out

    def test_screen_with_scenario_and_compaction(self, capsys):
        rc = main(
            ["screen", "--scenario", "outbreak", "--cohort", "8", "--seed", "2",
             "--compact", "--workers", "2"]
        )
        assert rc == 0
        assert "Screen (bha)" in capsys.readouterr().out

    def test_screen_cohort_bound(self, capsys):
        assert main(["screen", "--cohort", "40"]) == 2
        assert "must be in [1, 24]" in capsys.readouterr().err

    def test_calculator_runs(self, capsys):
        rc = main(
            ["calculator", "--prevalences", "0.01", "0.2", "--replications", "2",
             "--cohort", "8", "--assay", "binary", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "1.0%" in out

    def test_surveillance_runs(self, capsys):
        rc = main(["surveillance", "--days", "3", "--cohort", "6", "--assay",
                   "perfect", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "totals:" in out

    def test_surveillance_backend_flag(self, capsys):
        rc = main(["surveillance", "--days", "2", "--cohort", "6", "--assay",
                   "perfect", "--seed", "4", "--backend", "sparse"])
        assert rc == 0
        assert "totals:" in capsys.readouterr().out

    def test_surveil_runs(self, capsys):
        rc = main(["surveil", "--sites", "3", "--cohort", "6", "--rounds", "2",
                   "--budget", "2", "--seed", "1", "--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Surveil campaign (thompson allocator)" in out
        assert "site-00" in out
        assert "learned hyperprior mean" in out

    def test_surveil_json_deterministic(self, capsys):
        argv = ["surveil", "--json", "--sites", "3", "--cohort", "6",
                "--rounds", "2", "--budget", "2", "--seed", "1", "--workers", "2"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second

    def test_surveil_rejects_bad_allocator(self, capsys):
        assert main(["surveil", "--allocator", "ucb", "--rounds", "1"]) == 2
        assert "unknown allocator" in capsys.readouterr().err

    def test_screen_deterministic(self, capsys):
        argv = ["screen", "--cohort", "8", "--seed", "7", "--assay", "binary",
                "--workers", "2"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestObservabilityCommands:
    def test_metrics_json_snapshot(self, capsys):
        import json

        rc = main(["metrics", "--cohort", "8", "--seed", "1", "--workers", "2"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert "repro_engine_jobs_total" in snap
        assert "repro_engine_task_cpu_seconds_total" in snap

    def test_metrics_prometheus_validates(self, capsys):
        from repro.obs.metrics import validate_prometheus_text

        rc = main(["metrics", "--prom", "--cohort", "8", "--seed", "1",
                   "--workers", "2"])
        assert rc == 0
        text = capsys.readouterr().out
        assert validate_prometheus_text(text) > 0
        assert "# TYPE repro_engine_jobs_total counter" in text

    def test_screen_profile_writes_collapsed_and_flamegraph(
        self, capsys, tmp_path
    ):
        prefix = tmp_path / "prof"
        rc = main(["screen", "--cohort", "8", "--seed", "1", "--workers", "2",
                   "--profile", str(prefix), "--profile-hz", "400"])
        assert rc == 0
        collapsed = (tmp_path / "prof.collapsed").read_text()
        assert collapsed.strip(), "collapsed file must not be empty"
        for line in collapsed.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack and int(count) > 0
        html = (tmp_path / "prof.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "repro screen" in html
