"""Runtime bridge: pickling failures name the capture, and each seeded
closure defect that the analyzer flags statically is shown to fail (or
silently corrupt results) under the processes executor."""

from __future__ import annotations

import threading

import pytest

from repro.engine import ClosureSerializationError, Context, EngineError
from repro.engine.closure import serialize
from repro.lint import analyze_source, find_unpicklable
from repro.lint.bridge import capture_report


def _can_pickle(value):
    try:
        serialize(value)
        return True
    except Exception:
        return False


class TestFindUnpicklable:
    def test_closure_cell_named(self):
        lock = threading.Lock()

        def guarded(x):
            with lock:
                return x

        issue = find_unpicklable(guarded, _can_pickle)
        assert issue is not None
        assert issue.rule == "C102"
        assert "closure cell 'lock'" in issue.path[-1]
        assert "function 'guarded'" in issue.path[-1]

    def test_default_named(self):
        def f(x, q=threading.Lock()):  # noqa: B008 - deliberate defect
            return x

        issue = find_unpicklable(f, _can_pickle)
        assert issue is not None
        assert "default" in issue.path[-1]

    def test_container_path(self):
        issue = find_unpicklable({"outer": [1, threading.Lock()]}, _can_pickle)
        assert issue is not None
        assert issue.path == ("['outer']", "[1]")
        assert issue.rule == "C102"

    def test_picklable_payload_yields_none(self):
        assert find_unpicklable({"a": [1, 2, (3,)]}, _can_pickle) is None
        assert capture_report(lambda x: x + 1, _can_pickle) is None


class TestClosureSerializationError:
    def test_serialize_names_capture_and_lint(self):
        lock = threading.Lock()

        def guarded(x):
            with lock:
                return x

        with pytest.raises(ClosureSerializationError) as exc_info:
            serialize(guarded)
        err = exc_info.value
        assert "closure cell 'lock'" in str(err)
        assert "python -m repro lint" in str(err)
        assert err.rule == "C102"
        assert any("guarded" in hop for hop in err.capture_path)

    def test_generator_capture(self):
        gen = (i for i in range(3))
        with pytest.raises(ClosureSerializationError) as exc_info:
            serialize(lambda x: next(gen) + x)
        assert "closure cell 'gen'" in str(exc_info.value)


@pytest.fixture(scope="module")
def proc_ctx():
    with Context(mode="processes", parallelism=2) as c:
        yield c


class TestSeededDefectsUnderProcesses:
    """Each C-rule's seeded defect, proven against the real executor."""

    def test_c102_lock_capture_dies_at_serialize(self, proc_ctx):
        lock = threading.Lock()

        def guarded(x):
            with lock:
                return x + 1

        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def guarded(x):\n"
            "    with lock:\n"
            "        return x + 1\n"
            "rdd.map(guarded).collect()\n"
        )
        assert [f.rule for f in analyze_source(src)] == ["C102"]
        with pytest.raises(ClosureSerializationError, match="closure cell 'lock'"):
            proc_ctx.parallelize(range(4), 2).map(guarded).collect()

    def test_c101_context_capture_fails_mid_job(self, proc_ctx):
        src = (
            "from repro.engine import Context\n"
            "ctx = Context(mode='processes')\n"
            "rdd = ctx.parallelize(range(4), 2)\n"
            "rdd.map(lambda x: ctx.parallelize([x]).count()).collect()\n"
        )
        assert [f.rule for f in analyze_source(src)] == ["C101"]
        # At runtime the worker receives a stopped stub and the task dies
        # mid-job — the analyzer catches it before any fork happens.
        with pytest.raises(EngineError):
            proc_ctx.parallelize(range(4), 2).map(
                lambda x: proc_ctx.parallelize([x]).count()
            ).collect()

    def test_c103_global_write_is_silently_lost(self, proc_ctx):
        import tests.lint.mutable_state as state

        src = (
            "SEEN = 0\n"
            "def tally(x):\n"
            "    global SEEN\n"
            "    SEEN += 1\n"
            "    return x\n"
            "rdd.map(tally).collect()\n"
        )
        assert [f.rule for f in analyze_source(src)] == ["C103"]
        state.SEEN = 0
        out = proc_ctx.parallelize(range(8), 2).map(state.tally).collect()
        assert sorted(out) == list(range(8))
        # The defect the rule exists for: every task incremented a forked
        # copy; the driver's module global never moved.
        assert state.SEEN == 0

    def test_c105_accumulator_read_sees_stub_zero(self, proc_ctx):
        src = (
            "count = ctx.accumulator(0)\n"
            "rdd.map(lambda x: count.value).collect()\n"
        )
        assert [f.rule for f in analyze_source(src)] == ["C105"]
        count = proc_ctx.accumulator(0)
        count.add(7)  # driver-side value is 7 before the job
        seen = proc_ctx.parallelize(range(4), 2).map(lambda _x: count.value).collect()
        # Workers see the shipped stub's zero, never the driver's 7.
        assert seen == [0, 0, 0, 0]
        assert count.value == 7
