"""CLI surface: exit codes, formats, --explain, and the self-lint gate
(`python -m repro lint src examples benchmarks` must be clean)."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def run_lint(*argv: str):
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
        timeout=120,
    )


class TestExitCodes:
    def test_clean_file_exits_zero(self):
        proc = run_lint(str(FIXTURES / "closure_c101_good.py"))
        assert proc.returncode == 0, proc.stderr
        assert "clean: 0 findings" in proc.stdout

    def test_findings_exit_one(self):
        proc = run_lint(str(FIXTURES / "closure_c104_bad.py"))
        assert proc.returncode == 1
        assert "C104" in proc.stdout

    def test_missing_path_exits_two(self):
        proc = run_lint("no/such/dir")
        assert proc.returncode == 2
        assert "no such file or directory" in proc.stderr

    def test_unknown_rule_exits_two(self):
        proc = run_lint("--select", "C999", str(FIXTURES / "closure_c101_good.py"))
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr


class TestFormats:
    def test_json_format_parses_and_matches_schema(self):
        proc = run_lint("--format", "json", str(FIXTURES / "closure_c105_bad.py"))
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["version"] == 1
        assert payload["summary"]["by_rule"] == {"C105": 1}

    def test_select_filters_findings(self):
        proc = run_lint("--select", "C102", str(FIXTURES / "closure_c104_bad.py"))
        assert proc.returncode == 0


class TestExplain:
    def test_explain_prints_rationale_and_examples(self):
        proc = run_lint("--explain", "C102")
        assert proc.returncode == 0
        for marker in ("C102 — closure-captures-unpicklable", "Why:", "Bad:",
                       "Good:", "Fix hint:", "Suppress with:"):
            assert marker in proc.stdout

    def test_explain_all_covers_every_rule(self):
        proc = run_lint("--explain", "all")
        assert proc.returncode == 0
        for rule in ("C101", "C102", "C103", "C104", "C105", "E201", "E202", "E203"):
            assert f"{rule} — " in proc.stdout

    def test_explain_unknown_rule_exits_two(self):
        proc = run_lint("--explain", "Z999")
        assert proc.returncode == 2


class TestSelfLint:
    def test_repo_sources_are_clean(self):
        proc = run_lint("src", "examples", "benchmarks")
        assert proc.returncode == 0, f"self-lint found defects:\n{proc.stdout}"
        assert "clean: 0 findings" in proc.stdout
