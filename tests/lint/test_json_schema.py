"""JSON output schema lockdown: version 1 shape is stable API."""

from __future__ import annotations

import json

from repro.lint import JSON_SCHEMA_VERSION, analyze_source, format_json, format_text

BAD = "import random\nrdd.map(lambda x: random.random()).collect()\n"


class TestJsonSchema:
    def test_top_level_shape(self):
        findings = analyze_source(BAD, filename="demo.py")
        payload = json.loads(format_json(findings, files_checked=1))
        assert set(payload) == {"version", "findings", "summary"}
        assert payload["version"] == JSON_SCHEMA_VERSION == 1
        assert set(payload["summary"]) == {"files_checked", "total", "by_rule"}
        assert payload["summary"] == {
            "files_checked": 1,
            "total": 1,
            "by_rule": {"C104": 1},
        }

    def test_finding_shape(self):
        findings = analyze_source(BAD, filename="demo.py")
        (entry,) = json.loads(format_json(findings, files_checked=1))["findings"]
        assert set(entry) == {"rule", "file", "line", "col", "message", "chain", "hint"}
        assert entry["rule"] == "C104"
        assert entry["file"] == "demo.py"
        assert entry["line"] == 2
        assert isinstance(entry["chain"], list) and entry["chain"]
        assert isinstance(entry["hint"], str) and entry["hint"]

    def test_clean_payload(self):
        payload = json.loads(format_json([], files_checked=3))
        assert payload["findings"] == []
        assert payload["summary"] == {"files_checked": 3, "total": 0, "by_rule": {}}


class TestTextFormat:
    def test_finding_block_and_summary(self):
        findings = analyze_source(BAD, filename="demo.py")
        text = format_text(findings, files_checked=1)
        assert "demo.py:2:" in text
        assert "C104 [task-nondeterminism]" in text
        assert "    via " in text
        assert "    fix: " in text
        assert "1 finding(s) in 1 file." in text

    def test_clean_summary(self):
        assert format_text([], files_checked=5) == "clean: 0 findings in 5 files."
