"""E201: lock acquisitions against the declared order."""


class BlockStore:
    def inverted(self):
        with self._lock:
            with self._ctx._lock:
                return None

    def inverted_alias(self, ctx):
        lock = ctx._lock
        with self._lock:
            with lock:
                return None
