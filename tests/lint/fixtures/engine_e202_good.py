"""E202 negative: collect under the lock, publish after releasing."""
import time


class BlockStore:
    def fast_get(self, bus, key):
        with self._lock:
            block = self._blocks[key]
        bus.post(key)
        time.sleep(0.01)
        return block
