"""C103: task code writing module globals."""
SEEN = 0
CACHE = {}


def tally(x):
    global SEEN
    SEEN += 1
    return x


def memo(x):
    CACHE[x] = x * 2
    return CACHE[x]


rdd.map(tally).collect()
rdd.map(memo).collect()
