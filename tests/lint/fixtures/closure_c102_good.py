"""C102 negative: resources opened inside the task body."""


def append_one(x):
    with open("audit.log", "a") as fh:
        fh.write(str(x))
    return x


rdd.map(append_one).collect()
