"""C105 negative: write in the task, read at the driver."""
count = ctx.accumulator(0)
rdd.foreach(lambda x: count.add(1))
total = count.value
