"""Suppression directives in every supported position."""
import random

rdd.map(lambda x: x + random.random()).collect()  # repro: lint-ignore[C104]

# repro: lint-ignore[C104]
rdd.map(lambda x: x - random.random()).collect()

rdd.map(lambda x: x * random.random()).collect()  # repro: lint-ignore

# repro: lint-ignore[C101, C104]
rdd.map(lambda x: x + random.random()).collect()

rdd.map(lambda x: x + random.random()).collect()  # repro: lint-ignore[C105]
