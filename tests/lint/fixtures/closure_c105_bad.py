"""C105: accumulator read inside a transform."""
count = ctx.accumulator(0)
rdd.map(lambda x: x / max(count.value, 1)).collect()
