"""E201 negative: outer-to-inner acquisition."""


class BlockStore:
    def ordered(self, ctx):
        with ctx._lock:
            with self._lock:
                return None
