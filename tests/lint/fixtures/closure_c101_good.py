"""C101 negative: pure closures, broadcasts, driver-side composition."""
from repro.engine import Context

with Context(mode="processes") as ctx:
    data = ctx.parallelize(range(8), 4)
    threshold = ctx.broadcast(3)
    data.map(lambda x: x + 1).collect()
    data.filter(lambda x: x > threshold.value).collect()
    counts = [ctx.parallelize([x]).count() for x in range(2)]
