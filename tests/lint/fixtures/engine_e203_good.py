"""E203 negative: events fully populated before posting."""


class Scheduler:
    def finish(self, bus, elapsed):
        event = self._make_event(wall_s=elapsed)
        bus.post(event)
