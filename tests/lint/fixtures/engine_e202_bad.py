"""E202: blocking / publishing while holding a data-plane lock."""
import time


class BlockStore:
    def slow_get(self, bus, key):
        with self._lock:
            block = self._blocks[key]
            bus.post(key)
            time.sleep(0.01)
            return block
