"""C104 negative: per-partition seeded generators."""
import numpy as np

seed = 1234


def jitter(i, it):
    rng = np.random.default_rng(seed * 1000 + i)
    return (x + rng.random() for x in it)


rdd.map_partitions_with_index(jitter).collect()
