"""C104: unseeded randomness / clock reads in task code."""
import random
import time

import numpy as np

rdd.map(lambda x: x + random.random()).collect()
rdd.map(lambda x: x * np.random.random()).collect()
rdd.map(lambda x: np.random.default_rng().normal()).collect()
rdd.map(lambda x: (x, time.time())).collect()
