"""C103 negative: accumulators for task-side counters."""
seen = ctx.accumulator(0)


def tally(x):
    seen.add(1)
    return x


rdd.map(tally).collect()
