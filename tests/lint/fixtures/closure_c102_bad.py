"""C102: unpicklable handles captured into task code."""
import threading

lock = threading.Lock()


def guarded(x):
    with lock:
        return x + 1


rdd.map(guarded).collect()

fh = open("audit.log", "w")
rdd.foreach(lambda x: fh.write(str(x)))
