"""E203: event mutated after posting to the bus."""


class Scheduler:
    def finish(self, bus, elapsed):
        event = self._make_event()
        bus.post(event)
        event.wall_s = elapsed
