"""C101: task closures capturing driver-only engine machinery."""
from repro.engine import Context

with Context(mode="processes") as ctx:
    data = ctx.parallelize(range(8), 4)
    # line 7: the lambda drags the whole driver context into the task
    data.map(lambda x: ctx.parallelize([x]).count()).collect()

    other = ctx.parallelize(range(4))
    data.filter(lambda x: other.count() > x).collect()

    def smuggled(x, c=ctx):
        return c.parallelism

    data.map(smuggled).collect()
