"""E2xx engine-concurrency rules: lock order, blocking under locks,
post-then-mutate — plus the engine-path gating and with-line anchors."""

from __future__ import annotations

from repro.lint import LOCK_LEVELS, analyze_source
from repro.lint.concurrency_rules import is_engine_module


def rules_of(findings):
    return [f.rule for f in findings]


class TestE201LockOrder:
    def test_bad_fixture_flags_both_inversions(self, lint_fixture):
        findings = lint_fixture("engine_e201_bad.py")
        assert rules_of(findings) == ["E201", "E201"]
        direct, aliased = findings
        assert "Context._lock" in direct.message
        assert "BlockStore._lock" in direct.message
        assert "Context._lock" in aliased.message  # resolved through the alias

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("engine_e201_good.py") == []

    def test_same_level_reentrancy_flagged(self):
        src = (
            "class BlockStore:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        (finding,) = analyze_source(src, force_engine=True)
        assert finding.rule == "E201"

    def test_declared_order_is_strictly_layered(self):
        # The table itself must keep the documented shape: server outermost,
        # context above executors, stores above registries, bus near leaves.
        assert LOCK_LEVELS[("ReproServer", "_engine_lock")] < LOCK_LEVELS[("Context", "_lock")]
        assert LOCK_LEVELS[("Context", "_lock")] < LOCK_LEVELS[("BlockStore", "_lock")]
        assert LOCK_LEVELS[("BlockStore", "_lock")] < LOCK_LEVELS[("EventBus", "_lock")]


class TestE202BlockingUnderLock:
    def test_bad_fixture_flags_post_and_sleep(self, lint_fixture):
        findings = lint_fixture("engine_e202_bad.py")
        assert rules_of(findings) == ["E202", "E202"]
        post_f, sleep_f = findings
        assert "bus.post" in post_f.message
        assert "time.sleep" in sleep_f.message
        # Both findings anchor to the enclosing `with` so one directive
        # on that line silences the whole block.
        assert post_f.anchor_lines == sleep_f.anchor_lines
        assert len(post_f.anchor_lines) == 1

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("engine_e202_good.py") == []

    def test_with_line_suppression_covers_block(self, lint_fixture):
        src = (
            "import time\n"
            "class BlockStore:\n"
            "    def f(self, bus, key):\n"
            "        with self._lock:  # repro: lint-ignore[E202]\n"
            "            bus.post(key)\n"
            "            time.sleep(0.01)\n"
        )
        assert analyze_source(src, force_engine=True) == []

    def test_leaf_locks_do_not_trigger(self):
        src = (
            "import time\n"
            "class RecordingListener:\n"
            "    def f(self, bus, key):\n"
            "        with self._lock:\n"
            "            time.sleep(0.01)\n"
        )
        assert analyze_source(src, force_engine=True) == []


class TestE203EventMutation:
    def test_bad_fixture_flags_mutation(self, lint_fixture):
        (finding,) = lint_fixture("engine_e203_bad.py")
        assert finding.rule == "E203"
        assert "event.wall_s" in finding.message

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("engine_e203_good.py") == []

    def test_rebinding_clears_tracking(self):
        src = (
            "class Scheduler:\n"
            "    def f(self, bus):\n"
            "        event = self._make()\n"
            "        bus.post(event)\n"
            "        event = self._make()\n"
            "        event.wall_s = 1.0\n"
        )
        assert analyze_source(src, force_engine=True) == []


class TestEngineGating:
    def test_engine_and_serve_paths_gated_in(self):
        assert is_engine_module("src/repro/engine/blockstore.py")
        assert is_engine_module("src/repro/serve/app.py")
        assert not is_engine_module("examples/engine_tour.py")
        assert not is_engine_module("src/repro/sbgt/session.py")

    def test_user_code_not_checked_for_concurrency(self):
        src = (
            "import time\n"
            "class BlockStore:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            time.sleep(0.01)\n"
        )
        assert analyze_source(src, filename="examples/demo.py") == []
        assert len(analyze_source(src, filename="src/repro/engine/demo.py")) == 1
