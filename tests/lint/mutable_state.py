"""Deliberate C103 defect used by test_bridge: a task that increments a
module global.  Top-level so process workers resolve it by reference."""

SEEN = 0


def tally(x):
    global SEEN
    SEEN += 1
    return x
