"""Shared helpers for the repro.lint test suite."""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import analyze_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


@pytest.fixture
def lint_fixture():
    """Analyze one fixture file by name; E-rules forced on for engine ones."""

    def run(name: str, **kwargs):
        path = FIXTURES / name
        force_engine = kwargs.pop("force_engine", name.startswith("engine_"))
        return analyze_source(
            path.read_text(encoding="utf-8"),
            filename=str(path),
            force_engine=force_engine,
            **kwargs,
        )

    return run
