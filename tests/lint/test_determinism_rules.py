"""D3xx determinism rules over the statistical core."""

from __future__ import annotations

from repro.lint import analyze_source
from repro.lint.determinism_rules import is_determinism_module

SBGT = "src/repro/sbgt/demo.py"


def lint(src: str, filename: str = SBGT):
    return analyze_source(src, filename=filename)


def rules(src: str, filename: str = SBGT):
    return [f.rule for f in lint(src, filename)]


class TestScope:
    def test_statistical_packages_are_in_scope(self):
        for pkg in ("sbgt", "surveil", "simulate", "bayes", "lattice"):
            assert is_determinism_module(f"src/repro/{pkg}/mod.py"), pkg

    def test_engine_and_user_code_are_not(self):
        assert not is_determinism_module("src/repro/engine/context.py")
        assert not is_determinism_module("examples/demo.py")

    def test_rules_silent_outside_scope(self):
        src = "import numpy as np\ngen = np.random.default_rng()\n"
        assert analyze_source(src, filename="src/repro/obs/demo.py") == []

    def test_force_determinism_overrides_path(self):
        src = "import numpy as np\ngen = np.random.default_rng()\n"
        findings = analyze_source(
            src, filename="anywhere.py", force_determinism=True
        )
        assert [f.rule for f in findings] == ["D301"]


class TestD301:
    def test_unseeded_default_rng(self):
        assert rules("import numpy as np\ngen = np.random.default_rng()\n") == ["D301"]

    def test_seeded_default_rng_clean(self):
        assert rules("import numpy as np\ngen = np.random.default_rng(42)\n") == []
        assert rules(
            "import numpy as np\ngen = np.random.default_rng(seed=7)\n"
        ) == []

    def test_legacy_numpy_global_state(self):
        assert rules("import numpy as np\nx = np.random.normal(size=3)\n") == ["D301"]

    def test_stdlib_random_module(self):
        assert rules("import random\nx = random.random()\n") == ["D301"]

    def test_unseeded_random_instance(self):
        assert rules("import random\nr = random.Random()\n") == ["D301"]
        assert rules("import random\nr = random.Random(3)\n") == []

    def test_generator_method_calls_clean(self):
        # rng.normal() on a passed-in Generator is the sanctioned pattern.
        src = """
def draw(rng, n):
    return rng.normal(size=n)
"""
        assert rules(src) == []


class TestD302:
    def test_for_over_set_literal(self):
        assert rules("for x in {1, 2, 3}:\n    pass\n") == ["D302"]

    def test_comprehension_over_set_call(self):
        assert rules("xs = [x for x in set([3, 1])]\n") == ["D302"]

    def test_set_comprehension_iteration(self):
        assert rules("for x in {p for p in [1, 2]}:\n    pass\n") == ["D302"]

    def test_sorted_wrap_is_clean(self):
        assert rules("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_list_iteration_clean(self):
        assert rules("for x in [1, 2, 3]:\n    pass\n") == []


class TestD303:
    def test_time_time(self):
        assert rules("import time\nt = time.time()\n") == ["D303"]

    def test_datetime_now(self):
        assert rules(
            "import datetime\nt = datetime.datetime.now()\n"
        ) == ["D303"]

    def test_perf_counter_is_fine(self):
        assert rules("import time\nt = time.perf_counter()\n") == []
        assert rules("import time\nt = time.monotonic()\n") == []


class TestD304:
    def test_subscript_key(self):
        assert rules("d = {}\nd[id(object())] = 1\n") == ["D304"]

    def test_dict_literal_key(self):
        assert rules("x = object()\nd = {id(x): 1}\n") == ["D304"]

    def test_dict_comprehension_key(self):
        assert rules("d = {id(x): x for x in [1]}\n") == ["D304"]

    def test_sort_key(self):
        assert rules("xs = sorted([object()], key=id)\n") == ["D304"]

    def test_plain_id_call_clean(self):
        assert rules("x = id(object())\n") == []


class TestD305:
    def test_builtin_hash(self):
        assert rules('h = hash("site")\n') == ["D305"]

    def test_method_hash_clean(self):
        assert rules("h = obj.hash()\n") == []


class TestSuppression:
    def test_inline_ignore(self):
        src = "import numpy as np\ngen = np.random.default_rng()  # repro: lint-ignore[D301]\n"
        assert rules(src) == []
