"""SARIF output, finding baselines, parallel analysis and the cache."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.lint import (
    LintFinding,
    filter_new_findings,
    format_sarif,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.lint.baseline import fingerprint

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
ROOT = pathlib.Path(__file__).resolve().parents[2]


def run_lint(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=ROOT,
        timeout=120,
    )


def _finding(rule="C104", file="src/repro/sbgt/x.py", line=3, col=0,
             message="unseeded draw at line 3"):
    return LintFinding(rule=rule, file=file, line=line, col=col, message=message)


class TestSarif:
    def _log(self, findings, files_checked=1):
        return json.loads(format_sarif(findings, files_checked))

    def test_schema_sanity(self):
        log = self._log([_finding()])
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in ("warning", "error")

    def test_result_shape_and_rule_index(self):
        log = self._log([_finding(line=7, col=4)])
        (run,) = log["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "C104"
        assert result["level"] == "warning"
        driver_rules = run["tool"]["driver"]["rules"]
        assert driver_rules[result["ruleIndex"]]["id"] == "C104"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 7
        assert region["startColumn"] == 5  # SARIF columns are 1-based

    def test_x001_maps_to_error_level(self):
        log = self._log([_finding(rule="X001", message="cannot parse")])
        assert log["runs"][0]["results"][0]["level"] == "error"

    def test_chain_and_hint_folded_into_message(self):
        f = LintFinding(rule="C104", file="f.py", line=1, col=0,
                        message="msg", chain=("hop one",), hint="do better")
        log = self._log([f])
        text = log["runs"][0]["results"][0]["message"]["text"]
        assert "via hop one" in text
        assert "fix: do better" in text

    def test_empty_run_still_valid(self):
        log = self._log([], files_checked=5)
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["properties"]["filesChecked"] == 5

    def test_cli_format_sarif(self):
        proc = run_lint("--format", "sarif", str(FIXTURES / "closure_c104_bad.py"))
        assert proc.returncode == 1
        log = json.loads(proc.stdout)
        assert log["version"] == "2.1.0"
        assert any(r["ruleId"] == "C104" for r in log["runs"][0]["results"])


class TestBaseline:
    def test_fingerprint_is_position_independent(self):
        a = _finding(line=3, message="acquired line 3")
        b = _finding(line=40, message="acquired line 40")
        assert fingerprint(a) == fingerprint(b)

    def test_fingerprint_distinguishes_rule_file_message(self):
        base = _finding()
        assert fingerprint(base) != fingerprint(_finding(rule="C105"))
        assert fingerprint(base) != fingerprint(_finding(file="other.py"))
        assert fingerprint(base) != fingerprint(_finding(message="different"))

    def test_roundtrip_and_filtering(self, tmp_path):
        known = _finding()
        path = tmp_path / "base.json"
        write_baseline(str(path), [known])
        baseline = load_baseline(str(path))
        assert filter_new_findings([known], baseline) == []
        fresh = _finding(rule="C105", message="new problem")
        assert filter_new_findings([known, fresh], baseline) == [fresh]

    def test_counts_gate_duplicate_findings(self, tmp_path):
        one = _finding()
        path = tmp_path / "base.json"
        write_baseline(str(path), [one])
        baseline = load_baseline(str(path))
        # two identical findings, baseline covers one -> one is new
        assert len(filter_new_findings([one, one], baseline)) == 1

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(str(path))
        path.write_text(json.dumps({"version": 99, "fingerprints": {}}))
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_cli_write_then_gate(self, tmp_path):
        bad = FIXTURES / "closure_c104_bad.py"
        base = tmp_path / "lint-baseline.json"
        proc = run_lint(str(bad), "--write-baseline", str(base))
        assert proc.returncode == 0, proc.stderr
        assert "recorded" in proc.stdout
        proc = run_lint(str(bad), "--baseline", str(base))
        assert proc.returncode == 0, proc.stdout
        assert "clean: 0 findings" in proc.stdout
        assert "known finding(s) suppressed" in proc.stderr

    def test_cli_missing_baseline_exits_two(self):
        proc = run_lint(str(FIXTURES / "closure_c101_good.py"),
                        "--baseline", "no/such/baseline.json")
        assert proc.returncode == 2
        assert "cannot load baseline" in proc.stderr

    def test_cli_baseline_and_write_conflict(self):
        proc = run_lint(str(FIXTURES / "closure_c101_good.py"),
                        "--baseline", "a.json", "--write-baseline", "b.json")
        assert proc.returncode == 2


class TestJobsAndCache:
    def test_parallel_matches_serial(self):
        serial, n1 = lint_paths([str(FIXTURES)])
        parallel, n2 = lint_paths([str(FIXTURES)], jobs=3)
        assert n1 == n2
        assert serial == parallel
        assert serial  # the fixtures directory is full of findings

    def test_cache_reuse_and_invalidation(self, tmp_path):
        src = tmp_path / "repro" / "sbgt" / "gen.py"
        src.parent.mkdir(parents=True)
        src.write_text("import numpy as np\ng = np.random.default_rng()\n")
        cache = tmp_path / "cache.json"

        first, _ = lint_paths([str(tmp_path)], cache_path=str(cache))
        assert [f.rule for f in first] == ["D301"]
        payload = json.loads(cache.read_text())
        assert str(src) in payload["entries"]

        # warm run: identical findings out of the cache
        second, _ = lint_paths([str(tmp_path)], cache_path=str(cache))
        assert second == first

        # content change invalidates the entry
        src.write_text("import numpy as np\ng = np.random.default_rng(42)\n")
        third, _ = lint_paths([str(tmp_path)], cache_path=str(cache))
        assert third == []

    def test_cache_keyed_on_config(self, tmp_path):
        src = tmp_path / "repro" / "sbgt" / "gen.py"
        src.parent.mkdir(parents=True)
        src.write_text("import numpy as np\ng = np.random.default_rng()\n")
        cache = tmp_path / "cache.json"
        lint_paths([str(tmp_path)], cache_path=str(cache))
        with_ignore, _ = lint_paths(
            [str(tmp_path)], ignore=["D301"], cache_path=str(cache)
        )
        assert with_ignore == []

    def test_corrupt_cache_is_cold_not_fatal(self, tmp_path):
        src = tmp_path / "repro" / "sbgt" / "gen.py"
        src.parent.mkdir(parents=True)
        src.write_text("import numpy as np\ng = np.random.default_rng()\n")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        findings, _ = lint_paths([str(tmp_path)], cache_path=str(cache))
        assert [f.rule for f in findings] == ["D301"]

    def test_cli_jobs_zero_rejected(self):
        proc = run_lint("--jobs", "0", str(FIXTURES / "closure_c101_good.py"))
        assert proc.returncode == 2


class TestSkippedFiles:
    def test_unparsable_file_becomes_x001_and_exit_two(self, tmp_path):
        good = tmp_path / "repro" / "sbgt" / "gen.py"
        good.parent.mkdir(parents=True)
        good.write_text("import numpy as np\ng = np.random.default_rng()\n")
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n")
        proc = run_lint(str(tmp_path))
        assert proc.returncode == 2
        assert "X001" in proc.stdout
        # the rest of the tree was still analyzed
        assert "D301" in proc.stdout

    def test_x001_not_suppressible(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("# repro: lint-ignore[X001]\ndef oops(:\n")
        findings, _ = lint_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["X001"]

    def test_usage_errors_still_raise(self, tmp_path):
        from repro.lint import LintError

        with pytest.raises(LintError):
            lint_paths(["no/such/path"])
        with pytest.raises(LintError):
            lint_paths([str(tmp_path)], select=["Z999"])
