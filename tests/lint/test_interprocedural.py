"""Interprocedural E204/E205, the call graph behind them, and E206."""

from __future__ import annotations

import ast

import pytest

from repro.lint import analyze_source, build_callgraph
from repro.lint.callgraph import build_callgraph_from_tree
from repro.lint.concurrency_rules import analyze_concurrency

ENGINE = "src/repro/engine/demo.py"


def lint(src: str, filename: str = ENGINE):
    return analyze_source(src, filename=filename)


class TestCallGraph:
    def test_direct_lock_summary(self):
        src = """
class BlockStore:
    def put(self, key):
        with self._lock:
            return key
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, "BlockStore", "self.put")
        assert summary.locks == {"BlockStore._lock": (50, ())}

    def test_transitive_propagation_with_call_path(self):
        src = """
class BlockStore:
    def _inner(self):
        with self._lock:
            return 1

    def _mid(self):
        return self._inner()

    def outer(self):
        return self._mid()
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, "BlockStore", "self.outer")
        level, path = summary.locks["BlockStore._lock"]
        assert level == 50
        assert path == ("BlockStore._mid", "BlockStore._inner")

    def test_blocking_propagates(self):
        src = """
import time

def helper():
    time.sleep(1)

def caller():
    helper()
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, None, "caller")
        assert "time.sleep()" in summary.blocking

    def test_bare_classname_resolves_to_init(self):
        src = """
class ShuffleManager:
    def __init__(self):
        with self._lock:
            self.ready = True

def make():
    return ShuffleManager()
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, None, "make")
        assert "ShuffleManager._lock" in summary.locks

    def test_nested_defs_do_not_leak_into_summary(self):
        src = """
class BlockStore:
    def deferred(self):
        def thunk():
            with self._lock:
                return 1
        return thunk
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, "BlockStore", "self.deferred")
        assert summary.locks == {}

    def test_cross_module_resolution_via_receiver_convention(self):
        store_src = """
class BlockStore:
    def put(self, key):
        with self._lock:
            return key
"""
        caller_src = """
class Scheduler:
    def run(self, store):
        store.put(1)
"""
        graph = build_callgraph({
            "src/repro/engine/blockstore.py": ast.parse(store_src),
            "src/repro/engine/scheduler.py": ast.parse(caller_src),
        })
        _, summary = graph.summary_for_call(
            "src/repro/engine/scheduler.py", "Scheduler", "self.run"
        )
        assert "BlockStore._lock" in summary.locks

    def test_untrusted_receiver_names_do_not_resolve(self):
        # "pool" conventionally names stdlib executors; routing calls
        # through it would import foreign summaries.
        src = """
class ThreadExecutor:
    def stop(self):
        with self._lock:
            return 1

class Driver:
    def go(self, pool):
        pool.stop()
"""
        graph = build_callgraph_from_tree(ast.parse(src), ENGINE)
        _, summary = graph.summary_for_call(ENGINE, "Driver", "self.go")
        assert summary.locks == {}

    def test_fingerprint_changes_with_content(self):
        a = build_callgraph_from_tree(
            ast.parse("def f():\n    pass\n"), ENGINE)
        b = build_callgraph_from_tree(
            ast.parse("import time\ndef f():\n    time.sleep(1)\n"), ENGINE)
        assert a.fingerprint() != b.fingerprint()


class TestE204:
    def test_transitive_inversion_flagged(self):
        src = """
class Context:
    def helper(self):
        with self._server._engine_lock:
            return 1

    def stop(self):
        with self._lock:
            self.helper()
"""
        rules = [f.rule for f in lint(src)]
        assert rules == ["E204"]

    def test_finding_carries_call_path(self):
        src = """
class Context:
    def _deep(self):
        with self._server._engine_lock:
            return 1

    def _mid(self):
        return self._deep()

    def stop(self):
        with self._lock:
            self._mid()
"""
        (finding,) = lint(src)
        assert finding.rule == "E204"
        assert "ReproServer._engine_lock" in finding.message
        assert any("Context._deep" in hop for hop in finding.chain)

    def test_inner_acquisition_in_order_is_clean(self):
        src = """
class Context:
    def helper(self):
        with self._store._lock:
            return 1

    def run(self):
        with self._lock:
            self.helper()
"""
        assert lint(src) == []

    def test_reentrant_same_lock_not_flagged(self):
        src = """
class EventBus:
    def _deliver(self):
        with self._lock:
            return 1

    def post(self, event):
        with self._lock:
            self._deliver()
"""
        rules = [f.rule for f in lint(src)]
        assert "E204" not in rules

    def test_cross_module_inversion(self):
        caller = """
class BlockStore:
    def evict(self, ctx):
        with self._lock:
            ctx.refresh()
"""
        callee = """
class Context:
    def refresh(self):
        with self._lock:
            return 1
"""
        trees = {
            "src/repro/engine/a.py": ast.parse(caller),
            "src/repro/engine/b.py": ast.parse(callee),
        }
        graph = build_callgraph(trees)
        findings = analyze_concurrency(
            trees["src/repro/engine/a.py"], "src/repro/engine/a.py", graph
        )
        assert [f.rule for f in findings] == ["E204"]

    def test_suppressible_on_the_with_line(self):
        src = """
class Context:
    def helper(self):
        with self._server._engine_lock:
            return 1

    def stop(self):
        with self._lock:  # repro: lint-ignore[E204]
            self.helper()
"""
        assert lint(src) == []


class TestE205:
    def test_reachable_blocking_flagged(self):
        src = """
import time

class BlockStore:
    def _flush(self):
        time.sleep(1.0)

    def put(self, key):
        with self._lock:
            self._flush()
"""
        (finding,) = lint(src)
        assert finding.rule == "E205"
        assert "time.sleep()" in finding.message

    def test_direct_blocking_stays_e202(self):
        src = """
import time

class BlockStore:
    def put(self, key):
        with self._lock:
            time.sleep(1.0)
"""
        rules = [f.rule for f in lint(src)]
        assert rules == ["E202"]

    def test_admission_gate_locks_exempt(self):
        src = """
import time

class ProcessExecutor:
    def _drain(self):
        time.sleep(1.0)

    def run_wave(self):
        with self._lock:
            self._drain()
"""
        assert lint(src) == []

    def test_non_data_plane_lock_not_flagged(self):
        src = """
import time

class EventBus:
    def _spin(self):
        time.sleep(0.01)

    def post(self, event):
        with self._lock:
            self._spin()
"""
        rules = [f.rule for f in lint(src)]
        assert "E205" not in rules

    def test_suppression_anchor_spans_the_with_block(self):
        src = """
import time

class BlockStore:
    def _flush(self):
        time.sleep(1.0)

    def put(self, key):
        with self._lock:  # repro: lint-ignore[E205]
            x = 1
            y = 2
            self._flush()
"""
        assert lint(src) == []

    def test_call_line_suppression_also_works(self):
        src = """
import time

class BlockStore:
    def _flush(self):
        time.sleep(1.0)

    def put(self, key):
        with self._lock:
            self._flush()  # repro: lint-ignore[E205]
"""
        assert lint(src) == []


class TestE206:
    def test_raw_instance_lock_flagged(self):
        src = """
import threading

class NewCache:
    def __init__(self):
        self._lock = threading.Lock()
"""
        (finding,) = lint(src)
        assert finding.rule == "E206"
        assert "NewCache._lock" in finding.message

    def test_raw_module_lock_flagged(self):
        src = """
import threading

_fresh_lock = threading.RLock()
"""
        (finding,) = lint(src)
        assert finding.rule == "E206"

    def test_declared_module_lock_requires_ordered_wrapper(self):
        # Even a *declared* name must go through OrderedLock: a raw
        # threading lock is invisible to the runtime sanitizer.
        src = """
import threading

_stage_lock = threading.Lock()
"""
        assert lint(src) == []  # declared in MODULE_LOCK_LEVELS

    def test_unregistered_orderedlock_name_flagged(self):
        src = """
from repro.engine.lockorder import OrderedLock

class NewCache:
    def __init__(self):
        self._lock = OrderedLock("NewCache._lock")
"""
        (finding,) = lint(src)
        assert finding.rule == "E206"
        assert "UndeclaredLockError" in finding.message

    def test_registered_orderedlock_clean(self):
        src = """
from repro.engine.lockorder import OrderedLock

class BlockStore:
    def __init__(self):
        self._lock = OrderedLock("BlockStore._lock")
"""
        assert lint(src) == []

    def test_non_engine_modules_exempt(self):
        src = """
import threading

class UserThing:
    def __init__(self):
        self._lock = threading.Lock()
"""
        assert analyze_source(src, filename="examples/demo.py") == []


class TestObsGating:
    def test_obs_modules_are_engine_scoped(self):
        src = """
import threading

class Widget:
    def __init__(self):
        self._lock = threading.Lock()
"""
        findings = analyze_source(src, filename="src/repro/obs/widget.py")
        assert [f.rule for f in findings] == ["E206"]
