"""Suppression directives and select/ignore filtering."""

from __future__ import annotations

import pytest

from repro.lint import LintError, analyze_source


class TestSuppressionDirectives:
    def test_fixture_covers_every_position(self, lint_fixture):
        # Five seeded C104s: four suppressed (same-line bracket, standalone
        # comment, bare ignore, comma list), one under the *wrong* rule id.
        findings = lint_fixture("suppressed.py")
        assert [f.rule for f in findings] == ["C104"]
        assert findings[0].line == 14

    def test_wrong_rule_id_does_not_suppress(self):
        src = "import random\nrdd.map(lambda x: random.random()).collect()  # repro: lint-ignore[C105]\n"
        assert len(analyze_source(src)) == 1

    def test_bare_ignore_suppresses_all_rules(self):
        src = "import random\nrdd.map(lambda x: random.random()).collect()  # repro: lint-ignore\n"
        assert analyze_source(src) == []


class TestAnchoredSuppression:
    """Findings anchored away from their report line (def/decorator lines)."""

    BODY = (
        "import threading\n"
        "lk = threading.Lock()\n"
        "{decorator}"
        "def f(x):{trailer}\n"
        "    return (x, lk)\n"
        "rdd.map(f).collect()\n"
    )

    def test_capture_finding_fires_without_ignore(self):
        src = self.BODY.format(decorator="", trailer="")
        (finding,) = analyze_source(src)
        assert finding.rule == "C102"
        assert finding.line == 4  # reported at the use site in the body

    def test_def_line_ignore_covers_body_capture(self):
        src = self.BODY.format(
            decorator="", trailer="  # repro: lint-ignore[C102]"
        )
        assert analyze_source(src) == []

    def test_decorator_line_ignore_covers_body_capture(self):
        src = self.BODY.format(
            decorator="@functools.cache  # repro: lint-ignore[C102]\n",
            trailer="",
        )
        assert analyze_source(src) == []

    def test_decorated_def_line_ignore_still_works(self):
        src = self.BODY.format(
            decorator="@functools.cache\n",
            trailer="  # repro: lint-ignore[C102]",
        )
        assert analyze_source(src) == []

    def test_wrong_rule_on_def_line_does_not_suppress(self):
        src = self.BODY.format(
            decorator="", trailer="  # repro: lint-ignore[C101]"
        )
        assert [f.rule for f in analyze_source(src)] == ["C102"]

    def test_comma_list_covers_mixed_rules_on_one_line(self):
        src = (
            "import threading\n"
            "import random\n"
            "lk = threading.Lock()\n"
            "def f(x):\n"
            "    return (x, lk, random.random())  # repro: lint-ignore[C102, C104]\n"
            "rdd.map(f).collect()\n"
        )
        assert analyze_source(src) == []


class TestSelectIgnore:
    SRC = (
        "import random\n"
        "import threading\n"
        "lk = threading.Lock()\n"
        "def f(x):\n"
        "    with lk:\n"
        "        return x + random.random()\n"
        "rdd.map(f).collect()\n"
    )

    def test_unfiltered_reports_both(self):
        assert {f.rule for f in analyze_source(self.SRC)} == {"C102", "C104"}

    def test_select_keeps_only_listed(self):
        assert {f.rule for f in analyze_source(self.SRC, select=["C104"])} == {"C104"}

    def test_ignore_drops_listed(self):
        assert {f.rule for f in analyze_source(self.SRC, ignore=["C104"])} == {"C102"}

    def test_unknown_rule_id_is_usage_error(self):
        with pytest.raises(LintError, match="unknown rule"):
            analyze_source(self.SRC, select=["C999"])
        with pytest.raises(LintError, match="unknown rule"):
            analyze_source(self.SRC, ignore=["nope"])

    def test_rule_ids_normalized_case_insensitively(self):
        assert {f.rule for f in analyze_source(self.SRC, select=["c102"])} == {"C102"}

    def test_syntax_error_is_lint_error(self):
        with pytest.raises(LintError, match="cannot parse"):
            analyze_source("def broken(:\n")
