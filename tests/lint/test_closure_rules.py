"""C1xx closure-safety rules: each fixture pair proves one rule fires on
the seeded defect and stays silent on the idiomatic rewrite."""

from __future__ import annotations

from repro.lint import analyze_source


def rules_of(findings):
    return [f.rule for f in findings]


class TestC101DriverCaptures:
    def test_bad_fixture_flags_every_capture(self, lint_fixture):
        findings = lint_fixture("closure_c101_bad.py")
        assert rules_of(findings) == ["C101", "C101", "C101"]
        ctx_capture, rdd_capture, default_capture = findings
        assert "'ctx'" in ctx_capture.message and "Context" in ctx_capture.message
        assert ctx_capture.line == 7
        assert any("capture 'ctx'" in hop for hop in ctx_capture.chain)
        assert any("map @ line" in hop for hop in ctx_capture.chain)
        assert "'other'" in rdd_capture.message and "RDD" in rdd_capture.message
        assert "default argument c=ctx" in default_capture.message

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("closure_c101_good.py") == []


class TestC102UnpicklableCaptures:
    def test_bad_fixture_flags_lock_and_file(self, lint_fixture):
        findings = lint_fixture("closure_c102_bad.py")
        assert rules_of(findings) == ["C102", "C102"]
        lock_f, file_f = findings
        assert "'lock' (Lock)" in lock_f.message
        assert any("bound at line 4" in hop for hop in lock_f.chain)
        assert "'fh' (File)" in file_f.message

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("closure_c102_good.py") == []


class TestC103GlobalWrites:
    def test_bad_fixture_flags_global_and_mutator(self, lint_fixture):
        findings = lint_fixture("closure_c103_bad.py")
        assert rules_of(findings) == ["C103", "C103"]
        decl, store = findings
        assert "global SEEN" in decl.message
        assert "'CACHE'" in store.message

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("closure_c103_good.py") == []


class TestC104Nondeterminism:
    def test_bad_fixture_flags_all_four_sources(self, lint_fixture):
        findings = lint_fixture("closure_c104_bad.py")
        assert rules_of(findings) == ["C104"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "random.random" in messages
        assert "np.random.random" in messages
        assert "default_rng()` without a seed" in messages
        assert "time.time" in messages

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("closure_c104_good.py") == []


class TestC105AccumulatorReads:
    def test_bad_fixture_flags_value_read(self, lint_fixture):
        (finding,) = lint_fixture("closure_c105_bad.py")
        assert finding.rule == "C105"
        assert "'count'.value" in finding.message

    def test_good_fixture_is_clean(self, lint_fixture):
        assert lint_fixture("closure_c105_good.py") == []


class TestResolutionDetails:
    def test_named_function_argument_resolved(self):
        src = (
            "import threading\n"
            "lk = threading.RLock()\n"
            "def f(x):\n"
            "    with lk:\n"
            "        return x\n"
            "rdd.map(f).collect()\n"
        )
        (finding,) = analyze_source(src)
        assert finding.rule == "C102"
        assert any("function 'f'" in hop for hop in finding.chain)

    def test_function_reused_across_transforms_reported_once(self):
        src = (
            "import threading\n"
            "lk = threading.Lock()\n"
            "def f(x):\n"
            "    with lk:\n"
            "        return x\n"
            "rdd.map(f).collect()\n"
            "rdd.filter(f).collect()\n"
        )
        assert len(analyze_source(src)) == 1

    def test_local_rebinding_shadows_capture(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f(x):\n"
            "    lock = x  # local, hoisted: not a capture\n"
            "    return lock\n"
            "rdd.map(f).collect()\n"
        )
        assert analyze_source(src) == []

    def test_broadcast_and_accumulator_writes_are_fine(self):
        src = (
            "bc = ctx.broadcast([1, 2])\n"
            "acc = ctx.accumulator(0)\n"
            "def f(x):\n"
            "    acc.add(1)\n"
            "    return bc.value[0] + x\n"
            "rdd.map(f).collect()\n"
        )
        assert analyze_source(src) == []

    def test_non_transform_methods_not_analyzed(self):
        src = (
            "import random\n"
            "helper(lambda x: random.random())\n"
            "obj.register(lambda x: random.random())\n"
        )
        assert analyze_source(src) == []

    def test_with_as_binding_infers_tag(self):
        src = (
            "from repro.engine import Context\n"
            "with Context() as ctx:\n"
            "    rdd = ctx.parallelize([1])\n"
            "    rdd.map(lambda x: ctx).collect()\n"
        )
        (finding,) = analyze_source(src)
        assert finding.rule == "C101"


class TestC101ObservabilityCaptures:
    """The PR 8 driver-resident machinery: hub, instruments, sampler."""

    def test_hub_and_instrument_captures_flagged(self):
        src = (
            "from repro.obs.metrics import MetricsHub\n"
            "hub = MetricsHub()\n"
            "c = hub.counter('repro_x_total')\n"
            "rdd.map(lambda x: c.inc() or x).collect()\n"
            "rdd.map(lambda x: hub).collect()\n"
        )
        findings = analyze_source(src)
        assert rules_of(findings) == ["C101", "C101"]
        messages = "\n".join(f.message for f in findings)
        assert "MetricInstrument" in messages
        assert "MetricsHub" in messages

    def test_context_hub_attribute_flagged(self):
        src = "hub = ctx.metrics_hub\nrdd.map(lambda x: hub).collect()\n"
        (finding,) = analyze_source(src)
        assert finding.rule == "C101"
        assert "MetricsHub" in finding.message

    def test_sampler_capture_flagged(self):
        src = (
            "from repro.obs.sampler import Sampler\n"
            "s = Sampler(hz=100)\n"
            "rdd.map(lambda x: s).collect()\n"
        )
        (finding,) = analyze_source(src)
        assert finding.rule == "C101"
        assert "Sampler" in finding.message

    def test_hub_histogram_receiver_gated(self):
        # hub.histogram(...) yields a driver-only instrument...
        src = (
            "h = hub.histogram('repro_h_seconds')\n"
            "rdd.map(lambda x: h.observe(x) or x).collect()\n"
        )
        (finding,) = analyze_source(src)
        assert finding.rule == "C101"
        assert "MetricInstrument" in finding.message

    def test_rdd_histogram_action_not_tagged(self):
        # ...but RDD.histogram() is an action returning plain data, and
        # capturing its result must stay clean.
        src = (
            "counts = rdd.histogram(4)\n"
            "rdd.map(lambda x: counts[0] + x).collect()\n"
        )
        assert analyze_source(src) == []
