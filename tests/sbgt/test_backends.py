"""The PosteriorBackend contract: conformance, exactness, convergence.

Three implementations sit behind one protocol; these tests pin

* protocol conformance — every backend answers the full surface with
  the right shapes and invariants;
* sparse exactness — at ``floor=0`` on an exhaustive support the
  sparse backend reproduces the dense lattice bit-for-bit;
* particle convergence — seeded determinism plus tolerance-bounded
  agreement with the exact posterior;
* the redesigned boundaries — ``make_posterior`` factory, the shared
  ``PruneStats`` type, and backend-aware request payloads.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.lattice.prune import PruneStats
from repro.sbgt.backend import BACKENDS, PosteriorBackend
from repro.sbgt.config import SBGTConfig
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.particle import ParticlePosterior
from repro.sbgt.selector import (
    select_halving_pool_distributed,
    select_infogain_pool_distributed,
    select_lookahead_pools_distributed,
)
from repro.sbgt.session import SBGTSession
from repro.sbgt.sparse import SparsePosterior
from repro.workflows.payloads import make_posterior

MODEL = DilutionErrorModel(0.97, 0.99, 0.35)
N = 6
PRIOR = PriorSpec(np.array([0.05, 0.2, 0.1, 0.3, 0.15, 0.08]))


def _build(backend: str, ctx) -> PosteriorBackend:
    return make_posterior(
        backend, prior=PRIOR, ctx=ctx, sparse_floor=0.0, num_particles=512, seed=0
    )


def _ll(outcome: bool, pool: int) -> np.ndarray:
    return MODEL.log_likelihood_by_count(outcome, bin(pool).count("1"))


# ---------------------------------------------------------------------------
# protocol conformance, all three backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_protocol_conformance(backend, ctx):
    post = _build(backend, ctx)
    assert isinstance(post, PosteriorBackend)
    assert post.n_items == N
    assert post.num_blocks >= 1
    assert post.num_states() > 0

    log_pred = post.update(0b000111, _ll(True, 0b000111))
    assert isinstance(log_pred, float) and np.isfinite(log_pred) and log_pred < 0.0

    marg = post.marginals()
    assert marg.shape == (N,)
    assert np.all((marg >= 0.0) & (marg <= 1.0))

    ent = post.entropy()
    assert np.isfinite(ent) and ent >= 0.0

    top = post.top_states(3)
    probs = [p for _, p in top]
    assert len(top) == min(3, post.num_states())
    assert probs == sorted(probs, reverse=True)
    assert all(isinstance(m, int) for m, _ in top)
    assert post.map_state() == top[0][0]

    dist = post.count_distribution(0b000111)
    assert dist.shape == (4,)
    assert dist.sum() == pytest.approx(1.0, abs=1e-9)

    pools = np.array([0b000011, 0b001100, 0b110000], dtype=np.uint64)
    masses = post.down_set_masses(pools)
    assert masses.shape == (3,)
    assert np.all((masses >= 0.0) & (masses <= 1.0 + 1e-12))

    hists = post.pool_count_hists(pools)
    assert hists.shape == (3, 3)  # max pool size 2 -> counts 0..2
    assert np.allclose(hists.sum(axis=1), 1.0, atol=1e-9)

    cells = post.refined_cell_masses((0b000011,), pools, 4)
    assert cells.shape == (3, 4)

    post.condition(negative_mask=0b100000)
    assert post.marginals()[5] == pytest.approx(0.0, abs=1e-12)

    stats = post.prune(1e-12)
    assert isinstance(stats, PruneStats)
    assert stats.kept_states + stats.dropped_states > 0

    post.rebalance()  # must be callable on every backend (no-op off-engine)

    space = post.collect()
    assert space.n_items == N
    assert np.isfinite(space.log_probs).all()

    post.unpersist()


@pytest.mark.parametrize("backend", BACKENDS)
def test_selectors_speak_the_protocol(backend, ctx):
    post = _build(backend, ctx)
    post.update(0b000111, _ll(True, 0b000111))
    cands = np.array([0b000011, 0b000101, 0b011000, 0b100001], dtype=np.uint64)

    pool, gap, mass = select_halving_pool_distributed(post, cands)
    assert int(pool) in {int(c) for c in cands}
    assert 0.0 <= mass <= 1.0 and gap >= 0.0

    pool, gain = select_infogain_pool_distributed(post, cands, MODEL)
    assert int(pool) in {int(c) for c in cands}
    assert np.isfinite(gain)

    pools, obj = select_lookahead_pools_distributed(post, cands, 2)
    assert len(pools) == 2 and np.isfinite(obj)
    post.unpersist()


def test_map_state_on_empty_posterior_raises():
    post = SparsePosterior.from_prior(PRIOR, floor=0.0)
    post.log_weights = post.log_weights[:0]
    post.states = post.states[:0]
    with pytest.raises(ValueError, match="empty posterior"):
        post.map_state()


# ---------------------------------------------------------------------------
# sparse exactness: floor=0 on an exhaustive support == dense, bit for bit
# ---------------------------------------------------------------------------
def _updated_pair(ctx):
    dense = DistributedLattice.from_prior(ctx, PRIOR, 4)
    sparse = SparsePosterior.from_prior(PRIOR, floor=0.0)
    steps = [(0b000111, True), (0b111000, False), (0b010101, True)]
    for pool, outcome in steps:
        lp_dense = dense.update(pool, _ll(outcome, pool))
        lp_sparse = sparse.update(pool, _ll(outcome, pool))
        assert lp_sparse == pytest.approx(lp_dense, abs=1e-12)
    return dense, sparse


def test_sparse_floor0_matches_dense(ctx):
    dense, sparse = _updated_pair(ctx)
    try:
        assert np.allclose(sparse.marginals(), dense.marginals(), atol=1e-12)
        assert sparse.entropy() == pytest.approx(dense.entropy(), abs=1e-12)

        pools = np.array([0b000011, 0b001100, 0b110000, 0b010010], dtype=np.uint64)
        assert np.allclose(
            sparse.down_set_masses(pools), dense.down_set_masses(pools), atol=1e-12
        )
        assert np.allclose(
            sparse.count_distribution(0b001111),
            dense.count_distribution(0b001111),
            atol=1e-12,
        )
        assert np.allclose(
            sparse.pool_count_hists(pools), dense.pool_count_hists(pools), atol=1e-12
        )
        assert np.allclose(
            sparse.refined_cell_masses((0b000011,), pools, 4),
            dense.refined_cell_masses((0b000011,), pools, 4),
            atol=1e-12,
        )

        assert sparse.map_state() == dense.map_state()
        for (m_s, p_s), (m_d, p_d) in zip(sparse.top_states(8), dense.top_states(8)):
            assert m_s == m_d
            assert p_s == pytest.approx(p_d, abs=1e-12)

        s_space, d_space = sparse.collect(), dense.collect()
        assert np.array_equal(s_space.masks, d_space.masks)
        assert np.allclose(s_space.probs(), d_space.probs(), atol=1e-12)
    finally:
        dense.unpersist()


def test_sparse_condition_and_project_match_dense(ctx):
    dense, sparse = _updated_pair(ctx)
    try:
        for post in (dense, sparse):
            post.condition(positive_mask=0b000001, negative_mask=0b100000)
            post.project_out_bit(5, False)
            post.project_out_bit(0, True)
        assert sparse.n_items == dense.n_items == N - 2
        assert np.allclose(sparse.marginals(), dense.marginals(), atol=1e-12)
        assert sparse.entropy() == pytest.approx(dense.entropy(), abs=1e-12)
    finally:
        dense.unpersist()


def test_sparse_prune_matches_serial_reference():
    serial = Posterior.from_prior(PRIOR, MODEL)
    sparse = SparsePosterior.from_prior(PRIOR, floor=0.0)
    serial.update(0b000111, True)
    sparse.update(0b000111, _ll(True, 0b000111))
    eps = 1e-4
    st_serial = serial.prune(eps)
    st_sparse = sparse.prune(eps)
    assert st_sparse.kept_states == st_serial.kept_states
    assert st_sparse.dropped_states == st_serial.dropped_states
    assert st_sparse.dropped_mass == pytest.approx(st_serial.dropped_mass, abs=1e-12)
    assert np.array_equal(sparse.collect().masks, serial.space.masks)


def test_sparse_session_screen_replays_dense(ctx):
    """Same cohort + rng: a sparse floor=0 session replays the dense
    screen move for move (the protocol version of the serial/distributed
    determinism contract).

    The prior is distinct-valued on purpose: a symmetric (uniform) prior
    produces exactly tied marginals, and the two backends reduce sums in
    different orders, so one-ulp noise can flip the argsort of a tie and
    legitimately change which of two equivalent pools gets proposed.
    """
    prior = PriorSpec([0.04, 0.07, 0.11, 0.05, 0.09, 0.13, 0.06, 0.08])
    results = {}
    for backend in ("dense", "sparse"):
        config = SBGTConfig(backend=backend, sparse_floor=0.0, max_stages=40)
        session = SBGTSession(ctx if backend == "dense" else None, prior, MODEL, config)
        try:
            results[backend] = session.run_screen(BHAPolicy(), rng=11)
        finally:
            session.close()
    dense, sparse = results["dense"], results["sparse"]
    assert sparse.efficiency.num_tests == dense.efficiency.num_tests
    assert sparse.stages_used == dense.stages_used
    assert sparse.report.statuses == dense.report.statuses
    assert np.allclose(sparse.report.marginals, dense.report.marginals, atol=1e-9)


def test_sparse_rank_seeding_respects_max_states():
    prior = PriorSpec.uniform(40, 0.03)
    post = SparsePosterior.from_prior(prior, max_states=5000)
    assert post.num_states() <= 5000
    # Support is seeded by whole rank levels: 1 + 40 + C(40,2) = 821.
    assert post.num_states() == 821
    assert post.log_discarded_prior > -np.inf  # some prior mass truncated


# ---------------------------------------------------------------------------
# particle backend: determinism and convergence
# ---------------------------------------------------------------------------
def test_particle_is_deterministic_given_seed():
    runs = []
    for _ in range(2):
        post = ParticlePosterior(PRIOR, num_particles=256, rng=42)
        post.update(0b000111, _ll(True, 0b000111))
        post.update(0b110001, _ll(False, 0b110001))
        runs.append(post.marginals())
    assert np.array_equal(runs[0], runs[1])

    other = ParticlePosterior(PRIOR, num_particles=256, rng=43)
    other.update(0b000111, _ll(True, 0b000111))
    other.update(0b110001, _ll(False, 0b110001))
    assert not np.array_equal(runs[0], other.marginals())


def test_particle_converges_to_exact_marginals():
    exact = Posterior.from_prior(PRIOR, MODEL)
    post = ParticlePosterior(PRIOR, num_particles=8192, rng=5)
    for pool, outcome in [(0b000111, True), (0b111000, False)]:
        exact.update(pool, outcome)
        post.update(pool, _ll(outcome, pool))
    assert np.max(np.abs(post.marginals() - exact.marginals())) < 0.05
    assert post.entropy() == pytest.approx(exact.entropy(), abs=0.35)


def test_particle_resamples_on_ess_collapse():
    post = ParticlePosterior(PRIOR, num_particles=512, rng=1, ess_threshold=0.9)
    # A run of decisive outcomes collapses the weights; the threshold at
    # 0.9 forces resampling, after which weights are uniform again.
    for pool, outcome in [(0b000001, True), (0b000001, True), (0b000001, True)]:
        post.update(pool, _ll(outcome, pool))
    w = np.exp(post.log_weights - post.log_weights.max())
    w /= w.sum()
    ess = 1.0 / np.sum(w**2)
    assert ess > 0.5 * post.num_particles


def test_particle_condition_is_respected_through_rejuvenation():
    post = ParticlePosterior(PRIOR, num_particles=512, rng=9)
    post.condition(negative_mask=0b000001, positive_mask=0b100000)
    for pool, outcome in [(0b000110, True), (0b011000, False), (0b000110, True)]:
        post.update(pool, _ll(outcome, pool))
    marg = post.marginals()
    assert marg[0] == pytest.approx(0.0, abs=1e-12)
    assert marg[5] == pytest.approx(1.0, abs=1e-12)


# ---------------------------------------------------------------------------
# factory, shared PruneStats, payloads
# ---------------------------------------------------------------------------
def test_make_posterior_dispatch(ctx):
    assert isinstance(make_posterior("dense", prior=PRIOR, ctx=ctx), DistributedLattice)
    assert isinstance(make_posterior("sparse", prior=PRIOR), SparsePosterior)
    assert isinstance(make_posterior("particle", prior=PRIOR), ParticlePosterior)
    with pytest.raises(ValueError, match="unknown posterior backend"):
        make_posterior("exactly", prior=PRIOR)
    with pytest.raises(ValueError, match="needs an engine Context"):
        make_posterior("dense", prior=PRIOR)
    with pytest.raises(ValueError, match="needs an engine Context"):
        SBGTSession(None, PRIOR, MODEL, SBGTConfig(backend="dense"))


def test_prune_result_alias_warns():
    import repro.lattice as lattice_pkg

    with pytest.deprecated_call():
        alias = lattice_pkg.PruneResult
    assert alias is PruneStats


def test_prune_stats_is_one_type_everywhere():
    from repro.lattice import PruneStats as lattice_stats
    from repro.sbgt.distributed_lattice import PruneStats as sbgt_stats

    assert lattice_stats is sbgt_stats is PruneStats


def test_backend_field_keeps_dense_payloads_byte_identical():
    from repro.serve.protocol import BadRequest, ScreenRequest, SessionCreateRequest

    default = ScreenRequest.from_payload({"cohort": 6, "prevalence": 0.05})
    explicit = ScreenRequest.from_payload(
        {"cohort": 6, "prevalence": 0.05, "backend": "dense"}
    )
    assert "backend" not in default.canonical()
    assert default.canonical() == explicit.canonical()
    assert default.key() == explicit.key()

    sparse = ScreenRequest.from_payload(
        {"cohort": 6, "prevalence": 0.05, "backend": "sparse"}
    )
    assert sparse.canonical()["backend"] == "sparse"
    assert sparse.key() != default.key()
    assert sparse.build()[3].backend == "sparse"

    with pytest.raises(BadRequest, match="unknown posterior backend"):
        ScreenRequest.from_payload({"cohort": 6, "backend": "exact"})
    assert "backend" not in SessionCreateRequest.from_payload({"cohort": 6}).canonical()


def test_backend_field_lifts_dense_cohort_bound():
    from repro.serve.protocol import (
        MAX_COHORT,
        MAX_COHORT_APPROX,
        BadRequest,
        CalculatorRequest,
        ScreenRequest,
    )

    with pytest.raises(BadRequest, match=r"cohort must be in \[1, 24\]"):
        ScreenRequest.from_payload({"cohort": MAX_COHORT + 1, "prevalence": 0.05})
    req = ScreenRequest.from_payload(
        {"cohort": 100, "prevalence": 0.05, "backend": "sparse"}
    )
    assert req.cohort == 100
    with pytest.raises(BadRequest, match="cohort"):
        ScreenRequest.from_payload(
            {"cohort": MAX_COHORT_APPROX + 1, "prevalence": 0.05, "backend": "sparse"}
        )
    with pytest.raises(BadRequest, match=r"cohort must be in \[1, 24\]"):
        CalculatorRequest.from_payload({"cohort": 30})
    assert CalculatorRequest.from_payload({"cohort": 30, "backend": "particle"})


def test_sparse_screen_request_executes_without_engine():
    from repro.serve.protocol import ScreenRequest

    payload = ScreenRequest.from_payload(
        {"cohort": 40, "prevalence": 0.05, "seed": 3, "backend": "sparse"}
    ).execute(None)
    assert payload["kind"] == "screen"
    assert payload["request"]["backend"] == "sparse"
    assert payload["summary"]["n_items"] == 40
    assert len(payload["classification"]["statuses"]) == 40


def test_serve_default_backend_injection():
    from repro.serve.app import ServeConfig, ReproServer

    with pytest.raises(ValueError, match="default_backend"):
        ServeConfig(default_backend="exact")

    server = ReproServer(ServeConfig(engine_mode="serial", default_backend="sparse"))
    try:
        body = {"cohort": 6, "prevalence": 0.05}
        assert server._with_default_backend(body)["backend"] == "sparse"
        assert "backend" not in body  # original payload untouched
        explicit = {"cohort": 6, "backend": "dense"}
        assert server._with_default_backend(explicit) is explicit
    finally:
        import asyncio

        asyncio.run(server.close())


def test_config_validates_backend_options():
    with pytest.raises(ValueError, match="backend"):
        SBGTConfig(backend="lattice")
    with pytest.raises(ValueError):
        SBGTConfig(sparse_floor=1.5)
    with pytest.raises(ValueError):
        SBGTConfig(num_particles=1)
    with pytest.raises(ValueError):
        SBGTConfig(ess_threshold=1.5)
    assert SBGTConfig(backend="particle", num_particles=64).num_particles == 64


def test_checkpoint_restore_is_dense_only(tmp_path, ctx):
    config = SBGTConfig(backend="sparse")
    with pytest.raises(ValueError, match="dense backend"):
        SBGTSession.load(ctx, tmp_path / "nope.npz", PRIOR, MODEL, config)


def test_no_stray_warnings_from_protocol_path():
    """Speaking the new surface emits no deprecation warnings."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        post = _build("sparse", None)
        post.update(0b000111, _ll(True, 0b000111))
        cands = np.array([0b000011, 0b000101], dtype=np.uint64)
        select_halving_pool_distributed(post, cands)
        post.prune(1e-9)
