"""SBGTSession: full distributed screens and serial agreement."""

import numpy as np
import pytest

from repro.bayes.dilution import DilutionErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import (
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
    InformationGainPolicy,
    LookaheadPolicy,
)
from repro.sbgt.config import SBGTConfig
from repro.sbgt.session import SBGTSession
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen


@pytest.fixture
def prior():
    return PriorSpec.sampled(9, 0.07, rng=5)


@pytest.fixture
def model():
    return DilutionErrorModel(0.98, 0.995, 0.3)


class TestSessionBasics:
    def test_initial_marginals_equal_prior(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        assert np.allclose(session.marginals(), prior.risks, atol=1e-10)
        session.close()

    def test_update_invalidates_marginal_cache(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        before = session.marginals().copy()
        session.update([0, 1], True)
        assert not np.allclose(session.marginals(), before)
        session.close()

    def test_update_accepts_indices_and_masks(self, ctx, prior, model):
        s1 = SBGTSession(ctx, prior, model)
        s2 = SBGTSession(ctx, prior, model)
        s1.update([0, 2], False)
        s2.update(0b101, False)
        assert np.allclose(s1.marginals(), s2.marginals(), atol=1e-12)
        s1.close()
        s2.close()

    def test_empty_pool_rejected(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        with pytest.raises(ValueError):
            session.update(0, False)
        session.close()

    def test_evidence_log_populated(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        session.begin_stage()
        session.update([0, 1, 2], False)
        assert session.num_tests == 1
        assert session.log.records[0].stage == 1
        session.close()

    def test_entropy_tracking_config(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model, SBGTConfig(track_entropy=True))
        rec = session.update([0], False)
        assert rec.entropy_before is not None and rec.entropy_after is not None
        session.close()


class TestSerialAgreement:
    """Distributed screens must replay the serial reference exactly."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            BHAPolicy,
            lambda: LookaheadPolicy(2),
            IndividualTestingPolicy,
            lambda: DorfmanPolicy(3),
            InformationGainPolicy,
        ],
        ids=["bha", "lookahead", "individual", "dorfman", "infogain"],
    )
    def test_full_screen_matches_serial(self, ctx, prior, model, policy_factory):
        cohort = make_cohort(prior, rng=21)
        serial = run_screen(
            prior, model, policy_factory(), rng=77, cohort=cohort, max_stages=40
        )
        session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=40))
        dist = session.run_screen(policy_factory(), rng=77, cohort=cohort)
        assert dist.efficiency.num_tests == serial.efficiency.num_tests
        assert dist.stages_used == serial.stages_used
        assert dist.report.statuses == serial.report.statuses
        assert np.allclose(dist.report.marginals, serial.report.marginals, atol=1e-8)
        session.close()

    def test_screen_with_pruning_still_accurate(self, ctx, model):
        prior = PriorSpec.uniform(10, 0.05)
        cohort = make_cohort(prior, rng=3)
        session = SBGTSession(
            ctx, prior, model, SBGTConfig(prune_epsilon=1e-9, max_stages=40)
        )
        result = session.run_screen(BHAPolicy(), rng=4, cohort=cohort)
        assert result.accuracy == 1.0
        session.close()

    def test_perfect_test_classifies_everyone(self, ctx):
        prior = PriorSpec.uniform(8, 0.1)
        session = SBGTSession(ctx, prior, PerfectTest())
        result = session.run_screen(BHAPolicy(), rng=0)
        assert result.report.all_classified
        assert result.accuracy == 1.0
        assert not result.exhausted_budget
        session.close()

    def test_budget_exhaustion_reported(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=1))
        result = session.run_screen(BHAPolicy(), rng=11)
        assert result.stages_used <= 1
        if not result.report.all_classified:
            assert result.exhausted_budget
        session.close()

    def test_efficiency_beats_individual_at_low_prevalence(self, ctx):
        prior = PriorSpec.uniform(12, 0.02)
        session = SBGTSession(ctx, prior, PerfectTest())
        bha = session.run_screen(BHAPolicy(), rng=9)
        assert bha.tests_per_individual < 1.0
        session.close()
