"""DistributedAnalyzer views."""

import numpy as np
import pytest

from repro.bayes.posterior import Classification, Posterior
from repro.bayes.dilution import BinaryErrorModel
from repro.bayes.priors import PriorSpec
from repro.sbgt.analyzer import DistributedAnalyzer
from repro.sbgt.distributed_lattice import DistributedLattice


@pytest.fixture
def prior():
    return PriorSpec(np.array([0.02, 0.3, 0.1, 0.25]))


@pytest.fixture
def analyzer(ctx, prior):
    dl = DistributedLattice.from_prior(ctx, prior, 3)
    yield DistributedAnalyzer(dl)
    dl.unpersist()


class TestAnalyzer:
    def test_marginals(self, analyzer, prior):
        assert np.allclose(analyzer.marginals(), prior.risks, atol=1e-10)

    def test_entropy_positive(self, analyzer):
        assert analyzer.entropy() > 0

    def test_map_state_prior_is_all_negative(self, analyzer):
        assert analyzer.map_state() == 0  # low risks: empty set most likely

    def test_top_states_probabilities_sorted(self, analyzer):
        top = analyzer.top_states(4)
        probs = [p for _m, p in top]
        assert probs == sorted(probs, reverse=True)

    def test_credible_states_cover_mass(self, analyzer):
        cred = analyzer.credible_states(0.9)
        assert sum(p for _m, p in cred) >= 0.9

    def test_credible_states_minimal_prefix(self, analyzer):
        cred = analyzer.credible_states(0.5)
        without_last = sum(p for _m, p in cred[:-1])
        assert without_last < 0.5

    def test_credible_states_invalid_mass(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.credible_states(0.0)

    def test_credible_states_limit_exceeded(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.credible_states(0.9999999, limit=1)

    def test_classify_matches_serial(self, ctx, prior):
        model = BinaryErrorModel(0.99, 0.99)
        dl = DistributedLattice.from_prior(ctx, prior, 3)
        analyzer = DistributedAnalyzer(dl)
        post = Posterior.from_prior(prior, model)
        ll = model.log_likelihood_by_count(False, 2)
        dl.update(0b0011, ll)
        post.update(0b0011, False)
        d_rep = analyzer.classify(0.9, 0.05)
        s_rep = post.classify(0.9, 0.05)
        assert d_rep.statuses == s_rep.statuses
        dl.unpersist()

    def test_classify_invalid_thresholds(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.classify(0.2, 0.5)

    def test_classify_undetermined_initially(self, analyzer):
        report = analyzer.classify(0.999, 0.001)
        assert all(s is Classification.UNDETERMINED for s in report.statuses)
