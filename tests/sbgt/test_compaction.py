"""Lattice contraction inside SBGT sessions."""

import numpy as np
import pytest

from repro.bayes.dilution import DilutionErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy, LookaheadPolicy
from repro.sbgt.config import SBGTConfig
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.session import SBGTSession
from repro.simulate.population import make_cohort


@pytest.fixture
def prior():
    return PriorSpec.sampled(9, 0.08, rng=17)


@pytest.fixture
def model():
    return DilutionErrorModel(0.98, 0.995, 0.3)


class TestDistributedProjection:
    def test_parity_with_serial(self, ctx, prior):
        from repro.lattice.ops import marginals, project_out_bit

        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        dl.project_out_bit(3, True)
        reference = project_out_bit(space, 3, True)
        assert dl.n_items == 8
        assert dl.num_states() == reference.size
        assert np.allclose(dl.marginals(), marginals(reference), atol=1e-10)
        dl.unpersist()

    def test_repeated_projection_shrinks(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        dl.project_out_bit(0, False)
        dl.project_out_bit(0, False)
        assert dl.n_items == 7
        assert dl.num_states() == 128
        dl.unpersist()

    def test_invalid_bit(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 2)
        with pytest.raises(ValueError):
            dl.project_out_bit(99, True)
        dl.unpersist()


class TestSettle:
    def test_settle_fixes_marginal(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        session.settle(4, True)
        m = session.marginals()
        assert m[4] == 1.0
        assert session.lattice.n_items == 8
        assert session.num_live == 8
        session.close()

    def test_settled_excluded_from_pools(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        session.settle(2, False)
        with pytest.raises(ValueError):
            session.update([2, 3], False)
        session.close()

    def test_update_in_original_indices_after_settle(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, PerfectTest())
        session.settle(0, False)
        session.update([5, 6], False)  # original indices
        m = session.marginals()
        assert np.allclose(m[[5, 6]], 0.0, atol=1e-12)
        session.close()

    def test_double_settle_rejected(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        session.settle(1, True)
        with pytest.raises(ValueError):
            session.settle(1, False)
        session.close()

    def test_map_state_includes_settled_positive(self, ctx, prior, model):
        session = SBGTSession(ctx, prior, model)
        session.settle(3, True)
        assert session.map_state() & (1 << 3)
        session.close()

    def test_settle_everyone(self, ctx, model):
        prior = PriorSpec.uniform(3, 0.1)
        session = SBGTSession(ctx, prior, model)
        session.settle(0, False)
        session.settle(1, True)
        session.settle(2, False)
        assert session.num_live == 0
        assert np.allclose(session.marginals(), [0.0, 1.0, 0.0])
        session.close()


class TestCompactScreens:
    @pytest.mark.parametrize(
        "policy_factory", [BHAPolicy, lambda: LookaheadPolicy(2)], ids=["bha", "lookahead"]
    )
    def test_compact_matches_plain_classifications(self, ctx, prior, model, policy_factory):
        cohort = make_cohort(prior, rng=31)
        plain = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=50))
        r_plain = plain.run_screen(policy_factory(), rng=7, cohort=cohort)
        plain.close()
        compact = SBGTSession(
            ctx, prior, model, SBGTConfig(max_stages=50, compact_classified=True)
        )
        r_compact = compact.run_screen(policy_factory(), rng=7, cohort=cohort)
        # Compaction *commits* settled diagnoses, so the plain run may
        # spend extra tests on individuals whose marginals drift back
        # across a threshold; the final classifications must agree, the
        # exact test counts need not (compact can only be <= here).
        assert r_compact.report.statuses == r_plain.report.statuses
        assert r_compact.efficiency.num_tests <= r_plain.efficiency.num_tests
        compact.close()

    def test_lattice_actually_shrinks(self, ctx, model):
        prior = PriorSpec.uniform(10, 0.05)
        session = SBGTSession(
            ctx, prior, PerfectTest(), SBGTConfig(compact_classified=True)
        )
        result = session.run_screen(BHAPolicy(), rng=12)
        assert result.report.all_classified
        assert session.num_live <= 1
        assert len(session._index.settled) >= 9
        session.close()

    def test_compact_with_pruning(self, ctx, model):
        prior = PriorSpec.uniform(10, 0.05)
        session = SBGTSession(
            ctx,
            prior,
            model,
            SBGTConfig(max_stages=60, compact_classified=True, prune_epsilon=1e-9),
        )
        result = session.run_screen(BHAPolicy(), rng=13)
        assert result.confusion.n_items == 10
        session.close()
