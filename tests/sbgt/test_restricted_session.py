"""Rank-restricted sessions: cohorts beyond dense lattice reach."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.sbgt.config import SBGTConfig
from repro.sbgt.session import SBGTSession
from repro.simulate.population import Cohort


class TestRestrictedSession:
    def test_support_size(self, ctx):
        prior = PriorSpec.uniform(20, 0.02)
        session = SBGTSession(ctx, prior, PerfectTest(), SBGTConfig(max_positives=3))
        assert session.lattice.num_states() == 1 + 20 + 190 + 1140
        session.close()

    def test_discarded_prior_exposed(self, ctx):
        prior = PriorSpec.uniform(20, 0.02)
        session = SBGTSession(ctx, prior, PerfectTest(), SBGTConfig(max_positives=3))
        from scipy.stats import binom

        expected = 1.0 - binom.cdf(3, 20, prior.risks[0])
        assert np.exp(session.log_discarded_prior) == pytest.approx(expected, rel=1e-6)
        session.close()

    def test_dense_session_reports_no_discard(self, ctx):
        prior = PriorSpec.uniform(6, 0.05)
        session = SBGTSession(ctx, prior, PerfectTest())
        assert session.log_discarded_prior == -np.inf
        session.close()

    def test_initial_marginals_close_to_risks(self, ctx):
        prior = PriorSpec.uniform(18, 0.03)
        session = SBGTSession(ctx, prior, PerfectTest(), SBGTConfig(max_positives=4))
        # Restriction renormalises: marginals shrink slightly but stay close.
        assert np.allclose(session.marginals(), 0.03, atol=0.005)
        session.close()

    def test_large_cohort_screen_finds_positives(self, ctx):
        prior = PriorSpec.uniform(24, 0.04)
        cohort = Cohort(prior, truth_mask=(1 << 5) | (1 << 17))
        session = SBGTSession(
            ctx,
            prior,
            BinaryErrorModel(0.99, 0.995),
            SBGTConfig(max_positives=5, max_stages=80, compact_classified=True),
        )
        result = session.run_screen(BHAPolicy(), rng=6, cohort=cohort)
        assert result.report.positives() == [5, 17]
        assert result.accuracy == 1.0
        assert result.tests_per_individual < 1.0
        session.close()

    def test_restricted_agrees_with_dense_when_cap_loose(self, ctx):
        # A cap covering the whole lattice must reproduce the dense prior.
        prior = PriorSpec.uniform(8, 0.1)
        dense = SBGTSession(ctx, prior, PerfectTest())
        restricted = SBGTSession(ctx, prior, PerfectTest(), SBGTConfig(max_positives=8))
        assert np.allclose(dense.marginals(), restricted.marginals(), atol=1e-10)
        dense.close()
        restricted.close()

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            SBGTConfig(max_positives=0)

    def test_restricted_plus_compaction(self, ctx):
        """Contraction on a rank-restricted support stays consistent."""
        prior = PriorSpec.uniform(18, 0.03)
        session = SBGTSession(
            ctx,
            prior,
            PerfectTest(),
            SBGTConfig(max_positives=4, compact_classified=True, max_stages=80),
        )
        result = session.run_screen(BHAPolicy(), rng=14)
        assert result.report.all_classified
        assert result.accuracy == 1.0
        assert session.num_live <= 1
        session.close()

    def test_restricted_plus_pruning(self, ctx):
        prior = PriorSpec.uniform(16, 0.04)
        session = SBGTSession(
            ctx,
            prior,
            BinaryErrorModel(0.99, 0.995),
            SBGTConfig(max_positives=4, prune_epsilon=1e-9, max_stages=80),
        )
        result = session.run_screen(BHAPolicy(), rng=15)
        assert result.confusion.n_items == 16
        assert result.accuracy >= 0.9
        session.close()
