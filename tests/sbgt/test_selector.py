"""Distributed selector parity with the serial rules."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel, LogNormalViralLoadModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.halving.bha import select_halving_pool
from repro.halving.candidates import ExhaustiveCandidates, PrefixCandidates
from repro.halving.lookahead import select_lookahead_pools
from repro.halving.policy import InformationGainPolicy
from repro.sbgt.distributed_lattice import DistributedLattice
from repro.sbgt.selector import (
    down_set_masses_distributed,
    select_halving_pool_distributed,
    select_infogain_pool_distributed,
    select_lookahead_pools_distributed,
)


@pytest.fixture
def prior():
    return PriorSpec(np.array([0.03, 0.15, 0.08, 0.25, 0.12, 0.05, 0.2]))


@pytest.fixture
def dl(ctx, prior):
    lattice = DistributedLattice.from_prior(ctx, prior, 4)
    yield lattice
    lattice.unpersist()


@pytest.fixture
def space(prior):
    return prior.build_dense()


ALL = 0b1111111


class TestHalvingParity:
    def test_same_pool_selected(self, dl, space):
        cands = PrefixCandidates().generate(space.marginals(), ALL)
        assert select_halving_pool_distributed(dl, cands) == pytest.approx(
            select_halving_pool(space, cands)
        )

    def test_exhaustive_candidates(self, dl, space):
        cands = ExhaustiveCandidates(max_pool_size=2).generate(space.marginals(), ALL)
        d = select_halving_pool_distributed(dl, cands)
        s = select_halving_pool(space, cands)
        assert d[0] == s[0]
        assert d[1] == pytest.approx(s[1], abs=1e-10)

    def test_down_set_masses_parity(self, dl, space):
        from repro.halving.bha import down_set_masses

        cands = np.array([0b0000001, 0b0011111, ALL], dtype=np.uint64)
        assert np.allclose(
            down_set_masses_distributed(dl, cands),
            down_set_masses(space, cands),
            atol=1e-10,
        )

    def test_empty_candidates_raise(self, dl):
        with pytest.raises(ValueError):
            select_halving_pool_distributed(dl, np.array([], dtype=np.uint64))


class TestLookaheadParity:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_same_batch_selected(self, dl, space, depth):
        cands = PrefixCandidates().generate(space.marginals(), ALL)
        d_pools, d_obj = select_lookahead_pools_distributed(dl, cands, depth)
        s_pools, s_obj = select_lookahead_pools(space, cands, depth)
        assert d_pools == s_pools
        assert d_obj == pytest.approx(s_obj, abs=1e-10)

    def test_invalid_s(self, dl):
        with pytest.raises(ValueError):
            select_lookahead_pools_distributed(dl, np.array([1], dtype=np.uint64), 0)


class TestInfogainParity:
    @pytest.mark.parametrize(
        "model",
        [BinaryErrorModel(0.95, 0.98), DilutionErrorModel(0.97, 0.99, 0.5)],
        ids=["binary", "dilution"],
    )
    def test_same_pool_selected(self, dl, space, prior, model):
        post = Posterior(space.copy(), model)
        cands = PrefixCandidates().generate(space.marginals(), ALL)
        serial_pool = InformationGainPolicy(PrefixCandidates()).select(post, ALL)[0]
        dist_pool, info = select_infogain_pool_distributed(dl, cands, model)
        assert dist_pool == serial_pool
        assert info > 0

    def test_continuous_model_rejected(self, dl):
        with pytest.raises(ValueError):
            select_infogain_pool_distributed(
                dl, np.array([1], dtype=np.uint64), LogNormalViralLoadModel()
            )
