"""DistributedLattice parity with the serial reference."""

import numpy as np
import pytest

from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.lattice.builder import build_restricted_prior
from repro.lattice.ops import map_state, marginals, top_states
from repro.sbgt.distributed_lattice import DistributedLattice


@pytest.fixture
def prior():
    return PriorSpec(np.array([0.05, 0.2, 0.1, 0.3, 0.15, 0.08]))


@pytest.fixture
def model():
    return DilutionErrorModel(0.97, 0.99, 0.35)


class TestConstruction:
    def test_from_prior_matches_serial(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        collected = dl.collect()
        assert np.array_equal(np.sort(collected.masks), np.sort(space.masks))
        assert np.allclose(dl.marginals(), marginals(space), atol=1e-10)
        dl.unpersist()

    def test_num_states(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        assert dl.num_states() == 64
        dl.unpersist()

    def test_block_count_capped(self, ctx):
        small = PriorSpec.uniform(2, 0.1)
        dl = DistributedLattice.from_prior(ctx, small, 100)
        assert dl.num_blocks <= 4
        dl.unpersist()

    def test_too_many_items_rejected(self, ctx):
        with pytest.raises(ValueError):
            DistributedLattice.from_prior(ctx, PriorSpec.uniform(31, 0.01))

    def test_from_restricted_prior(self, ctx):
        prior = PriorSpec.uniform(12, 0.03)
        dl, log_disc = DistributedLattice.from_restricted_prior(ctx, prior, 3, 4)
        space, log_disc_serial = build_restricted_prior(prior.risks, 3)
        assert dl.num_states() == space.size
        assert np.allclose(dl.marginals(), marginals(space), atol=1e-10)
        assert log_disc == pytest.approx(log_disc_serial, abs=1e-6)
        dl.unpersist()

    def test_from_state_space(self, ctx, prior):
        space = prior.build_dense()
        dl = DistributedLattice.from_state_space(ctx, space, 3)
        assert np.allclose(dl.marginals(), marginals(space), atol=1e-10)
        dl.unpersist()


class TestUpdate:
    def test_update_matches_serial(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        post = Posterior.from_prior(prior, model)
        for pool, outcome in [(0b000111, True), (0b111000, False), (0b000011, True)]:
            size = bin(pool).count("1")
            ll = model.log_likelihood_by_count(outcome, size)
            dl.update(pool, ll)
            post.update(pool, outcome)
            assert np.allclose(dl.marginals(), post.marginals(), atol=1e-10)
        dl.unpersist()

    def test_log_predictive_matches_serial(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        post = Posterior.from_prior(prior, model)
        ll = model.log_likelihood_by_count(True, 3)
        log_pred = dl.update(0b000111, ll)
        rec = post.update(0b000111, True)
        assert log_pred == pytest.approx(rec.log_predictive, abs=1e-10)
        dl.unpersist()

    def test_entropy_matches(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        post = Posterior.from_prior(prior, model)
        assert dl.entropy() == pytest.approx(post.entropy(), abs=1e-9)
        dl.unpersist()

    def test_impossible_outcome_raises(self, ctx):
        from repro.bayes.dilution import PerfectTest

        prior = PriorSpec.uniform(3, 0.1)
        model = PerfectTest()
        dl = DistributedLattice.from_prior(ctx, prior, 2)
        ll_neg = model.log_likelihood_by_count(False, 2)
        ll_pos = model.log_likelihood_by_count(True, 2)
        dl.update(0b011, ll_neg)
        # Same pool now testing positive is (numerically) impossible but
        # the clamped log-zero keeps it finite; mass collapses instead.
        dl.update(0b011, ll_pos)
        assert np.isfinite(dl.entropy())
        dl.unpersist()


class TestAnalyses:
    def test_top_states_match(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        d_top = dl.top_states(5)
        s_top = top_states(space, 5)
        assert [m for m, _ in d_top] == [m for m, _ in s_top]
        assert np.allclose([p for _, p in d_top], [p for _, p in s_top], atol=1e-10)
        dl.unpersist()

    def test_map_state_matches(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        assert dl.map_state() == map_state(prior.build_dense())
        dl.unpersist()

    def test_down_set_masses_match(self, ctx, prior):
        from repro.halving.bha import down_set_masses

        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        pools = np.array([0b000001, 0b000111, 0b111111], dtype=np.uint64)
        assert np.allclose(
            dl.down_set_masses(pools), down_set_masses(space, pools), atol=1e-10
        )
        dl.unpersist()

    def test_count_distribution_matches(self, ctx, prior):
        from repro.lattice.ops import pool_count_distribution

        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        assert np.allclose(
            dl.count_distribution(0b001011),
            pool_count_distribution(space, 0b001011),
            atol=1e-10,
        )
        dl.unpersist()


class TestManipulation:
    def test_condition_matches_serial(self, ctx, prior):
        from repro.lattice.ops import condition_on_classification

        dl = DistributedLattice.from_prior(ctx, prior, 4)
        space = prior.build_dense()
        dl.condition(positive_mask=0b000001, negative_mask=0b000010)
        expected = condition_on_classification(space, 0b000001, 0b000010)
        assert dl.num_states() == expected.size
        assert np.allclose(dl.marginals(), marginals(expected), atol=1e-10)
        dl.unpersist()

    def test_condition_conflict_raises(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 2)
        with pytest.raises(ValueError):
            dl.condition(positive_mask=0b1, negative_mask=0b1)
        dl.unpersist()

    def test_prune_respects_epsilon(self, ctx):
        prior = PriorSpec.uniform(10, 0.02)
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        stats = dl.prune(1e-4)
        assert stats.dropped_mass <= 1e-4 + 1e-9
        assert stats.kept_states + stats.dropped_states == 1024
        assert dl.num_states() == stats.kept_states
        dl.unpersist()

    def test_prune_zero_epsilon_noop(self, ctx, prior):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        stats = dl.prune(0.0)
        assert stats.dropped_states == 0
        dl.unpersist()

    def test_prune_keeps_marginals_close(self, ctx):
        prior = PriorSpec.uniform(10, 0.02)
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        before = dl.marginals()
        dl.prune(1e-6)
        assert np.allclose(dl.marginals(), before, atol=1e-4)
        dl.unpersist()

    def test_rebalance_preserves_distribution(self, ctx):
        prior = PriorSpec.uniform(9, 0.05)
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        dl.prune(1e-5)
        before = dl.marginals()
        dl.rebalance(3)
        assert np.allclose(dl.marginals(), before, atol=1e-10)
        dl.unpersist()


class TestCheckpointing:
    def test_lineage_bounded_by_checkpoint_interval(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        dl.checkpoint_interval = 4
        ll = model.log_likelihood_by_count(False, 2)
        for _ in range(9):  # crosses two checkpoints
            dl.update(0b000011, ll)
        # Just after a checkpoint cycle the lineage is shallow: the rdd
        # chain cannot be deeper than 2 map nodes per un-checkpointed
        # update plus the source.
        depth = dl.rdd.debug_string().count("\n") + 1
        assert depth <= 2 * 4 + 1
        dl.unpersist()

    def test_checkpoint_preserves_distribution(self, ctx, prior, model):
        dl = DistributedLattice.from_prior(ctx, prior, 4)
        dl.checkpoint_interval = 3
        post = Posterior.from_prior(prior, model)
        ll = model.log_likelihood_by_count(True, 3)
        for _ in range(7):
            dl.update(0b000111, ll)
            post.update(0b000111, True)
        assert np.allclose(dl.marginals(), post.marginals(), atol=1e-9)
        dl.unpersist()


class TestAcrossModes:
    def test_serial_mode_parity(self, serial_ctx, prior, model):
        dl = DistributedLattice.from_prior(serial_ctx, prior, 3)
        post = Posterior.from_prior(prior, model)
        ll = model.log_likelihood_by_count(True, 2)
        dl.update(0b000011, ll)
        post.update(0b000011, True)
        assert np.allclose(dl.marginals(), post.marginals(), atol=1e-10)
        dl.unpersist()

    def test_process_mode_parity(self, process_ctx, prior, model):
        dl = DistributedLattice.from_prior(process_ctx, prior, 2)
        post = Posterior.from_prior(prior, model)
        ll = model.log_likelihood_by_count(False, 3)
        dl.update(0b000111, ll)
        post.update(0b000111, False)
        assert np.allclose(dl.marginals(), post.marginals(), atol=1e-10)
        dl.unpersist()
