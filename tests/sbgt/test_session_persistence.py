"""SBGT session checkpoint/restore."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.sbgt.config import SBGTConfig
from repro.sbgt.session import SBGTSession


@pytest.fixture
def prior():
    return PriorSpec.sampled(8, 0.1, rng=12)


@pytest.fixture
def model():
    return BinaryErrorModel(0.96, 0.99)


class TestSessionPersistence:
    def test_round_trip_preserves_belief_and_log(self, ctx, prior, model, tmp_path):
        session = SBGTSession(ctx, prior, model)
        session.begin_stage()
        session.update([0, 1, 2], True)
        session.update([3, 4], False)
        path = tmp_path / "session.npz"
        session.save(path)
        restored = SBGTSession.load(ctx, path, prior, model)
        assert np.allclose(restored.marginals(), session.marginals(), atol=1e-10)
        assert restored.num_tests == session.num_tests
        assert restored.log.log_evidence == pytest.approx(session.log.log_evidence)
        session.close()
        restored.close()

    def test_restored_session_continues_identically(self, ctx, prior, model, tmp_path):
        a = SBGTSession(ctx, prior, model)
        a.update([0, 1], True)
        path = tmp_path / "mid.npz"
        a.save(path)
        b = SBGTSession.load(ctx, path, prior, model)
        a.update([2, 3], False)
        b.update([2, 3], False)
        assert np.allclose(a.marginals(), b.marginals(), atol=1e-10)
        a.close()
        b.close()

    def test_stage_counter_continues(self, ctx, prior, model, tmp_path):
        session = SBGTSession(ctx, prior, model)
        session.begin_stage()
        session.begin_stage()
        path = tmp_path / "s.npz"
        session.save(path)
        restored = SBGTSession.load(ctx, path, prior, model)
        assert restored.begin_stage() == 3
        session.close()
        restored.close()

    def test_restored_screen_runs(self, ctx, prior, model, tmp_path):
        session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=40))
        session.update([0, 1, 2, 3], False)
        path = tmp_path / "resume.npz"
        session.save(path)
        session.close()
        restored = SBGTSession.load(ctx, path, prior, model, SBGTConfig(max_stages=40))
        result = restored.run_screen(BHAPolicy(), rng=5)
        assert result.confusion.n_items == 8
        restored.close()

    def test_contracted_session_rejected(self, ctx, prior, model, tmp_path):
        session = SBGTSession(ctx, prior, model)
        session.settle(0, False)
        with pytest.raises(ValueError):
            session.save(tmp_path / "x.npz")
        session.close()

    def test_cohort_size_mismatch_rejected(self, ctx, prior, model, tmp_path):
        session = SBGTSession(ctx, prior, model)
        path = tmp_path / "m.npz"
        session.save(path)
        session.close()
        with pytest.raises(ValueError):
            SBGTSession.load(ctx, path, PriorSpec.uniform(5, 0.1), model)
