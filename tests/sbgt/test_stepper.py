"""The stage-by-stage screen driver (`ScreenStepper`)."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.halving.policy import BHAPolicy, DorfmanPolicy
from repro.sbgt.config import SBGTConfig
from repro.sbgt.session import SBGTSession
from repro.sbgt.stepper import ScreenStepper
from repro.simulate.population import make_cohort
from repro.simulate.testing import TestLab
from repro.util.rng import as_rng


@pytest.fixture
def ctx():
    with Context(mode="serial") as c:
        yield c


def _drive_interactively(ctx, prior, model, policy, config, seed):
    """Replicate the batch path's RNG consumption, outcomes from outside."""
    gen = as_rng(seed)
    cohort = make_cohort(prior, gen)
    lab = TestLab(model, cohort.truth_mask, gen)
    session = SBGTSession(ctx, prior, model, config)
    stepper = ScreenStepper(session, policy)
    while not stepper.done:
        pools = stepper.next_pools()
        stepper.submit_outcomes([lab.run(p) for p in pools])
    result = stepper.result(cohort)
    session.close()
    return result


class TestStepperEquivalence:
    @pytest.mark.parametrize("policy_cls", [BHAPolicy, lambda: DorfmanPolicy(4)])
    def test_matches_batch_run_screen(self, ctx, policy_cls):
        prior = PriorSpec.uniform(10, 0.08)
        model = BinaryErrorModel(0.97, 0.99)
        config = SBGTConfig(max_stages=40)

        batch_session = SBGTSession(ctx, prior, model, config)
        batch = batch_session.run_screen(policy_cls(), rng=7)
        batch_session.close()

        stepped = _drive_interactively(ctx, prior, model, policy_cls(), config, seed=7)

        assert stepped.report.statuses == batch.report.statuses
        assert stepped.report.marginals.tobytes() == batch.report.marginals.tobytes()
        assert stepped.stages_used == batch.stages_used
        assert stepped.efficiency.num_tests == batch.efficiency.num_tests
        assert stepped.efficiency.num_samples_used == batch.efficiency.num_samples_used
        assert stepped.cohort.truth_mask == batch.cohort.truth_mask
        assert stepped.exhausted_budget == batch.exhausted_budget

    def test_matches_under_compaction(self, ctx):
        prior = PriorSpec.uniform(9, 0.1)
        model = PerfectTest()
        config = SBGTConfig(compact_classified=True)

        batch_session = SBGTSession(ctx, prior, model, config)
        batch = batch_session.run_screen(BHAPolicy(), rng=3)
        batch_session.close()

        stepped = _drive_interactively(ctx, prior, model, BHAPolicy(), config, seed=3)
        assert stepped.report.statuses == batch.report.statuses
        assert stepped.report.marginals.tobytes() == batch.report.marginals.tobytes()


class TestStepperProtocol:
    def test_next_pools_idempotent_until_outcomes(self, ctx):
        prior = PriorSpec.uniform(8, 0.1)
        session = SBGTSession(ctx, prior, PerfectTest())
        stepper = ScreenStepper(session, BHAPolicy())
        first = stepper.next_pools()
        assert stepper.next_pools() == first
        assert stepper.pending_pools == first
        session.close()

    def test_submit_requires_proposal(self, ctx):
        prior = PriorSpec.uniform(8, 0.1)
        session = SBGTSession(ctx, prior, PerfectTest())
        stepper = ScreenStepper(session, BHAPolicy())
        with pytest.raises(RuntimeError, match="no pools outstanding"):
            stepper.submit_outcomes([1])
        session.close()

    def test_submit_checks_outcome_count(self, ctx):
        prior = PriorSpec.uniform(8, 0.1)
        session = SBGTSession(ctx, prior, PerfectTest())
        stepper = ScreenStepper(session, BHAPolicy())
        pools = stepper.next_pools()
        with pytest.raises(ValueError, match="outcome"):
            stepper.submit_outcomes([0] * (len(pools) + 1))
        session.close()

    def test_budget_exhaustion_reported(self, ctx):
        prior = PriorSpec.uniform(8, 0.3)
        session = SBGTSession(ctx, prior, BinaryErrorModel(0.9, 0.9),
                              SBGTConfig(max_stages=1))
        stepper = ScreenStepper(session, BHAPolicy())
        gen = as_rng(0)
        cohort = make_cohort(prior, gen)
        lab = TestLab(session.model, cohort.truth_mask, gen)
        pools = stepper.next_pools()
        stepper.submit_outcomes([lab.run(p) for p in pools])
        assert stepper.done
        assert stepper.exhausted_budget
        assert stepper.next_pools() == []
        with pytest.raises(RuntimeError, match="finished"):
            stepper.submit_outcomes([])
        session.close()

    def test_result_requires_completion(self, ctx):
        prior = PriorSpec.uniform(8, 0.1)
        session = SBGTSession(ctx, prior, PerfectTest())
        stepper = ScreenStepper(session, BHAPolicy())
        gen = as_rng(0)
        cohort = make_cohort(prior, gen)
        with pytest.raises(RuntimeError, match="in progress"):
            stepper.result(cohort)
        session.close()

    def test_marginals_are_probabilities(self, ctx):
        prior = PriorSpec.uniform(8, 0.05)
        session = SBGTSession(ctx, prior, PerfectTest())
        stepper = ScreenStepper(session, BHAPolicy())
        assert np.all(stepper.report.marginals >= 0.0)
        assert np.all(stepper.report.marginals <= 1.0)
        session.close()
