"""SBGTConfig validation."""

import dataclasses

import pytest

from repro.sbgt.config import SBGTConfig


class TestSBGTConfig:
    def test_defaults_valid(self):
        cfg = SBGTConfig()
        assert cfg.prune_epsilon == 0.0
        assert cfg.positive_threshold == 0.99

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_blocks": -1},
            {"prune_epsilon": 1.0},
            {"prune_epsilon": -0.1},
            {"prune_interval": 0},
            {"positive_threshold": 0.5, "negative_threshold": 0.6},
            {"max_stages": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SBGTConfig(**kwargs)

    def test_with_replaces(self):
        cfg = SBGTConfig().with_(prune_epsilon=0.01)
        assert cfg.prune_epsilon == 0.01
        assert cfg.max_stages == 50

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SBGTConfig().max_stages = 3
