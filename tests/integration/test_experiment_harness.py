"""The experiment harness itself (micro-scale run of every Rn)."""

import pytest

from benchmarks.run_experiments import EXPERIMENTS, SCALES, main
from repro.engine import Context

MICRO = {
    "r123_baseline_ns": [8],
    "r123_sbgt_ns": [8, 10],
    "r4_n": 10,
    "r4_workers": [1, 2],
    "r5_prevalences": [0.02, 0.2],
    "r5_reps": 2,
    "r6_reps": 2,
    "r7_dilutions": [0.0, 0.5],
    "r7_reps": 2,
    "r8_n": 10,
    "repeats": 1,
}


@pytest.fixture(scope="module")
def harness_ctx():
    with Context(mode="threads", parallelism=2) as c:
        yield c


class TestExperimentFunctions:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_runs_and_renders(self, harness_ctx, name):
        table = EXPERIMENTS[name](MICRO, harness_ctx)
        assert name.upper().split("R")[-1][0].isdigit()
        assert "—" in table  # has a title
        assert "|" in table  # has columns

    def test_r1_has_speedup_column(self, harness_ctx):
        assert "sbgt/pydict" in EXPERIMENTS["r1"](MICRO, harness_ctx)

    def test_r4_reports_efficiency(self, harness_ctx):
        out = EXPERIMENTS["r4"](MICRO, harness_ctx)
        assert "efficiency" in out
        assert "100.0 %".replace(" ", "") in out.replace(" ", "")

    def test_r5_includes_all_policies(self, harness_ctx):
        out = EXPERIMENTS["r5"](MICRO, harness_ctx)
        for col in ("bha", "dorfman", "array", "individual", "shannon"):
            assert col in out


class TestCli:
    def test_scales_registered(self):
        assert set(SCALES) == {"small", "full"}

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["r99"])

    def test_out_file_written(self, tmp_path, monkeypatch):
        # Patch the small scale down to the micro config for speed.
        monkeypatch.setitem(SCALES, "small", MICRO)
        out = tmp_path / "results.txt"
        assert main(["r6", "--out", str(out)]) == 0
        assert "R6" in out.read_text()
