"""Property-based end-to-end screens: invariants over random cohorts."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import (
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
    LookaheadPolicy,
)
from repro.simulate.population import Cohort
from repro.workflows.classify import run_screen

common = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

POLICY_FACTORIES = [
    BHAPolicy,
    lambda: LookaheadPolicy(2),
    IndividualTestingPolicy,
    lambda: DorfmanPolicy(3),
]


@st.composite
def screen_cases(draw):
    n = draw(st.integers(4, 9))
    # Risks strictly inside the (0.01, 0.99) undetermined band: a risk at
    # or below the clearance threshold is legitimately classified from
    # the prior without any test (covered by test_counters_consistent).
    risks = draw(
        st.lists(st.floats(0.02, 0.4), min_size=n, max_size=n)
    )
    truth = draw(st.integers(0, (1 << n) - 1))
    policy_idx = draw(st.integers(0, len(POLICY_FACTORIES) - 1))
    return np.array(risks), truth, policy_idx


@common
@given(case=screen_cases())
def test_perfect_test_always_exact(case):
    """With a noiseless assay every screen must classify perfectly."""
    risks, truth, policy_idx = case
    prior = PriorSpec(risks)
    cohort = Cohort(prior, truth_mask=truth)
    result = run_screen(
        prior, PerfectTest(), POLICY_FACTORIES[policy_idx](), rng=0,
        cohort=cohort, max_stages=80,
    )
    assert result.report.all_classified
    assert result.accuracy == 1.0
    assert result.report.positives() == sorted(
        i for i in range(prior.n_items) if (truth >> i) & 1
    )


@common
@given(case=screen_cases())
def test_counters_consistent(case):
    risks, truth, policy_idx = case
    prior = PriorSpec(risks)
    cohort = Cohort(prior, truth_mask=truth)
    result = run_screen(
        prior, PerfectTest(), POLICY_FACTORIES[policy_idx](), rng=0,
        cohort=cohort, max_stages=80,
    )
    assert result.efficiency.num_tests == result.posterior.num_tests
    # A prior already below the clearance threshold legitimately settles
    # the whole cohort with zero tests; otherwise at least one stage ran.
    if result.efficiency.num_tests == 0:
        assert result.stages_used == 0
        assert result.report.all_classified
    else:
        assert result.stages_used >= 1
    assert result.efficiency.num_samples_used >= result.efficiency.num_tests


@common
@given(case=screen_cases(), seed=st.integers(0, 100))
def test_noisy_screens_keep_valid_marginals(case, seed):
    risks, truth, policy_idx = case
    prior = PriorSpec(risks)
    cohort = Cohort(prior, truth_mask=truth)
    result = run_screen(
        prior, BinaryErrorModel(0.93, 0.97), POLICY_FACTORIES[policy_idx](),
        rng=seed, cohort=cohort, max_stages=15,
    )
    m = result.report.marginals
    assert np.all(m >= -1e-12) and np.all(m <= 1 + 1e-12)
    assert np.isfinite(result.posterior.log.log_evidence)


@common
@given(case=screen_cases())
def test_screen_deterministic_replay(case):
    risks, truth, policy_idx = case
    prior = PriorSpec(risks)
    cohort = Cohort(prior, truth_mask=truth)

    def once():
        return run_screen(
            prior, BinaryErrorModel(0.95, 0.98), POLICY_FACTORIES[policy_idx](),
            rng=42, cohort=cohort, max_stages=25,
        )

    a, b = once(), once()
    assert a.efficiency.num_tests == b.efficiency.num_tests
    assert a.report.statuses == b.report.statuses
