"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{script} produced no output"
