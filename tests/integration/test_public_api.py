"""Public API stability: every advertised name resolves and works."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.engine",
    "repro.lattice",
    "repro.bayes",
    "repro.halving",
    "repro.sbgt",
    "repro.baseline",
    "repro.simulate",
    "repro.metrics",
    "repro.workflows",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} has no __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_public_docstrings(self, package):
        mod = importlib.import_module(package)
        assert mod.__doc__ and mod.__doc__.strip(), f"{package} lacks a module docstring"
        for name in mod.__all__:
            obj = getattr(mod, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__ and obj.__doc__.strip(), (
                    f"{package}.{name} lacks a docstring"
                )

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_quickstart_surface(self):
        # The exact names the README quickstart uses must exist at top level.
        for name in (
            "Context",
            "PriorSpec",
            "DilutionErrorModel",
            "SBGTSession",
            "BHAPolicy",
            "run_screen",
        ):
            assert hasattr(repro, name)


class TestScreenSummary:
    def test_summary_keys_and_values(self):
        from repro import BHAPolicy, PerfectTest, PriorSpec, run_screen

        result = run_screen(PriorSpec.uniform(8, 0.1), PerfectTest(), BHAPolicy(), rng=1)
        s = result.summary()
        assert s["n_items"] == 8
        assert s["accuracy"] == 1.0
        assert s["tests"] == result.efficiency.num_tests
        assert isinstance(s["exhausted_budget"], bool)
