"""Cross-layer integration: scenarios, modes, serial/distributed parity."""

import numpy as np
import pytest

from repro import (
    BHAPolicy,
    Context,
    DorfmanPolicy,
    IndividualTestingPolicy,
    LookaheadPolicy,
    PriorSpec,
    SBGTConfig,
    SBGTSession,
    get_scenario,
    make_cohort,
    run_screen,
)
from repro.bayes.dilution import DilutionErrorModel, PerfectTest


class TestScenarios:
    @pytest.mark.parametrize("name", ["community", "outbreak", "hospital"])
    def test_serial_screen_completes(self, name):
        prior, model = get_scenario(name).build(10, rng=1)
        result = run_screen(prior, model, BHAPolicy(), rng=2, max_stages=60)
        assert result.efficiency.num_tests > 0
        assert result.confusion.n_items == 10

    @pytest.mark.parametrize("name", ["community", "outbreak"])
    def test_distributed_matches_serial(self, ctx, name):
        prior, model = get_scenario(name).build(9, rng=3)
        cohort = make_cohort(prior, rng=4)
        serial = run_screen(prior, model, BHAPolicy(), rng=5, cohort=cohort, max_stages=60)
        session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=60))
        dist = session.run_screen(BHAPolicy(), rng=5, cohort=cohort)
        assert dist.report.statuses == serial.report.statuses
        assert dist.efficiency.num_tests == serial.efficiency.num_tests
        session.close()


class TestExecutorModeParity:
    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_sbgt_screen_identical_across_modes(self, mode):
        prior = PriorSpec.sampled(8, 0.1, rng=7)
        model = DilutionErrorModel(0.98, 0.99, 0.3)
        cohort = make_cohort(prior, rng=8)
        with Context(mode=mode, parallelism=2) as ctx:
            session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=40))
            result = session.run_screen(BHAPolicy(), rng=9, cohort=cohort)
            # Serial reference as the mode-independent oracle.
            serial = run_screen(
                prior, model, BHAPolicy(), rng=9, cohort=cohort, max_stages=40
            )
            assert result.report.statuses == serial.report.statuses
            assert result.efficiency.num_tests == serial.efficiency.num_tests


class TestPolicyOrdering:
    """The qualitative results the paper's motivation rests on."""

    def test_policy_cost_ordering_low_prevalence(self):
        prior = PriorSpec.uniform(12, 0.02)
        costs = {}
        for policy_factory in (BHAPolicy, lambda: DorfmanPolicy(6), IndividualTestingPolicy):
            total = 0
            for seed in range(6):
                res = run_screen(prior, PerfectTest(), policy_factory(), rng=seed)
                total += res.efficiency.num_tests
            costs[res.posterior.model.__class__.__name__ + str(policy_factory)] = total
        values = list(costs.values())
        bha, dorfman, individual = values
        assert bha <= dorfman <= individual

    def test_lookahead_trades_tests_for_stages(self):
        prior = PriorSpec.uniform(10, 0.05)
        bha_stages = bha_tests = la_stages = la_tests = 0
        for seed in range(6):
            cohort = make_cohort(prior, rng=100 + seed)
            b = run_screen(prior, PerfectTest(), BHAPolicy(), rng=seed, cohort=cohort)
            l = run_screen(
                prior, PerfectTest(), LookaheadPolicy(3), rng=seed, cohort=cohort
            )
            bha_stages += b.stages_used
            bha_tests += b.efficiency.num_tests
            la_stages += l.stages_used
            la_tests += l.efficiency.num_tests
        assert la_stages < bha_stages  # fewer lab round-trips
        assert la_tests >= bha_tests  # at the price of some extra tests

    def test_dilution_increases_cost(self):
        prior = PriorSpec.uniform(10, 0.05)
        mild_total = strong_total = 0
        for seed in range(5):
            cohort = make_cohort(prior, rng=200 + seed)
            mild = run_screen(
                prior, DilutionErrorModel(0.99, 0.999, 0.05), BHAPolicy(),
                rng=seed, cohort=cohort, max_stages=80,
            )
            strong = run_screen(
                prior, DilutionErrorModel(0.99, 0.999, 1.2), BHAPolicy(),
                rng=seed, cohort=cohort, max_stages=80,
            )
            mild_total += mild.efficiency.num_tests
            strong_total += strong.efficiency.num_tests
        assert strong_total >= mild_total


class TestRestrictedLatticeWorkflow:
    def test_large_cohort_via_restriction(self, ctx):
        from repro.sbgt.distributed_lattice import DistributedLattice

        prior = PriorSpec.uniform(20, 0.01)
        dl, log_disc = DistributedLattice.from_restricted_prior(ctx, prior, 3, 8)
        # Support is C(20,0..3) = 1 + 20 + 190 + 1140
        assert dl.num_states() == 1351
        assert np.exp(log_disc) < 1e-3
        marg = dl.marginals()
        assert np.allclose(marg, 0.01, atol=5e-3)
        dl.unpersist()
