"""Unit + property tests for the bit-mask kernels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.bits import (
    MAX_ITEMS,
    bit_column,
    indices_from_mask,
    intersect_count,
    is_subset,
    mask_from_indices,
    popcount64,
)


class TestMaskFromIndices:
    def test_empty(self):
        assert mask_from_indices([]) == 0

    def test_single_bit(self):
        assert mask_from_indices([3]) == 8

    def test_multiple_bits(self):
        assert mask_from_indices([0, 1, 4]) == 0b10011

    def test_duplicates_collapse(self):
        assert mask_from_indices([2, 2, 2]) == 4

    def test_highest_bit(self):
        assert mask_from_indices([63]) == np.uint64(1) << np.uint64(63)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            mask_from_indices([64])
        with pytest.raises(ValueError):
            mask_from_indices([-1])


class TestIndicesFromMask:
    def test_zero(self):
        assert indices_from_mask(0) == []

    def test_round_trip(self):
        idx = [0, 5, 17, 63]
        assert indices_from_mask(int(mask_from_indices(idx))) == idx

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            indices_from_mask(-1)


class TestPopcount:
    def test_known_values(self):
        masks = np.array([0, 1, 3, 0xFF, 2**63], dtype=np.uint64)
        assert popcount64(masks).tolist() == [0, 1, 2, 8, 1]

    def test_all_ones(self):
        assert popcount64(np.array([2**64 - 1], dtype=np.uint64))[0] == 64

    def test_empty_array(self):
        assert popcount64(np.array([], dtype=np.uint64)).size == 0

    def test_returns_int64(self):
        assert popcount64(np.array([7], dtype=np.uint64)).dtype == np.int64

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=100))
    def test_matches_python_bin_count(self, values):
        masks = np.array(values, dtype=np.uint64)
        expected = [bin(v).count("1") for v in values]
        assert popcount64(masks).tolist() == expected

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=100))
    def test_swar_and_native_agree(self, values):
        from repro.util.bits import _popcount64_swar

        masks = np.array(values, dtype=np.uint64)
        assert _popcount64_swar(masks).tolist() == popcount64(masks).tolist()


class TestIntersectCount:
    def test_disjoint(self):
        masks = np.array([0b1100], dtype=np.uint64)
        assert intersect_count(masks, 0b0011)[0] == 0

    def test_partial_overlap(self):
        masks = np.array([0b1110], dtype=np.uint64)
        assert intersect_count(masks, 0b0110)[0] == 2

    @given(
        st.lists(st.integers(min_value=0, max_value=2**32), max_size=50),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_matches_python(self, values, pool):
        masks = np.array(values, dtype=np.uint64)
        expected = [bin(v & pool).count("1") for v in values]
        assert intersect_count(masks, pool).tolist() == expected


class TestIsSubset:
    def test_subset_true(self):
        assert is_subset(np.array([0b0101], dtype=np.uint64), 0b1101)[0]

    def test_subset_false(self):
        assert not is_subset(np.array([0b0101], dtype=np.uint64), 0b1100)[0]

    def test_zero_subset_of_anything(self):
        assert is_subset(np.array([0], dtype=np.uint64), 0)[0]

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
    )
    def test_matches_python(self, mask, super_mask):
        expected = (mask & ~super_mask) == 0
        assert bool(is_subset(np.array([mask], dtype=np.uint64), super_mask)[0]) == expected


class TestBitColumn:
    def test_basic(self):
        masks = np.array([0b001, 0b010, 0b011], dtype=np.uint64)
        assert bit_column(masks, 0).tolist() == [True, False, True]
        assert bit_column(masks, 1).tolist() == [False, True, True]

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_column(np.array([1], dtype=np.uint64), MAX_ITEMS)
        with pytest.raises(ValueError):
            bit_column(np.array([1], dtype=np.uint64), -1)

    @given(st.integers(min_value=0, max_value=2**63), st.integers(min_value=0, max_value=63))
    def test_matches_python(self, mask, bit):
        expected = bool((mask >> bit) & 1)
        assert bool(bit_column(np.array([mask], dtype=np.uint64), bit)[0]) == expected
