"""Tests for the timing helpers."""

import time

from repro.util.timer import Timer, WallClock


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert 0.005 < t.elapsed < 1.0

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestWallClock:
    def test_record_and_total(self):
        clock = WallClock()
        clock.record("update", 1.0)
        clock.record("update", 2.0)
        assert clock.total("update") == 3.0
        assert clock.count("update") == 2
        assert clock.mean("update") == 1.5

    def test_unknown_label_zero(self):
        clock = WallClock()
        assert clock.total("missing") == 0.0
        assert clock.count("missing") == 0
        assert clock.mean("missing") == 0.0

    def test_context_manager_times(self):
        clock = WallClock()
        with clock.time("op"):
            time.sleep(0.005)
        assert clock.count("op") == 1
        assert clock.total("op") > 0.0

    def test_merge(self):
        a, b = WallClock(), WallClock()
        a.record("x", 1.0)
        b.record("x", 2.0)
        b.record("y", 3.0)
        a.merge(b)
        assert a.total("x") == 3.0
        assert a.total("y") == 3.0

    def test_report_structure(self):
        clock = WallClock()
        clock.record("a", 2.0)
        rep = clock.report()
        assert rep["a"]["total_s"] == 2.0
        assert rep["a"]["count"] == 1.0
