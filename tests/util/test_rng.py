"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(42).integers(1000) == as_rng(42).integers(1000)

    def test_different_seeds_differ(self):
        draws_a = as_rng(1).integers(0, 2**31, size=8)
        draws_b = as_rng(2).integers(0, 2**31, size=8)
        assert not np.array_equal(draws_a, draws_b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_rng(seq), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            as_rng("not-an-rng")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_deterministic_from_seed(self):
        first = [g.integers(1000) for g in spawn_rngs(99, 3)]
        second = [g.integers(1000) for g in spawn_rngs(99, 3)]
        assert first == second
