"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_positive_int,
    check_probability,
    check_probability_array,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan"), float("inf")])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability(value)

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="myarg"):
            check_probability(2.0, "myarg")


class TestCheckProbabilityArray:
    def test_valid(self):
        out = check_probability_array([0.1, 0.9])
        assert out.dtype == np.float64

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            check_probability_array([])

    @pytest.mark.parametrize("values", [[-0.1], [1.5], [float("nan")]])
    def test_invalid_values(self, values):
        with pytest.raises(ValueError):
            check_probability_array(values)


class TestCheckPositiveInt:
    @pytest.mark.parametrize("value", [1, 7, 10**9])
    def test_valid(self, value):
        assert check_positive_int(value) == value

    @pytest.mark.parametrize("value", [0, -3, 1.5])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value)


class TestCheckInRange:
    def test_valid(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5

    def test_bounds_inclusive(self):
        assert check_in_range(0.0, 0.0, 1.0) == 0.0
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            check_in_range(value, 0.0, 1.0)
