"""Stable log-space helpers."""

import numpy as np
import pytest

from repro.util import log1mexp


class TestLog1mexp:
    def test_moderate_value_matches_naive(self):
        x = -1.0
        assert log1mexp(x) == pytest.approx(np.log(1.0 - np.exp(-1.0)), rel=1e-14)

    def test_tiny_magnitude_does_not_underflow_to_neg_inf(self):
        # The regression this helper fixes: for |x| below float epsilon,
        # exp(x) rounds to exactly 1.0 and log1p(-exp(x)) returns -inf,
        # although the true value is ~log(|x|).
        x = -1e-18
        naive = np.log1p(-np.exp(x))
        assert np.isneginf(naive)  # documents the failure being fixed
        assert log1mexp(x) == pytest.approx(np.log(1e-18), rel=1e-12)

    def test_large_negative_tail(self):
        # 1 - exp(-50) ≈ 1, so log ≈ -exp(-50): a subnormal-free near-zero.
        x = -50.0
        assert log1mexp(x) == pytest.approx(-np.exp(-50.0), rel=1e-12)

    def test_zero_gives_neg_inf(self):
        assert np.isneginf(log1mexp(0.0))

    def test_tiny_positive_drift_tolerated(self):
        # Aggregation round-off can leave log_kept a hair above zero.
        assert np.isneginf(log1mexp(1e-12))

    def test_genuinely_positive_raises(self):
        with pytest.raises(ValueError):
            log1mexp(0.5)

    def test_array_input(self):
        x = np.array([-1e-18, -0.1, -1.0, -50.0])
        out = log1mexp(x)
        assert isinstance(out, np.ndarray)
        expected = [np.log(1e-18), np.log(-np.expm1(-0.1)), np.log(1 - np.exp(-1.0)), -np.exp(-50.0)]
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_scalar_returns_float(self):
        assert isinstance(log1mexp(-1.0), float)

    def test_branch_point_continuous(self):
        # The two branches must agree where they meet (x = -ln 2).
        x = float(np.log(0.5))
        lo = log1mexp(np.nextafter(x, -np.inf))
        hi = log1mexp(np.nextafter(x, 0.0))
        assert lo == pytest.approx(hi, abs=1e-12)
