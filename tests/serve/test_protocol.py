"""Request parsing/validation and canonical-key behaviour."""

import pytest

from repro.serve.protocol import (
    AssaySpec,
    BadRequest,
    CalculatorRequest,
    ScreenRequest,
    SessionCreateRequest,
)


class TestCalculatorRequest:
    def test_defaults(self):
        req = CalculatorRequest.from_payload({})
        assert req.cohort == 12
        assert req.policy == "bha"
        assert req.assay.assay == "dilution"

    def test_equal_requests_share_a_key(self):
        a = CalculatorRequest.from_payload({"cohort": 8, "seed": 3})
        b = CalculatorRequest.from_payload({"seed": 3, "cohort": 8})
        assert a.key() == b.key()

    def test_different_requests_have_different_keys(self):
        a = CalculatorRequest.from_payload({"cohort": 8, "seed": 3})
        b = CalculatorRequest.from_payload({"cohort": 8, "seed": 4})
        assert a.key() != b.key()

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"cohort": 0}, "cohort"),
            ({"cohort": 25}, "cohort"),
            ({"cohort": True}, "cohort"),
            ({"prevalences": []}, "prevalences"),
            ({"prevalences": [0.0]}, "prevalence"),
            ({"prevalences": [1.5]}, "prevalence"),
            ({"replications": 0}, "replications"),
            ({"replications": 1000}, "replications"),
            ({"policy": "nope"}, "policy"),
            ({"policy": 7}, "policy"),
            ({"bogus": 1}, "unknown"),
            ({"assay": {"assay": "psychic"}}, "assay"),
            ({"assay": {"sensitivity": 0.2}}, "sensitivity"),
        ],
    )
    def test_rejects_bad_fields(self, payload, match):
        with pytest.raises(BadRequest, match=match):
            CalculatorRequest.from_payload(payload)

    def test_execute_is_deterministic(self):
        req = CalculatorRequest.from_payload(
            {"cohort": 5, "prevalences": [0.05], "replications": 2, "seed": 7}
        )
        assert req.execute() == req.execute()
        entry = req.execute()["entries"][0]
        assert entry["verdict"] in ("pool", "individual")


class TestScreenRequest:
    def test_scenario_overrides_prevalence_in_canonical(self):
        req = ScreenRequest.from_payload({"scenario": "community", "cohort": 8})
        canon = req.canonical()
        assert canon["scenario"] == "community"
        assert "prevalence" not in canon and "assay" not in canon

    def test_unknown_scenario_rejected(self):
        with pytest.raises(BadRequest, match="scenario"):
            ScreenRequest.from_payload({"scenario": "moonbase"})

    def test_build_produces_runnable_pieces(self):
        prior, model, policy, config = ScreenRequest.from_payload(
            {"cohort": 6, "prevalence": 0.1, "policy": "dorfman-3", "max_stages": 9}
        ).build()
        assert prior.n_items == 6
        assert policy.name.startswith("dorfman")
        assert config.max_stages == 9

    def test_key_separates_screen_from_session(self):
        screen = ScreenRequest.from_payload({"cohort": 8, "seed": 1})
        session = SessionCreateRequest.from_payload({"cohort": 8, "seed": 1})
        assert screen.key() != "" and screen.canonical() != session.canonical()


class TestSessionCreateRequest:
    def test_thresholds_validated(self):
        with pytest.raises(BadRequest, match="threshold"):
            SessionCreateRequest.from_payload(
                {"positive_threshold": 0.3, "negative_threshold": 0.5}
            )

    def test_thresholds_reach_config(self):
        _, _, _, config = SessionCreateRequest.from_payload(
            {"positive_threshold": 0.95, "negative_threshold": 0.05}
        ).build()
        assert config.positive_threshold == 0.95
        assert config.negative_threshold == 0.05


class TestAssaySpec:
    def test_round_trip(self):
        spec = AssaySpec.from_payload({"assay": "binary", "sensitivity": 0.9})
        assert spec.canonical()["assay"] == "binary"
        model = spec.build()
        assert model is not None

    def test_none_is_default(self):
        assert AssaySpec.from_payload(None) == AssaySpec()
