"""Interactive session API ≡ batch screen, byte for byte.

A scripted client drives ``POST /sessions`` → ``GET next-pool`` →
``POST results`` with a locally simulated lab that replicates the batch
loop's RNG order exactly (cohort draw, then assay noise, off one
generator).  The final classification must match
:meth:`SBGTSession.run_screen` at the same seed **byte-identically** —
same statuses, bit-equal marginals — because interactive and batch
screens now share :class:`ScreenStepper`.
"""

import json

from repro.engine import Context
from repro.sbgt.session import SBGTSession
from repro.serve.app import ServeConfig
from repro.serve.protocol import ScreenRequest
from repro.simulate.population import make_cohort
from repro.simulate.testing import TestLab
from repro.util.rng import as_rng

from tests.serve.serve_utils import http_call, run_with_server

PARAMS = {"cohort": 10, "prevalence": 0.08, "policy": "bha", "seed": 11}


def _batch_payload(params):
    """Ground truth: the one-shot screen the server's /screen would run."""
    req = ScreenRequest.from_payload(dict(params))
    with Context(mode="threads", parallelism=2) as ctx:
        return req.execute(ctx)


def _replay_through_api(params):
    """Drive the session endpoints with a client-side simulated lab."""

    async def scenario(server, host, port):
        status, doc, _, _ = await http_call(host, port, "POST", "/sessions", params)
        assert status == 201, doc
        sid = doc["session_id"]

        # Replicate the batch loop's RNG order: one generator draws the
        # cohort, then feeds the lab.
        req = ScreenRequest.from_payload(dict(params))
        prior, model, _, _ = req.build()
        gen = as_rng(params["seed"])
        cohort = make_cohort(prior, gen)
        lab = TestLab(model, cohort.truth_mask, gen)

        final = doc
        while not final["done"]:
            status, proposal, _, _ = await http_call(
                host, port, "GET", f"/sessions/{sid}/next-pool"
            )
            assert status == 200, proposal
            outcomes = [lab.run(p["mask"]) for p in proposal["pools"]]
            status, final, _, _ = await http_call(
                host, port, "POST", f"/sessions/{sid}/results",
                {"outcomes": outcomes},
            )
            assert status == 200, final

        status, closed, _, _ = await http_call(
            host, port, "DELETE", f"/sessions/{sid}"
        )
        assert status == 200 and closed["closed"]
        return final, cohort

    return run_with_server(
        scenario, ServeConfig(port=0, workers=2, compute_threads=2)
    )


def test_session_replay_matches_batch_byte_for_byte():
    batch = _batch_payload(PARAMS)
    final, cohort = _replay_through_api(PARAMS)

    assert cohort.truth_mask == batch["truth"]["mask"]
    assert final["classification"]["statuses"] == batch["classification"]["statuses"]
    # Bit-equal marginals: JSON repr round-trips float64 exactly, so the
    # serialized texts must match byte for byte.
    assert json.dumps(final["classification"]["marginals"]) == json.dumps(
        batch["classification"]["marginals"]
    )
    assert final["stages_used"] == batch["summary"]["stages"]
    assert final["num_tests"] == batch["summary"]["tests"]


def test_session_replay_matches_batch_dorfman_policy():
    params = {**PARAMS, "policy": "dorfman-4", "seed": 23, "cohort": 12}
    batch = _batch_payload(params)
    final, _ = _replay_through_api(params)
    assert final["classification"]["statuses"] == batch["classification"]["statuses"]
    assert json.dumps(final["classification"]["marginals"]) == json.dumps(
        batch["classification"]["marginals"]
    )


def test_results_validation_errors():
    async def scenario(server, host, port):
        status, doc, _, _ = await http_call(
            host, port, "POST", "/sessions", PARAMS
        )
        sid = doc["session_id"]
        # outcomes before any proposal
        early = await http_call(
            host, port, "POST", f"/sessions/{sid}/results", {"outcomes": [0]}
        )
        await http_call(host, port, "GET", f"/sessions/{sid}/next-pool")
        wrong_count = await http_call(
            host, port, "POST", f"/sessions/{sid}/results",
            {"outcomes": [0, 1, 0, 1, 0, 1, 0, 1, 0]},
        )
        bad_shape = await http_call(
            host, port, "POST", f"/sessions/{sid}/results", {"outcomes": "yes"}
        )
        missing = await http_call(
            host, port, "POST", "/sessions/zzzz/results", {"outcomes": [0]}
        )
        return early, wrong_count, bad_shape, missing

    early, wrong_count, bad_shape, missing = run_with_server(scenario)
    assert early[0] == 400 and "no pools outstanding" in early[1]["error"]
    assert wrong_count[0] == 400 and "expected" in wrong_count[1]["error"]
    assert bad_shape[0] == 400
    assert missing[0] == 404


def test_session_limit_is_503():
    async def scenario(server, host, port):
        first = await http_call(host, port, "POST", "/sessions", PARAMS)
        second = await http_call(
            host, port, "POST", "/sessions", {**PARAMS, "seed": 99}
        )
        return first, second

    config = ServeConfig(port=0, workers=2, compute_threads=2, max_sessions=1)
    first, second = run_with_server(scenario, config)
    assert first[0] == 201
    assert second[0] == 503
    assert "session limit" in second[1]["error"]


def test_sessions_are_isolated():
    """Two concurrent sessions with different seeds evolve independently."""

    async def scenario(server, host, port):
        _, a, _, _ = await http_call(host, port, "POST", "/sessions", PARAMS)
        _, b, _, _ = await http_call(
            host, port, "POST", "/sessions", {**PARAMS, "seed": 77}
        )
        sa, ga, _, _ = await http_call(
            host, port, "GET", f"/sessions/{a['session_id']}"
        )
        sb, gb, _, _ = await http_call(
            host, port, "GET", f"/sessions/{b['session_id']}"
        )
        assert sa == sb == 200
        return a, b, ga, gb

    a, b, ga, gb = run_with_server(scenario)
    assert a["session_id"] != b["session_id"]
    assert ga["request"]["seed"] == 11 and gb["request"]["seed"] == 77
