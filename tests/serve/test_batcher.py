"""Micro-batcher coalescing semantics (no HTTP, no engine)."""

import asyncio
import threading

import pytest

from repro.serve.batcher import MicroBatcher


async def _thread_runner(thunk):
    return await asyncio.get_running_loop().run_in_executor(None, thunk)


def test_concurrent_identical_requests_coalesce_to_one_job():
    calls = []
    lock = threading.Lock()

    def work():
        with lock:
            calls.append(1)
        return {"answer": 42}

    async def main():
        batcher = MicroBatcher(_thread_runner, window_s=0.01)
        results = await asyncio.gather(
            *[batcher.submit("k", work) for _ in range(64)]
        )
        return batcher, results

    batcher, results = asyncio.run(main())
    assert len(calls) < 8, f"64 identical requests ran {len(calls)} jobs"
    assert all(r == {"answer": 42} for r in results)
    assert batcher.requests == 64
    assert batcher.jobs == len(calls)
    assert batcher.coalesced == 64 - len(calls)
    assert batcher.batching_ratio >= 8.0


def test_different_keys_do_not_coalesce():
    async def main():
        batcher = MicroBatcher(_thread_runner, window_s=0.0)
        out = await asyncio.gather(
            batcher.submit("a", lambda: "A"), batcher.submit("b", lambda: "B")
        )
        return batcher, out

    batcher, out = asyncio.run(main())
    assert out == ["A", "B"]
    assert batcher.jobs == 2
    assert batcher.coalesced == 0


def test_sequential_requests_run_separate_jobs():
    async def main():
        batcher = MicroBatcher(_thread_runner, window_s=0.0)
        first = await batcher.submit("k", lambda: 1)
        second = await batcher.submit("k", lambda: 2)
        return batcher, first, second

    batcher, first, second = asyncio.run(main())
    assert (first, second) == (1, 2)
    assert batcher.jobs == 2


def test_exception_fans_out_to_all_waiters():
    def boom():
        raise RuntimeError("engine on fire")

    async def main():
        batcher = MicroBatcher(_thread_runner, window_s=0.01)
        results = await asyncio.gather(
            *[batcher.submit("k", boom) for _ in range(5)], return_exceptions=True
        )
        return batcher, results

    batcher, results = asyncio.run(main())
    assert len(results) == 5
    assert all(isinstance(r, RuntimeError) for r in results)
    assert batcher.jobs == 1
    # a failed job must not leave a poisoned inflight entry
    assert batcher.snapshot()["inflight_keys"] == 0


def test_on_batch_callback_reports_waiter_count():
    seen = []

    async def main():
        batcher = MicroBatcher(
            _thread_runner, window_s=0.01,
            on_batch=lambda key, waiters, wall: seen.append((key, waiters)),
        )
        await asyncio.gather(*[batcher.submit("k", lambda: 0) for _ in range(9)])

    asyncio.run(main())
    assert len(seen) >= 1
    assert sum(w for _, w in seen) == 9


def test_negative_window_rejected():
    with pytest.raises(ValueError):
        MicroBatcher(_thread_runner, window_s=-1.0)
