"""LatencyHistogram unit contract: quantile edges and snapshot shape.

The histogram backs every ``/metrics`` latency block, so its edge
behaviour (no observations, one observation, q at the extremes) and its
snapshot keys are locked down here — dashboards parse these fields.
"""

import pytest

from repro.serve.events import LATENCY_BUCKETS_MS, LatencyHistogram


class TestQuantileEdges:
    def test_empty_histogram_returns_zero_everywhere(self):
        h = LatencyHistogram()
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_single_observation_reports_itself(self):
        # Interpolation is clamped to the observed max, so a lone 3 ms
        # sample reports 3 ms — not its bucket's 5 ms ceiling.
        h = LatencyHistogram()
        h.observe(0.003)
        assert h.quantile(0.5) == pytest.approx(3.0)
        assert h.quantile(0.95) == pytest.approx(3.0)
        assert h.quantile(1.0) == pytest.approx(3.0)

    def test_q_extremes_span_occupied_buckets(self):
        h = LatencyHistogram()
        h.observe(0.0005)   # sub-ms → first bucket (1 ms bound)
        h.observe(0.150)    # 150 ms → 200 ms bound
        # q=0 sits at the lower edge of the first occupied bucket; q=1
        # interpolates to the winning bucket's ceiling, clamped to max.
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(1.0) == pytest.approx(150.0)

    def test_quantile_interpolates_within_bucket(self):
        h = LatencyHistogram()
        for _ in range(99):
            h.observe(0.004)   # (2, 5] ms bucket
        h.observe(1.5)         # (1000, 2000] ms bucket
        # Linear within the winning bucket: rank q*100 out of 99 samples
        # spanning (2, 5].
        assert h.quantile(0.50) == pytest.approx(2 + 3 * (50 / 99))
        assert h.quantile(0.95) == pytest.approx(2 + 3 * (95 / 99))
        # Rank 99.9 lands in the (1000, 2000] bucket; clamped to the
        # observed 1500 ms maximum.
        assert h.quantile(0.999) == pytest.approx(1500.0)

    def test_overflow_bucket_reports_observed_max(self):
        h = LatencyHistogram()
        h.observe(12.5)  # 12500 ms — beyond the last finite bound
        assert h.quantile(0.5) == pytest.approx(12500.0)
        assert h.quantile(1.0) == pytest.approx(12500.0)

    def test_quantiles_are_monotone(self):
        h = LatencyHistogram()
        for ms in (0.5, 3, 8, 40, 90, 450, 4000):
            h.observe(ms / 1000.0)
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)]
        assert qs == sorted(qs)


class TestSnapshot:
    def test_snapshot_keys_locked_down(self):
        snap = LatencyHistogram().snapshot()
        assert set(snap) == {
            "count",
            "mean_ms",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
            "buckets_ms",
            "bucket_counts",
        }

    def test_empty_snapshot_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean_ms"] == 0.0
        assert snap["p50_ms"] == snap["p95_ms"] == snap["p99_ms"] == 0.0
        assert snap["max_ms"] == 0.0
        assert snap["buckets_ms"] == list(LATENCY_BUCKETS_MS)
        assert snap["bucket_counts"] == [0] * (len(LATENCY_BUCKETS_MS) + 1)

    def test_snapshot_accounts_every_observation(self):
        h = LatencyHistogram()
        h.observe(0.001)  # exactly a bucket bound: 1 ms
        h.observe(0.007)
        h.observe(0.007)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert sum(snap["bucket_counts"]) == 3
        assert snap["mean_ms"] == pytest.approx((1 + 7 + 7) / 3, abs=0.001)
        assert snap["max_ms"] == pytest.approx(7.0)

    def test_bound_observation_lands_in_its_bucket(self):
        """1 ms lands in the 1 ms bucket (bisect_left: bounds inclusive)."""
        h = LatencyHistogram()
        h.observe(0.001)
        assert h.counts[0] == 1
