"""LRU result-cache behaviour."""

import pytest

from repro.serve.cache import ResultCache


def test_put_get_roundtrip():
    cache = ResultCache(4)
    cache.put("a", {"x": 1})
    assert cache.get("a") == {"x": 1}
    assert cache.hits == 1 and cache.misses == 0


def test_miss_counts():
    cache = ResultCache(4)
    assert cache.get("nope") is None
    assert cache.misses == 1


def test_lru_eviction_order():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")          # refresh a → b is now least-recent
    cache.put("c", 3)       # evicts b
    assert cache.get("a") == 1
    assert cache.get("b") is None
    assert cache.get("c") == 3
    assert cache.evictions == 1


def test_put_same_key_updates_without_eviction():
    cache = ResultCache(2)
    cache.put("a", 1)
    cache.put("a", 2)
    assert cache.get("a") == 2
    assert cache.evictions == 0
    assert len(cache) == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ResultCache(0)


def test_snapshot_shape():
    cache = ResultCache(3)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    snap = cache.snapshot()
    assert snap["entries"] == 1
    assert snap["capacity"] == 3
    assert snap["hits"] == 1
    assert snap["misses"] == 1
    assert 0.0 < snap["hit_rate"] < 1.0
