"""/debug endpoints and end-to-end request↔engine trace correlation.

The PR's acceptance path: a served ``POST /screen`` must yield events
queryable under one trace id spanning serve *and* engine vocabularies
(request_end + job/stage/task events), in every executor mode.
"""

import pytest

from repro.obs.chrome import validate_chrome_trace
from repro.serve.app import ServeConfig

from tests.serve.serve_utils import http_call, run_with_server

SCREEN_BODY = {"cohort": 6, "prevalence": 0.05, "seed": 2}
ENGINE_MODES = ["serial", "threads", "processes"]


def _config(**kw) -> ServeConfig:
    kw.setdefault("port", 0)
    kw.setdefault("workers", 2)
    kw.setdefault("compute_threads", 2)
    return ServeConfig(**kw)


@pytest.mark.parametrize("engine_mode", ENGINE_MODES)
def test_screen_request_correlates_serve_and_engine_events(engine_mode):
    async def scenario(server, host, port):
        status, _, headers, _ = await http_call(
            host, port, "POST", "/screen", SCREEN_BODY
        )
        assert status == 200
        trace_id = headers["x-repro-trace"]
        return trace_id, await http_call(
            host, port, "GET", f"/debug/traces/{trace_id}"
        )

    trace_id, (status, doc, _, _) = run_with_server(
        scenario, _config(engine_mode=engine_mode)
    )
    assert status == 200
    summary, events = doc["summary"], doc["events"]
    assert summary["trace_id"] == trace_id
    kinds = set(summary["kinds"])
    assert kinds >= {
        "request_end",
        "job_start", "job_end",
        "stage_start", "stage_end",
        "task_start", "task_end",
    }, f"incomplete correlation in {engine_mode} mode: {sorted(kinds)}"
    assert all(e["trace_id"] == trace_id for e in events)
    # request_end closes the trace: it is the last event recorded for it
    assert events[-1]["kind"] == "request_end"
    assert events[-1]["endpoint"] == "/screen"


def test_client_supplied_trace_id_is_honored():
    async def scenario(server, host, port):
        status, _, headers, _ = await http_call(
            host, port, "POST", "/screen", SCREEN_BODY,
            headers={"X-Trace-Id": "cafebabe12345678"},
        )
        assert status == 200
        assert headers["x-repro-trace"] == "cafebabe12345678"
        return await http_call(
            host, port, "GET", "/debug/traces/cafebabe12345678"
        )

    status, doc, _, _ = run_with_server(scenario)
    assert status == 200
    assert doc["summary"]["events"] > 0


def test_distinct_requests_get_distinct_trace_ids():
    async def scenario(server, host, port):
        r1 = await http_call(host, port, "GET", "/healthz")
        r2 = await http_call(host, port, "GET", "/healthz")
        return r1[2]["x-repro-trace"], r2[2]["x-repro-trace"]

    t1, t2 = run_with_server(scenario)
    assert t1 and t2 and t1 != t2


def test_debug_events_filters_and_recorder_stats():
    async def scenario(server, host, port):
        await http_call(host, port, "POST", "/screen", SCREEN_BODY)
        full = await http_call(host, port, "GET", "/debug/events")
        filtered = await http_call(
            host, port, "GET", "/debug/events?kind=task_end&limit=2"
        )
        bad = await http_call(host, port, "GET", "/debug/events?limit=soon")
        return full, filtered, bad

    (fs, fdoc, _, _), (ss, sdoc, _, _), (bs, bdoc, _, _) = run_with_server(scenario)
    assert fs == 200
    assert fdoc["recorder"]["total_seen"] > 0
    assert fdoc["recorder"]["capacity"] == 4096
    assert {e["kind"] for e in fdoc["events"]} >= {"task_end", "request_end"}
    assert ss == 200
    assert [e["kind"] for e in sdoc["events"]] == ["task_end", "task_end"]
    assert bs == 400 and "limit" in bdoc["error"]


def test_debug_slow_reports_threshold():
    async def scenario(server, host, port):
        return await http_call(host, port, "GET", "/debug/slow")

    status, doc, _, _ = run_with_server(
        scenario, _config(slow_threshold_s=0.25)
    )
    assert status == 200
    assert doc["slow_threshold_s"] == 0.25
    assert isinstance(doc["events"], list)


def test_debug_chrome_exports_valid_trace():
    async def scenario(server, host, port):
        status, _, headers, _ = await http_call(
            host, port, "POST", "/screen", SCREEN_BODY
        )
        assert status == 200
        trace_id = headers["x-repro-trace"]
        return (
            await http_call(host, port, "GET", "/debug/chrome"),
            await http_call(host, port, "GET", f"/debug/chrome?trace_id={trace_id}"),
        )

    (s_all, all_doc, _, _), (s_one, one_doc, _, _) = run_with_server(scenario)
    assert s_all == 200 and s_one == 200
    assert validate_chrome_trace(all_doc) > 0
    assert validate_chrome_trace(one_doc) > 0
    assert len(one_doc["traceEvents"]) <= len(all_doc["traceEvents"])


def test_debug_rejects_non_get_and_unknown_paths():
    async def scenario(server, host, port):
        return (
            await http_call(host, port, "POST", "/debug/events", {}),
            await http_call(host, port, "GET", "/debug/nope"),
        )

    (s405, _, _, _), (s404, b404, _, _) = run_with_server(scenario)
    assert s405 == 405
    assert s404 == 404 and "debug" in b404["error"]


def test_debug_404_when_recorder_disabled():
    async def scenario(server, host, port):
        server.ctx.flight_recorder = None  # what flight_recorder=False yields
        return await http_call(host, port, "GET", "/debug/events")

    status, body, _, _ = run_with_server(scenario)
    assert status == 404
    assert "disabled" in body["error"]
