"""Serve suite runs with the lock-order sanitizer in ``raise`` mode.

Same contract as tests/engine/conftest.py: the server's admission gate,
session registries and result cache all use OrderedLock, so any
inversion introduced in serve code fails loudly here rather than
deadlocking a saturated server.
"""

import pytest

from repro.engine import lockorder


@pytest.fixture(autouse=True)
def _lock_sanitizer_raise():
    previous = lockorder.set_sanitizer_mode("raise")
    lockorder.clear_violations()
    try:
        yield
    finally:
        lockorder.set_sanitizer_mode(previous)
        lockorder.clear_violations()
