"""Integration tests: the full server over real sockets.

Each test boots a :class:`ReproServer` on an ephemeral port inside one
``asyncio.run`` and talks raw HTTP to it.
"""

import asyncio
import json

from repro.serve.app import ServeConfig
from repro.workflows.payloads import dump_payload

from tests.serve.serve_utils import http_call, run_with_server

CALC_BODY = {"cohort": 5, "prevalences": [0.05], "replications": 2, "seed": 3}


def test_healthz_reports_ok():
    async def scenario(server, host, port):
        return await http_call(host, port, "GET", "/healthz")

    status, body, headers, _ = run_with_server(scenario)
    assert status == 200
    assert body["status"] == "ok"
    assert body["sessions"] == 0
    assert headers["content-type"] == "application/json"


def test_unknown_endpoint_404_and_bad_method_405():
    async def scenario(server, host, port):
        return (
            await http_call(host, port, "GET", "/nope"),
            await http_call(host, port, "PUT", "/calculator"),
        )

    (s404, b404, _, _), (s405, b405, _, _) = run_with_server(scenario)
    assert s404 == 404 and "no such endpoint" in b404["error"]
    assert s405 == 405


def test_calculator_body_matches_dump_payload_exactly():
    """The wire body is byte-identical to the shared serializer's text."""

    async def scenario(server, host, port):
        return await http_call(host, port, "POST", "/calculator", CALC_BODY)

    status, payload, headers, raw = run_with_server(scenario)
    assert status == 200
    assert raw.decode("utf-8") == dump_payload(payload)
    assert payload["kind"] == "calculator"
    assert headers["x-repro-source"] == "computed"


def test_repeat_request_served_from_cache():
    async def scenario(server, host, port):
        cold = await http_call(host, port, "POST", "/calculator", CALC_BODY)
        warm = await http_call(host, port, "POST", "/calculator", CALC_BODY)
        return cold, warm, server.cache.snapshot()

    (_, cold_body, cold_h, cold_raw), (_, warm_body, warm_h, warm_raw), cache = (
        run_with_server(scenario)
    )
    assert cold_h["x-repro-source"] == "computed"
    assert warm_h["x-repro-source"] == "cache"
    assert cold_raw == warm_raw
    assert cache["hits"] == 1


def test_concurrent_identical_requests_batch_into_few_jobs():
    """The ISSUE acceptance bar: 64 concurrent identical calculator
    requests must produce < 8 underlying jobs."""

    async def scenario(server, host, port):
        results = await asyncio.gather(
            *[http_call(host, port, "POST", "/calculator", CALC_BODY)
              for _ in range(64)]
        )
        return results, server.batcher.snapshot()

    config = ServeConfig(port=0, workers=2, compute_threads=4,
                         batch_window_s=0.05, max_inflight=128)
    results, batch = run_with_server(scenario, config)
    assert all(status == 200 for status, _, _, _ in results)
    bodies = {raw for _, _, _, raw in results}
    assert len(bodies) == 1, "coalesced requests must share one payload"
    assert batch["jobs"] < 8, f"64 identical requests ran {batch['jobs']} jobs"
    assert batch["requests"] == 64


def test_screen_endpoint_runs_engine_job():
    async def scenario(server, host, port):
        status, body, _, _ = await http_call(
            host, port, "POST", "/screen",
            {"cohort": 8, "prevalence": 0.05, "seed": 1, "policy": "bha"},
        )
        return status, body

    status, body = run_with_server(scenario)
    assert status == 200
    assert body["kind"] == "screen"
    assert len(body["classification"]["statuses"]) == 8
    assert set(body["classification"]["statuses"]) <= {
        "positive", "negative", "undetermined"
    }


def test_validation_error_is_400_with_message():
    async def scenario(server, host, port):
        return await http_call(host, port, "POST", "/calculator", {"cohort": 99})

    status, body, headers, _ = run_with_server(scenario)
    assert status == 400
    assert "cohort" in body["error"]
    assert headers["x-repro-source"] == "rejected"


def test_malformed_json_is_400():
    async def scenario(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        blob = b"{not json"
        writer.write(
            (
                f"POST /calculator HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {len(blob)}\r\nConnection: close\r\n\r\n"
            ).encode() + blob
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return raw

    raw = run_with_server(scenario)
    assert b"400" in raw.split(b"\r\n", 1)[0]
    assert b"not valid JSON" in raw


def test_oversized_body_is_413():
    async def scenario(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(
            b"POST /calculator HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 99999999\r\nConnection: close\r\n\r\n"
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return raw

    raw = run_with_server(scenario)
    assert b"413" in raw.split(b"\r\n", 1)[0]


def test_backpressure_returns_429_when_queue_full():
    async def scenario(server, host, port):
        # Jam the admission counter and verify new compute work is shed.
        server._inflight = server.config.max_inflight
        try:
            return await http_call(
                host, port, "POST", "/calculator", {**CALC_BODY, "seed": 999}
            )
        finally:
            server._inflight = 0

    status, body, headers, _ = run_with_server(scenario)
    assert status == 429
    assert "retry" in body["error"]
    assert headers["x-repro-source"] == "rejected"


def test_keep_alive_serves_multiple_requests_per_connection():
    async def scenario(server, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        req = (
            b"GET /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n"
        )
        statuses = []
        for _ in range(3):
            writer.write(req)
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            statuses.append(int(head.split(b" ", 2)[1]))
            length = int(
                [line for line in head.split(b"\r\n")
                 if line.lower().startswith(b"content-length")][0].split(b":")[1]
            )
            await reader.readexactly(length)
        writer.close()
        return statuses

    assert run_with_server(scenario) == [200, 200, 200]


def test_metrics_reflect_bus_events():
    """/metrics is fed by RequestEnd/BatchExecuted events on the PR 1 bus."""

    async def scenario(server, host, port):
        await http_call(host, port, "POST", "/calculator", CALC_BODY)
        await http_call(host, port, "POST", "/calculator", CALC_BODY)
        await http_call(
            host, port, "POST", "/screen",
            {"cohort": 6, "prevalence": 0.05, "seed": 2},
        )
        await http_call(host, port, "POST", "/calculator", {"cohort": 99})
        status, metrics, _, _ = await http_call(host, port, "GET", "/metrics")
        return status, metrics

    status, metrics = run_with_server(scenario)
    assert status == 200
    calc = metrics["endpoints"]["/calculator"]
    assert calc["requests"] == 3
    assert calc["by_source"] == {"computed": 1, "cache": 1, "rejected": 1}
    assert calc["by_status"] == {"200": 2, "400": 1}
    assert calc["latency"]["count"] == 3
    assert calc["latency"]["p95_ms"] >= calc["latency"]["p50_ms"]
    screen = metrics["endpoints"]["/screen"]
    assert screen["requests"] == 1
    # the /screen job ran on the shared engine context → engine counters moved
    assert metrics["engine"]["jobs"] > 0
    assert metrics["engine"]["registry_jobs"] > 0
    assert metrics["result_cache"]["hits"] == 1
    assert metrics["session_registry"]["active"] == 0
