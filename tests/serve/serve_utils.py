"""Shared HTTP-over-asyncio helpers for serving-layer tests.

Tests run the server and a raw socket client inside one event loop via
``asyncio.run`` (no pytest-asyncio dependency).  ``http_call`` speaks
just enough HTTP/1.1 for the JSON API.
"""

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.app import ReproServer, ServeConfig


async def http_call(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Any] = None,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Any, Dict[str, str], bytes]:
    """One request on a fresh connection → (status, json, headers, raw body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parsed = json.loads(body_bytes) if body_bytes else None
    return status, parsed, headers, body_bytes


def run_with_server(coro_fn, config: Optional[ServeConfig] = None):
    """Start a server on an ephemeral port, run ``coro_fn(server, host, port)``,
    tear down.  Returns whatever the coroutine returns."""

    async def main():
        server = ReproServer(config or ServeConfig(port=0, workers=2, compute_threads=2))
        host, port = await server.start()
        try:
            return await coro_fn(server, host, port)
        finally:
            await server.close()

    return asyncio.run(main())
