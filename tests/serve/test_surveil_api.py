"""The /surveil endpoint and the round-by-round campaign API."""

from tests.serve.serve_utils import http_call, run_with_server

BODY = {"sites": 4, "cohort": 6, "rounds": 2, "budget": 3, "seed": 3}


class TestSurveilEndpoint:
    def test_one_shot_campaign(self):
        async def scenario(server, host, port):
            status, doc, headers, _ = await http_call(
                host, port, "POST", "/surveil", BODY
            )
            assert status == 200
            assert doc["kind"] == "surveil"
            assert doc["summary"]["rounds"] == 2
            assert doc["summary"]["total_screens"] == 6
            assert len(doc["rounds"]) == 2
            assert len(doc["sites"]) == 4
            assert headers["x-repro-source"] == "computed"
            return doc

        run_with_server(scenario)

    def test_repeat_request_hits_cache(self):
        async def scenario(server, host, port):
            _, first, _, _ = await http_call(host, port, "POST", "/surveil", BODY)
            _, second, headers, _ = await http_call(host, port, "POST", "/surveil", BODY)
            assert headers["x-repro-source"] == "cache"
            assert second == first

        run_with_server(scenario)

    def test_validation_errors_are_400(self):
        async def scenario(server, host, port):
            cases = [
                {"sites": 0},
                {"rounds": 1000},
                {"allocator": "ucb"},
                {"fleet": "flotilla"},
                {"fleet": "household", "backend": "sparse"},
                {"unknown_key": 1},
            ]
            for body in cases:
                status, doc, _, _ = await http_call(host, port, "POST", "/surveil", body)
                assert status == 400, body
                assert "error" in doc

        run_with_server(scenario)

    def test_method_not_allowed(self):
        async def scenario(server, host, port):
            status, _, _, _ = await http_call(host, port, "GET", "/surveil")
            assert status == 405

        run_with_server(scenario)


class TestCampaignApi:
    def test_full_lifecycle(self):
        async def scenario(server, host, port):
            status, doc, _, _ = await http_call(host, port, "POST", "/campaigns", BODY)
            assert status == 201
            cid = doc["campaign_id"]
            assert doc["next_round"] == 0 and not doc["finished"]
            assert doc["request"]["sites"] == 4

            for expected in range(2):
                status, doc, _, _ = await http_call(
                    host, port, "POST", f"/campaigns/{cid}/round"
                )
                assert status == 200
                assert doc["round"]["round"] == expected
                assert sum(doc["round"]["allocations"]) == 3
                assert doc["next_round"] == expected + 1
            assert doc["finished"]

            # one more round is a client error, not a crash
            status, doc, _, _ = await http_call(
                host, port, "POST", f"/campaigns/{cid}/round"
            )
            assert status == 400

            status, doc, _, _ = await http_call(host, port, "GET", f"/campaigns/{cid}")
            assert status == 200 and doc["finished"]

            status, doc, _, _ = await http_call(
                host, port, "DELETE", f"/campaigns/{cid}"
            )
            assert status == 200 and doc["closed"]
            status, _, _, _ = await http_call(host, port, "GET", f"/campaigns/{cid}")
            assert status == 404

        run_with_server(scenario)

    def test_stepped_campaign_matches_one_shot(self):
        async def scenario(server, host, port):
            _, oneshot, _, _ = await http_call(host, port, "POST", "/surveil", BODY)
            _, doc, _, _ = await http_call(host, port, "POST", "/campaigns", BODY)
            cid = doc["campaign_id"]
            for _ in range(2):
                _, doc, _, _ = await http_call(
                    host, port, "POST", f"/campaigns/{cid}/round"
                )
            assert doc["summary"] == oneshot["summary"]
            assert doc["rounds"] == oneshot["rounds"]
            assert doc["sites"] == oneshot["sites"]

        run_with_server(scenario)

    def test_unknown_campaign_is_404(self):
        async def scenario(server, host, port):
            for method, path in [
                ("GET", "/campaigns/nope"),
                ("POST", "/campaigns/nope/round"),
                ("DELETE", "/campaigns/nope"),
            ]:
                status, _, _, _ = await http_call(host, port, method, path)
                assert status == 404, (method, path)

        run_with_server(scenario)

    def test_campaigns_surface_in_health_and_metrics(self):
        async def scenario(server, host, port):
            _, doc, _, _ = await http_call(host, port, "POST", "/campaigns", BODY)
            cid = doc["campaign_id"]
            _, health, _, _ = await http_call(host, port, "GET", "/healthz")
            assert health["campaigns"] == 1
            await http_call(host, port, "DELETE", f"/campaigns/{cid}")
            _, metrics, _, _ = await http_call(host, port, "GET", "/metrics")
            registry = metrics["campaign_registry"]
            assert registry["created"] == 1
            assert registry["closed"] == 1
            assert registry["active"] == 0

        run_with_server(scenario)
