"""One exposition path: JSON /metrics and Prometheus text share one hub.

Also covers the ``/debug/profile/{start,stop}`` endpoints the sampling
profiler adds to the server.
"""

import asyncio

from repro.obs.metrics import validate_prometheus_text

from tests.serve.serve_utils import http_call, run_with_server

CALC_BODY = {"cohort": 5, "prevalences": [0.05], "replications": 2, "seed": 3}


async def http_text(host, port, method, path):
    """Like http_call but returns the body as raw text (non-JSON routes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Length: 0\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, body_bytes.decode("utf-8"), headers


class TestPrometheusExposition:
    def test_prometheus_text_validates_and_matches_json(self):
        async def scenario(server, host, port):
            await http_call(host, port, "POST", "/calculator", CALC_BODY)
            json_status, doc, _, _ = await http_call(host, port, "GET", "/metrics")
            prom_status, text, headers = await http_text(
                host, port, "GET", "/metrics?format=prometheus"
            )
            return json_status, doc, prom_status, text, headers

        json_status, doc, prom_status, text, headers = run_with_server(scenario)
        assert json_status == 200 and prom_status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        assert validate_prometheus_text(text) > 0

        # Same hub feeds both renderings: the JSON request count equals the
        # Prometheus counter series sum for the same endpoint.
        calc_requests = doc["endpoints"]["/calculator"]["requests"]
        prom_total = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_http_requests_total{")
            and 'endpoint="/calculator"' in line
        )
        assert prom_total == calc_requests

    def test_prometheus_render_is_byte_stable(self):
        # A fixed event history renders to identical bytes every time.
        # (Two HTTP scrapes would differ: the first scrape's own
        # RequestEnd lands in the second's history.)
        async def scenario(server, host, port):
            await http_call(host, port, "POST", "/calculator", CALC_BODY)
            hub = server.ctx.metrics_hub
            return hub.render_prometheus(), hub.render_prometheus()

        first, second = run_with_server(scenario)
        assert first == second

    def test_unknown_format_is_rejected(self):
        async def scenario(server, host, port):
            return await http_call(host, port, "GET", "/metrics?format=msgpack")

        status, body, _, _ = run_with_server(scenario)
        assert status == 400
        assert "format" in body["error"]

    def test_engine_families_present_after_compute(self):
        async def scenario(server, host, port):
            await http_call(host, port, "POST", "/calculator", CALC_BODY)
            _, text, _ = await http_text(host, port, "GET", "/metrics?format=prometheus")
            return text

        text = run_with_server(scenario)
        assert "# TYPE repro_engine_jobs_total counter" in text
        assert "# TYPE repro_http_request_duration_ms histogram" in text


class TestDebugProfileEndpoints:
    def test_start_stop_roundtrip(self):
        async def scenario(server, host, port):
            idle = await http_call(host, port, "GET", "/debug/profile")
            started = await http_call(
                host, port, "POST", "/debug/profile/start?hz=200"
            )
            await http_call(host, port, "POST", "/calculator", CALC_BODY)
            running = await http_call(host, port, "GET", "/debug/profile")
            stopped = await http_call(host, port, "POST", "/debug/profile/stop")
            return idle, started, running, stopped

        idle, started, running, stopped = run_with_server(scenario)
        assert idle[0] == 200 and idle[1]["profiling"] is False
        assert started[0] == 200 and started[1]["profiling"] is True
        assert started[1]["hz"] == 200.0
        assert running[1]["profiling"] is True
        assert stopped[0] == 200 and stopped[1]["profiling"] is False
        # Collapsed stacks ride the stop response.
        assert isinstance(stopped[1]["folded"], dict)
        assert sum(stopped[1]["folded"].values()) == stopped[1]["samples"]

    def test_double_start_conflicts(self):
        async def scenario(server, host, port):
            first = await http_call(host, port, "POST", "/debug/profile/start")
            second = await http_call(host, port, "POST", "/debug/profile/start")
            await http_call(host, port, "POST", "/debug/profile/stop")
            return first, second

        first, second = run_with_server(scenario)
        assert first[0] == 200
        assert second[0] == 409

    def test_stop_without_start_conflicts(self):
        async def scenario(server, host, port):
            return await http_call(host, port, "POST", "/debug/profile/stop")

        status, body, _, _ = run_with_server(scenario)
        assert status == 409

    def test_bad_hz_rejected(self):
        async def scenario(server, host, port):
            return (
                await http_call(host, port, "POST", "/debug/profile/start?hz=0"),
                await http_call(host, port, "POST", "/debug/profile/start?hz=nope"),
            )

        (s_zero, _, _, _), (s_nan, _, _, _) = run_with_server(scenario)
        assert s_zero == 400
        assert s_nan == 400

    def test_flamegraph_endpoint(self):
        async def scenario(server, host, port):
            await http_call(host, port, "POST", "/debug/profile/start?hz=200")
            await http_call(host, port, "POST", "/calculator", CALC_BODY)
            page = await http_text(host, port, "GET", "/debug/profile/flamegraph")
            await http_call(host, port, "POST", "/debug/profile/stop")
            missing = await http_call(host, port, "GET", "/debug/profile/flamegraph")
            return page, missing

        (status, html, headers), missing = run_with_server(scenario)
        assert status == 200
        assert headers["content-type"].startswith("text/html")
        assert html.startswith("<!DOCTYPE html>")
        assert missing[0] == 409
