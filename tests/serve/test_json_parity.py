"""CLI ``--json`` output ≡ server response bodies, byte for byte."""

import pytest

from repro.cli import main

from tests.serve.serve_utils import http_call, run_with_server


def _cli_stdout(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


def _server_body(method, path, body):
    async def scenario(server, host, port):
        status, _, _, raw = await http_call(host, port, method, path, body)
        assert status == 200
        return raw

    return run_with_server(scenario)


def test_calculator_json_matches_server_body(capsys):
    out = _cli_stdout(
        capsys,
        ["calculator", "--json", "--cohort", "6", "--prevalences", "0.05", "0.2",
         "--replications", "2", "--seed", "5", "--assay", "binary"],
    )
    raw = _server_body(
        "POST", "/calculator",
        {"cohort": 6, "prevalences": [0.05, 0.2], "replications": 2, "seed": 5,
         "assay": {"assay": "binary"}},
    )
    assert out == raw.decode("utf-8")


def test_screen_json_matches_server_body(capsys):
    out = _cli_stdout(
        capsys,
        ["screen", "--json", "--cohort", "8", "--prevalence", "0.05",
         "--seed", "9", "--workers", "2"],
    )
    raw = _server_body(
        "POST", "/screen", {"cohort": 8, "prevalence": 0.05, "seed": 9}
    )
    assert out == raw.decode("utf-8")


def test_screen_json_scenario_matches_server_body(capsys):
    out = _cli_stdout(
        capsys,
        ["screen", "--json", "--scenario", "outbreak", "--cohort", "8",
         "--seed", "3", "--workers", "2"],
    )
    raw = _server_body(
        "POST", "/screen", {"scenario": "outbreak", "cohort": 8, "seed": 3}
    )
    assert out == raw.decode("utf-8")


def test_surveil_json_matches_server_body(capsys):
    out = _cli_stdout(
        capsys,
        ["surveil", "--json", "--sites", "4", "--cohort", "6", "--rounds", "2",
         "--budget", "3", "--seed", "3", "--workers", "2"],
    )
    raw = _server_body(
        "POST", "/surveil",
        {"sites": 4, "cohort": 6, "rounds": 2, "budget": 3, "seed": 3},
    )
    assert out == raw.decode("utf-8")


def test_screen_json_is_deterministic(capsys):
    argv = ["screen", "--json", "--cohort", "8", "--seed", "4", "--workers", "2"]
    assert _cli_stdout(capsys, argv) == _cli_stdout(capsys, argv)


@pytest.mark.parametrize("policy", ["dorfman-3", "hybrid"])
def test_calculator_json_policy_spellings_round_trip(capsys, policy):
    out = _cli_stdout(
        capsys,
        ["calculator", "--json", "--cohort", "5", "--prevalences", "0.1",
         "--replications", "2", "--policy", policy],
    )
    raw = _server_body(
        "POST", "/calculator",
        {"cohort": 5, "prevalences": [0.1], "replications": 2, "policy": policy},
    )
    assert out == raw.decode("utf-8")
