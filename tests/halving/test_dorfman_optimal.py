"""Optimal Dorfman pool sizing (the classic 1/√p rule)."""

import math

import pytest

from repro.halving.policy import DorfmanPolicy


class TestOptimalFor:
    @pytest.mark.parametrize(
        "prevalence,expected",
        [(0.01, 11), (0.05, 5), (0.10, 4), (0.30, 3)],
    )
    def test_known_optima(self, prevalence, expected):
        assert DorfmanPolicy.optimal_for(prevalence).pool_size == expected

    def test_tracks_sqrt_rule(self):
        for p in (0.005, 0.02, 0.08):
            m = DorfmanPolicy.optimal_for(p).pool_size
            assert abs(m - (1 / math.sqrt(p) + 1)) <= 2

    def test_lower_prevalence_bigger_pools(self):
        assert (
            DorfmanPolicy.optimal_for(0.005).pool_size
            > DorfmanPolicy.optimal_for(0.05).pool_size
        )

    def test_respects_max_pool_size(self):
        assert DorfmanPolicy.optimal_for(0.0005, max_pool_size=16).pool_size <= 16

    def test_is_true_argmin_over_scan_range(self):
        p = 0.03
        chosen = DorfmanPolicy.optimal_for(p, max_pool_size=40).pool_size
        costs = {m: 1 / m + 1 - (1 - p) ** m for m in range(2, 41)}
        assert chosen == min(costs, key=costs.get)

    @pytest.mark.parametrize("prevalence", [0.0, 1.0, -0.1])
    def test_invalid_prevalence(self, prevalence):
        with pytest.raises(ValueError):
            DorfmanPolicy.optimal_for(prevalence)
