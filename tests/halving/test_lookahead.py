"""Look-ahead (batch) selection."""

import numpy as np
import pytest

from repro.halving.bha import select_halving_pool
from repro.halving.candidates import ExhaustiveCandidates
from repro.halving.lookahead import (
    batch_balance_objective,
    cell_masses,
    select_lookahead_pools,
)
from repro.lattice.builder import build_dense_prior
from repro.lattice.states import StateSpace


class TestCellMasses:
    def test_sums_to_one(self):
        space = build_dense_prior(np.array([0.1, 0.3, 0.2]))
        masses = cell_masses(space, [0b001, 0b110])
        assert masses.sum() == pytest.approx(1.0)
        assert masses.size == 4

    def test_single_pool_matches_down_set(self):
        from repro.lattice.ops import down_set_mass

        space = build_dense_prior(np.array([0.2, 0.4]))
        masses = cell_masses(space, [0b01])
        assert masses[0] == pytest.approx(down_set_mass(space, 0b01))

    def test_uniform_singletons_perfectly_balanced(self):
        space = StateSpace.dense(3)
        masses = cell_masses(space, [0b001, 0b010, 0b100])
        assert np.allclose(masses, 1 / 8)

    def test_too_many_pools_raises(self):
        with pytest.raises(ValueError):
            cell_masses(StateSpace.dense(2), list(range(1, 22)))


class TestBatchBalanceObjective:
    def test_uniform_is_zero(self):
        assert batch_balance_objective(np.full(4, 0.25)) == pytest.approx(0.0)

    def test_point_mass_is_worst(self):
        worst = batch_balance_objective(np.array([1.0, 0.0, 0.0, 0.0]))
        mild = batch_balance_objective(np.array([0.4, 0.3, 0.2, 0.1]))
        assert worst > mild


class TestSelectLookaheadPools:
    def test_s1_matches_bha_choice(self):
        space = build_dense_prior(np.full(6, 0.12))
        cands = ExhaustiveCandidates(max_pool_size=3).generate(np.zeros(6), 0b111111)
        la_pools, _ = select_lookahead_pools(space, cands, 1)
        bha_pool, _, _ = select_halving_pool(space, cands)
        assert la_pools == [bha_pool]

    def test_uniform_lattice_picks_orthogonal_singletons(self):
        space = StateSpace.dense(4)
        cands = ExhaustiveCandidates(max_pool_size=1).generate(np.zeros(4), 0b1111)
        pools, obj = select_lookahead_pools(space, cands, 3)
        assert len(pools) == 3
        assert len(set(pools)) == 3  # distinct pools
        assert obj == pytest.approx(0.0, abs=1e-12)  # singleton bits halve exactly

    def test_no_repeated_pools(self):
        space = build_dense_prior(np.full(5, 0.2))
        cands = ExhaustiveCandidates(max_pool_size=2).generate(np.zeros(5), 0b11111)
        pools, _ = select_lookahead_pools(space, cands, 4)
        assert len(pools) == len(set(pools))

    def test_s_capped_by_candidate_count(self):
        space = StateSpace.dense(3)
        cands = np.array([0b001, 0b010], dtype=np.uint64)
        pools, _ = select_lookahead_pools(space, cands, 5)
        assert len(pools) == 2

    def test_objective_decreases_with_depth(self):
        space = build_dense_prior(np.full(6, 0.3))
        cands = ExhaustiveCandidates(max_pool_size=2).generate(np.zeros(6), 0b111111)
        _, obj1 = select_lookahead_pools(space, cands, 1)
        _, obj3 = select_lookahead_pools(space, cands, 3)
        # Deeper batches measure a harder objective; raw comparability is
        # not guaranteed — but both must be finite and non-negative.
        assert obj1 >= 0 and obj3 >= 0

    def test_invalid_args(self):
        space = StateSpace.dense(2)
        with pytest.raises(ValueError):
            select_lookahead_pools(space, np.array([1], dtype=np.uint64), 0)
        with pytest.raises(ValueError):
            select_lookahead_pools(space, np.array([], dtype=np.uint64), 1)
