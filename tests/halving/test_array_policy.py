"""Array (grid) testing baseline."""

import pytest

from repro.bayes.dilution import PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import ArrayTestingPolicy, DorfmanPolicy
from repro.simulate.population import Cohort, make_cohort
from repro.workflows.classify import run_screen


class TestGridLayout:
    def test_stage_one_row_and_column_pools(self):
        policy = ArrayTestingPolicy(2, 3)
        pools = policy.select(None, 0b111111)  # 6 people on a 2x3 grid
        # 2 row pools + 3 column pools
        assert len(pools) == 5
        rows = [0b000111, 0b111000]
        cols = [0b001001, 0b010010, 0b100100]
        assert sorted(pools) == sorted(rows + cols)

    def test_each_individual_in_two_pools(self):
        policy = ArrayTestingPolicy(3, 3)
        pools = policy.select(None, (1 << 9) - 1)
        for i in range(9):
            memberships = sum(1 for p in pools if p & (1 << i))
            assert memberships == 2

    def test_ragged_tail(self):
        policy = ArrayTestingPolicy(2, 3)
        pools = policy.select(None, 0b1111)  # only 4 people
        covered = 0
        for p in pools:
            covered |= p
        assert covered == 0b1111
        assert all(p != 0 for p in pools)

    def test_overflow_makes_second_sheet(self):
        policy = ArrayTestingPolicy(2, 2)
        pools = policy.select(None, (1 << 6) - 1)  # 6 people, 4 per sheet
        covered = 0
        for p in pools:
            covered |= p
        assert covered == (1 << 6) - 1

    def test_stage_two_singletons(self):
        policy = ArrayTestingPolicy(2, 2)
        policy.select(None, 0b1111)
        second = policy.select(None, 0b0101)
        assert sorted(second) == [0b0001, 0b0100]

    def test_reset(self):
        policy = ArrayTestingPolicy(2, 2)
        policy.select(None, 0b1111)
        policy.reset()
        pools = policy.select(None, 0b1111)
        assert any(bin(p).count("1") == 2 for p in pools)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ArrayTestingPolicy(0, 3)


class TestArrayScreens:
    def test_single_positive_localised(self):
        prior = PriorSpec.uniform(9, 0.05)
        cohort = Cohort(prior, truth_mask=1 << 4)  # centre of the 3x3 grid
        result = run_screen(prior, PerfectTest(), ArrayTestingPolicy(3, 3), rng=0, cohort=cohort)
        assert result.report.positives() == [4]
        assert result.accuracy == 1.0
        # 6 grid pools + (at most a couple of) confirmations
        assert result.efficiency.num_tests <= 9

    def test_all_negative_one_stage(self):
        prior = PriorSpec.uniform(9, 0.05)
        cohort = Cohort(prior, truth_mask=0)
        result = run_screen(prior, PerfectTest(), ArrayTestingPolicy(3, 3), rng=0, cohort=cohort)
        assert result.stages_used == 1
        assert result.efficiency.num_tests == 6

    def test_sits_between_dorfman_and_individual_at_low_prevalence(self):
        prior = PriorSpec.uniform(12, 0.02)
        array_total = dorfman_total = 0
        for seed in range(6):
            cohort = make_cohort(prior, rng=300 + seed)
            array_total += run_screen(
                prior, PerfectTest(), ArrayTestingPolicy(3, 4), rng=seed, cohort=cohort
            ).efficiency.num_tests
            dorfman_total += run_screen(
                prior, PerfectTest(), DorfmanPolicy(4), rng=seed, cohort=cohort
            ).efficiency.num_tests
        # Grid spends 7 pools/sheet vs Dorfman's 3 at stage 1 but almost
        # never needs confirmations; both beat individual (72 tests).
        assert array_total < 72
        assert dorfman_total < 72
