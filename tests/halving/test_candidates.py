"""Candidate pool generators."""

import numpy as np
import pytest

from repro.halving.candidates import (
    ExhaustiveCandidates,
    PrefixCandidates,
    RandomCandidates,
    SlidingWindowCandidates,
)
from repro.util.bits import popcount64


def all_subsets_of(masks: np.ndarray, eligible: int) -> bool:
    return all(int(m) & ~eligible == 0 for m in masks)


class TestPrefixCandidates:
    def test_pools_within_eligible(self):
        marg = np.array([0.1, 0.5, 0.02, 0.3])
        pools = PrefixCandidates().generate(marg, 0b1011)
        assert all_subsets_of(pools, 0b1011)

    def test_no_empty_pool(self):
        pools = PrefixCandidates().generate(np.array([0.1, 0.2]), 0b11)
        assert np.all(pools != 0)

    def test_ascending_prefix_structure(self):
        marg = np.array([0.3, 0.1, 0.2])
        pools = PrefixCandidates(include_descending=False).generate(marg, 0b111)
        # ascending risk order: 1 (0.1), 4 (0.2), 1|4|... prefixes nest
        as_sets = sorted(int(p) for p in pools)
        assert 1 << 1 in as_sets  # lowest-risk singleton present
        # prefixes are nested: each pool contains the previous
        sorted_by_size = sorted(pools, key=lambda p: bin(int(p)).count("1"))
        for small, big in zip(sorted_by_size, sorted_by_size[1:]):
            assert int(small) & int(big) == int(small)

    def test_max_pool_size_respected(self):
        marg = np.full(10, 0.1)
        pools = PrefixCandidates(max_pool_size=3).generate(marg, (1 << 10) - 1)
        assert popcount64(pools).max() <= 3

    def test_descending_adds_pools(self):
        marg = np.array([0.1, 0.2, 0.3, 0.4])
        asc = PrefixCandidates(include_descending=False).generate(marg, 0b1111)
        both = PrefixCandidates(include_descending=True).generate(marg, 0b1111)
        assert len(both) >= len(asc)

    def test_no_eligible_raises(self):
        with pytest.raises(ValueError):
            PrefixCandidates().generate(np.array([0.1]), 0)

    def test_deduplicated(self):
        marg = np.full(5, 0.1)
        pools = PrefixCandidates().generate(marg, 0b11111)
        assert len(set(pools.tolist())) == len(pools)


class TestExhaustiveCandidates:
    def test_counts(self):
        pools = ExhaustiveCandidates(max_pool_size=2).generate(np.zeros(4), 0b1111)
        assert len(pools) == 4 + 6  # singletons + pairs

    def test_full_coverage_small(self):
        pools = ExhaustiveCandidates(max_pool_size=3).generate(np.zeros(3), 0b111)
        assert len(pools) == 7  # all non-empty subsets

    def test_respects_eligible(self):
        pools = ExhaustiveCandidates(max_pool_size=2).generate(np.zeros(4), 0b0101)
        assert all_subsets_of(pools, 0b0101)
        assert len(pools) == 2 + 1


class TestRandomCandidates:
    def test_count_bounded(self):
        pools = RandomCandidates(count=32, rng=0).generate(np.zeros(8), 0xFF)
        assert 1 <= len(pools) <= 32  # dedupe may shrink

    def test_within_eligible(self):
        pools = RandomCandidates(count=64, rng=1).generate(np.zeros(8), 0b10110101)
        assert all_subsets_of(pools, 0b10110101)

    def test_max_size(self):
        pools = RandomCandidates(count=64, max_pool_size=2, rng=2).generate(
            np.zeros(8), 0xFF
        )
        assert popcount64(pools).max() <= 2


class TestSlidingWindowCandidates:
    def test_windows_contiguous_in_risk_order(self):
        marg = np.array([0.4, 0.1, 0.3, 0.2])
        pools = SlidingWindowCandidates(window_sizes=[2]).generate(marg, 0b1111)
        # risk order: 1(0.1), 3(0.2), 2(0.3), 0(0.4); windows of 2:
        expected = {(1 << 1) | (1 << 3), (1 << 3) | (1 << 2), (1 << 2) | (1 << 0)}
        assert set(int(p) for p in pools) == expected

    def test_oversized_window_falls_back_to_everyone(self):
        pools = SlidingWindowCandidates(window_sizes=[64]).generate(np.zeros(3), 0b111)
        assert set(int(p) for p in pools) == {0b111}

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowCandidates(window_sizes=[0])
