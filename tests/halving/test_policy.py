"""Selection policies."""

import pytest

from repro.bayes.dilution import BinaryErrorModel, LogNormalViralLoadModel, PerfectTest
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.halving.policy import (
    BHAPolicy,
    DorfmanPolicy,
    IndividualTestingPolicy,
    InformationGainPolicy,
    LookaheadPolicy,
)


@pytest.fixture
def posterior():
    return Posterior.from_prior(PriorSpec.uniform(8, 0.08), BinaryErrorModel(0.95, 0.98))


ALL_ELIGIBLE = 0xFF


class TestBHAPolicy:
    def test_returns_single_pool(self, posterior):
        pools = BHAPolicy().select(posterior, ALL_ELIGIBLE)
        assert len(pools) == 1
        assert pools[0] != 0

    def test_pool_within_eligible(self, posterior):
        pools = BHAPolicy().select(posterior, 0b00001111)
        assert pools[0] & ~0b00001111 == 0

    def test_deterministic(self, posterior):
        assert BHAPolicy().select(posterior, ALL_ELIGIBLE) == BHAPolicy().select(
            posterior, ALL_ELIGIBLE
        )


class TestLookaheadPolicy:
    def test_returns_depth_pools(self, posterior):
        pools = LookaheadPolicy(depth=3).select(posterior, ALL_ELIGIBLE)
        assert len(pools) == 3

    def test_name_includes_depth(self):
        assert LookaheadPolicy(depth=2).name == "lookahead-2"

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            LookaheadPolicy(depth=0)


class TestInformationGainPolicy:
    def test_single_pool(self, posterior):
        pools = InformationGainPolicy().select(posterior, ALL_ELIGIBLE)
        assert len(pools) == 1

    def test_requires_binary_model(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), LogNormalViralLoadModel())
        with pytest.raises(ValueError):
            InformationGainPolicy().select(post, 0b1111)

    def test_perfect_test_matches_halving_gap_ranking(self):
        # With a noiseless binary test, mutual information is maximised
        # exactly where |down-set mass − ½| is minimised.
        post = Posterior.from_prior(PriorSpec.uniform(6, 0.15), PerfectTest())
        ig_pool = InformationGainPolicy().select(post, 0b111111)[0]
        bha_pool = BHAPolicy().select(post, 0b111111)[0]
        from repro.lattice.ops import down_set_mass

        assert abs(down_set_mass(post.space, ig_pool) - 0.5) == pytest.approx(
            abs(down_set_mass(post.space, bha_pool) - 0.5), abs=1e-9
        )


class TestIndividualTestingPolicy:
    def test_one_singleton_per_eligible(self, posterior):
        pools = IndividualTestingPolicy().select(posterior, 0b1010)
        assert sorted(pools) == [0b0010, 0b1000]

    def test_all_eligible(self, posterior):
        pools = IndividualTestingPolicy().select(posterior, ALL_ELIGIBLE)
        assert len(pools) == 8
        assert all(bin(p).count("1") == 1 for p in pools)


class TestDorfmanPolicy:
    def test_stage_one_fixed_pools(self, posterior):
        policy = DorfmanPolicy(pool_size=3)
        pools = policy.select(posterior, ALL_ELIGIBLE)
        assert len(pools) == 3  # 8 people in pools of 3 → 3+3+2
        assert sum(bin(p).count("1") for p in pools) == 8

    def test_stage_two_singletons(self, posterior):
        policy = DorfmanPolicy(pool_size=4)
        policy.select(posterior, ALL_ELIGIBLE)
        second = policy.select(posterior, 0b0011)
        assert sorted(second) == [0b0001, 0b0010]

    def test_reset_restarts_stages(self, posterior):
        policy = DorfmanPolicy(pool_size=4)
        policy.select(posterior, ALL_ELIGIBLE)
        policy.reset()
        pools = policy.select(posterior, ALL_ELIGIBLE)
        assert all(bin(p).count("1") == 4 for p in pools)

    def test_name(self):
        assert DorfmanPolicy(8).name == "dorfman-8"

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            DorfmanPolicy(0)
