"""Bayesian Halving Algorithm: objective and pool choice."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.halving.bha import down_set_masses, halving_objective, select_halving_pool
from repro.halving.candidates import ExhaustiveCandidates
from repro.lattice.builder import build_dense_prior
from repro.lattice.ops import down_set_mass
from repro.lattice.states import StateSpace


class TestDownSetMasses:
    def test_matches_single_pool_op(self):
        space = build_dense_prior(np.array([0.1, 0.3, 0.2]))
        pools = np.array([0b001, 0b011, 0b111], dtype=np.uint64)
        masses = down_set_masses(space, pools)
        expected = [down_set_mass(space, int(p)) for p in pools]
        assert np.allclose(masses, expected, atol=1e-12)

    def test_stable_for_unnormalized(self):
        space = build_dense_prior(np.array([0.1, 0.3]))
        space.log_probs += 500.0  # wildly unnormalised
        masses = down_set_masses(space, np.array([0b01], dtype=np.uint64))
        assert masses[0] == pytest.approx(0.9)

    def test_uniform_half(self):
        space = StateSpace.dense(4)
        masses = down_set_masses(space, np.array([0b0001], dtype=np.uint64))
        assert masses[0] == pytest.approx(0.5)


class TestHalvingObjective:
    def test_at_half_is_zero(self):
        assert halving_objective(np.array([0.5]))[0] == 0.0

    def test_symmetric(self):
        gaps = halving_objective(np.array([0.3, 0.7]))
        assert gaps[0] == pytest.approx(gaps[1])


class TestSelectHalvingPool:
    def test_uniform_lattice_singleton_is_perfect(self):
        space = StateSpace.dense(4)
        pools = ExhaustiveCandidates(max_pool_size=3).generate(np.zeros(4), 0b1111)
        pool, mass, gap = select_halving_pool(space, pools)
        assert gap == pytest.approx(0.0)
        assert bin(pool).count("1") == 1  # tie-break favours smallest pool

    def test_low_prevalence_prefers_big_pool(self):
        # At 5% prevalence, singleton down-set mass = 0.95 (gap 0.45);
        # pooling ~13 people gets P(all negative) ≈ 0.51 (gap ≈ 0.01).
        space = build_dense_prior(np.full(14, 0.05))
        pools = np.array(
            [(1 << k) - 1 for k in range(1, 15)], dtype=np.uint64
        )  # prefixes
        pool, mass, gap = select_halving_pool(space, pools)
        assert bin(pool).count("1") >= 10
        assert gap < 0.05

    def test_matches_exhaustive_brute_force(self):
        rng = np.random.default_rng(3)
        risks = rng.uniform(0.05, 0.4, size=5)
        space = build_dense_prior(risks)
        pools = ExhaustiveCandidates(max_pool_size=5).generate(np.zeros(5), 0b11111)
        pool, mass, gap = select_halving_pool(space, pools)
        # brute force over the same candidates
        best = min(
            (abs(down_set_mass(space, int(p)) - 0.5), bin(int(p)).count("1"), int(p))
            for p in pools
        )
        assert (gap, bin(pool).count("1"), pool) == pytest.approx(best)

    def test_deterministic(self):
        space = build_dense_prior(np.full(6, 0.1))
        pools = ExhaustiveCandidates(max_pool_size=3).generate(np.zeros(6), 0b111111)
        assert select_halving_pool(space, pools) == select_halving_pool(space, pools)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            select_halving_pool(StateSpace.dense(2), np.array([], dtype=np.uint64))

    @settings(max_examples=20, deadline=None)
    @given(risks=st.lists(st.floats(0.05, 0.5), min_size=3, max_size=6).map(np.array))
    def test_selected_gap_is_minimal(self, risks):
        space = build_dense_prior(risks)
        n = len(risks)
        pools = ExhaustiveCandidates(max_pool_size=3).generate(np.zeros(n), (1 << n) - 1)
        _pool, _mass, gap = select_halving_pool(space, pools)
        masses = down_set_masses(space, pools)
        assert gap <= np.abs(masses - 0.5).min() + 1e-12
