"""Loss-based stopping."""

import pytest

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.halving.stopping import LossBasedStopping, terminal_loss
from repro.workflows.classify import run_screen


class TestTerminalLoss:
    def test_certain_marginals_zero_loss(self):
        loss, calls = terminal_loss([0.0, 1.0], fp_cost=1.0, fn_cost=10.0)
        assert loss == 0.0
        assert calls == [False, True]

    def test_maximum_uncertainty(self):
        loss, _ = terminal_loss([0.5], fp_cost=1.0, fn_cost=1.0)
        assert loss == pytest.approx(0.5)

    def test_asymmetric_costs_shift_calls(self):
        # fn 10x fp: even a 0.2 marginal is called positive.
        _, calls = terminal_loss([0.2], fp_cost=1.0, fn_cost=10.0)
        assert calls == [True]
        _, calls_sym = terminal_loss([0.2], fp_cost=1.0, fn_cost=1.0)
        assert calls_sym == [False]

    def test_additive_over_individuals(self):
        l1, _ = terminal_loss([0.3], 1.0, 2.0)
        l2, _ = terminal_loss([0.1], 1.0, 2.0)
        l12, _ = terminal_loss([0.3, 0.1], 1.0, 2.0)
        assert l12 == pytest.approx(l1 + l2)

    def test_invalid_marginals(self):
        with pytest.raises(ValueError):
            terminal_loss([1.5], 1.0, 1.0)


class TestLossBasedStopping:
    def test_threshold_formula(self):
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=9.0, test_cost=0.1)
        assert rule.decision_threshold() == pytest.approx(0.1)

    def test_should_stop_when_risk_small(self):
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=10.0, test_cost=0.5)
        assert rule.should_stop([0.001, 0.002])
        assert not rule.should_stop([0.4, 0.5])

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            LossBasedStopping(fp_cost=0.0)

    def test_classify_now(self):
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=3.0, test_cost=0.1)
        calls = rule.classify_now([0.1, 0.9])
        assert calls == [False, True]


class TestScreensWithStopping:
    def test_screen_terminates_with_full_calls(self):
        prior = PriorSpec.uniform(10, 0.05)
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=20.0, test_cost=0.5)
        result = run_screen(
            prior, BinaryErrorModel(0.98, 0.99), BHAPolicy(), rng=3,
            stopping_rule=rule, max_stages=60,
        )
        assert result.report.all_classified  # loss rule leaves no limbo
        assert not result.exhausted_budget

    def test_cheaper_tests_mean_more_testing(self):
        prior = PriorSpec.uniform(10, 0.05)
        model = BinaryErrorModel(0.98, 0.99)
        expensive = LossBasedStopping(fp_cost=1.0, fn_cost=20.0, test_cost=2.0)
        cheap = LossBasedStopping(fp_cost=1.0, fn_cost=20.0, test_cost=0.05)
        totals = {"expensive": 0, "cheap": 0}
        for seed in range(6):
            from repro.simulate.population import make_cohort

            cohort = make_cohort(prior, rng=800 + seed)
            totals["expensive"] += run_screen(
                prior, model, BHAPolicy(), rng=seed, cohort=cohort,
                stopping_rule=expensive, max_stages=60,
            ).efficiency.num_tests
            totals["cheap"] += run_screen(
                prior, model, BHAPolicy(), rng=seed, cohort=cohort,
                stopping_rule=cheap, max_stages=60,
            ).efficiency.num_tests
        assert totals["cheap"] >= totals["expensive"]

    def test_sbgt_session_accepts_rule(self, ctx):
        from repro.sbgt.config import SBGTConfig
        from repro.sbgt.session import SBGTSession

        prior = PriorSpec.uniform(8, 0.05)
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=20.0, test_cost=0.5)
        session = SBGTSession(ctx, prior, PerfectTest(), SBGTConfig(max_stages=40))
        result = session.run_screen(BHAPolicy(), rng=2, stopping_rule=rule)
        assert result.report.all_classified
        session.close()

    def test_high_fn_cost_flags_uncertain_positives(self):
        # With fn_cost >> fp_cost and expensive tests, residual-risk
        # individuals get called positive rather than left undetermined.
        prior = PriorSpec.uniform(6, 0.3)
        rule = LossBasedStopping(fp_cost=1.0, fn_cost=50.0, test_cost=5.0)
        result = run_screen(
            prior, BinaryErrorModel(0.9, 0.9), BHAPolicy(), rng=1,
            stopping_rule=rule, max_stages=3,
        )
        assert result.report.all_classified
