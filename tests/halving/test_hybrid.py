"""Hybrid (Dorfman → BHA) policy."""

from repro.bayes.dilution import BinaryErrorModel, PerfectTest
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.halving.hybrid import HybridPolicy
from repro.halving.policy import BHAPolicy, DorfmanPolicy
from repro.simulate.population import make_cohort
from repro.workflows.classify import run_screen


class TestStageBehaviour:
    def test_stage_one_is_dorfman_grid(self):
        post = Posterior.from_prior(PriorSpec.uniform(8, 0.05), PerfectTest())
        policy = HybridPolicy(pool_size=4)
        pools = policy.select(post, 0xFF)
        assert len(pools) == 2
        assert all(bin(p).count("1") == 4 for p in pools)

    def test_later_stages_are_bha(self):
        post = Posterior.from_prior(PriorSpec.uniform(8, 0.05), PerfectTest())
        policy = HybridPolicy(pool_size=4)
        policy.select(post, 0xFF)
        second = policy.select(post, 0xFF)
        assert len(second) == 1  # single halving-optimal pool

    def test_auto_pool_size_follows_risk(self):
        policy = HybridPolicy()  # auto sizing
        low = Posterior.from_prior(PriorSpec.uniform(12, 0.01), PerfectTest())
        pools_low = policy.select(low, (1 << 12) - 1)
        policy.reset()
        high = Posterior.from_prior(PriorSpec.uniform(12, 0.25), PerfectTest())
        pools_high = policy.select(high, (1 << 12) - 1)
        max_low = max(bin(p).count("1") for p in pools_low)
        max_high = max(bin(p).count("1") for p in pools_high)
        assert max_low > max_high  # bigger pools when prevalence is low

    def test_reset_restores_stage_one(self):
        post = Posterior.from_prior(PriorSpec.uniform(6, 0.05), PerfectTest())
        policy = HybridPolicy(pool_size=3)
        policy.select(post, 0b111111)
        policy.select(post, 0b111111)
        policy.reset()
        pools = policy.select(post, 0b111111)
        assert len(pools) == 2

    def test_name(self):
        assert HybridPolicy(4).name == "hybrid-4"
        assert HybridPolicy().name == "hybrid-auto"


class TestHybridScreens:
    def test_fewer_stages_than_bha_fewer_tests_than_dorfman(self):
        prior = PriorSpec.uniform(12, 0.05)
        model = BinaryErrorModel(0.99, 0.995)
        totals = {"bha": [0, 0], "hybrid": [0, 0], "dorfman": [0, 0]}
        factories = {
            "bha": BHAPolicy,
            "hybrid": lambda: HybridPolicy(),
            "dorfman": lambda: DorfmanPolicy(5),
        }
        for seed in range(8):
            cohort = make_cohort(prior, rng=900 + seed)
            for name, factory in factories.items():
                res = run_screen(
                    prior, model, factory(), rng=seed, cohort=cohort, max_stages=60
                )
                totals[name][0] += res.efficiency.num_tests
                totals[name][1] += res.stages_used
        assert totals["hybrid"][1] <= totals["bha"][1]  # fewer lab rounds
        assert totals["hybrid"][0] <= totals["dorfman"][0] + 2  # ~Dorfman tests or better

    def test_perfect_accuracy_with_perfect_test(self):
        prior = PriorSpec.uniform(10, 0.08)
        res = run_screen(prior, PerfectTest(), HybridPolicy(), rng=4)
        assert res.accuracy == 1.0
