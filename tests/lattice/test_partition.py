"""Block kernels vs whole-space operations."""

import numpy as np
import pytest

from repro.lattice.builder import build_dense_prior
from repro.lattice.ops import down_set_mass, entropy, marginals, pool_count_distribution
from repro.lattice.partition import (
    LatticeBlock,
    block_count_distribution_partial,
    block_down_set_partial,
    block_entropy_partial,
    block_filter_consistent,
    block_histogram_partial,
    block_log_mass,
    block_marginal_partial,
    block_scale,
    block_top_states,
    block_update,
    merge_blocks,
    partition_state_space,
)


@pytest.fixture
def space():
    return build_dense_prior(np.array([0.1, 0.3, 0.2, 0.4, 0.15]))


class TestPartitionMerge:
    def test_round_trip(self, space):
        blocks = partition_state_space(space, 7)
        merged = merge_blocks(blocks)
        assert np.array_equal(merged.masks, space.masks)
        assert np.allclose(merged.log_probs, space.log_probs)

    def test_block_sizes(self, space):
        blocks = partition_state_space(space, 10)
        assert all(b.size <= 10 for b in blocks)
        assert sum(b.size for b in blocks) == space.size

    def test_invalid_block_size(self, space):
        with pytest.raises(ValueError):
            partition_state_space(space, 0)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_blocks([])

    def test_merge_mismatched_n_items_raises(self):
        a = LatticeBlock(2, np.array([0], dtype=np.uint64), np.zeros(1))
        b = LatticeBlock(3, np.array([0], dtype=np.uint64), np.zeros(1))
        with pytest.raises(ValueError):
            merge_blocks([a, b])

    def test_blocks_are_copies(self, space):
        blocks = partition_state_space(space, 8)
        blocks[0].log_probs[0] = -99.0
        assert space.log_probs[0] != -99.0


class TestBlockKernels:
    def test_log_mass_sums_to_total(self, space):
        blocks = partition_state_space(space, 6)
        total = np.logaddexp.reduce([block_log_mass(b) for b in blocks])
        assert total == pytest.approx(space.log_total_mass, abs=1e-10)

    def test_log_mass_empty_block(self):
        b = LatticeBlock(2, np.array([], dtype=np.uint64), np.array([]))
        assert block_log_mass(b) == -np.inf

    def test_marginal_partials_sum_to_marginals(self, space):
        blocks = partition_state_space(space, 6)
        total = sum(block_marginal_partial(b) for b in blocks)
        assert np.allclose(total, marginals(space), atol=1e-12)

    def test_down_set_partials_sum(self, space):
        pools = np.array([0b00001, 0b00111, 0b11111], dtype=np.uint64)
        blocks = partition_state_space(space, 6)
        total = sum(block_down_set_partial(b, pools) for b in blocks)
        expected = [down_set_mass(space, int(p)) for p in pools]
        assert np.allclose(total, expected, atol=1e-12)

    def test_entropy_partials_sum(self, space):
        blocks = partition_state_space(space, 4)
        total = sum(block_entropy_partial(b) for b in blocks)
        assert total == pytest.approx(entropy(space), abs=1e-10)

    def test_count_distribution_partials_sum(self, space):
        pool, pool_size = 0b01011, 3
        blocks = partition_state_space(space, 6)
        total = sum(block_count_distribution_partial(b, pool, pool_size) for b in blocks)
        assert np.allclose(total, pool_count_distribution(space, pool), atol=1e-12)

    def test_update_matches_whole_space(self, space):
        ll = np.log(np.array([0.1, 0.7, 0.9, 0.99]))
        pool = 0b00111
        blocks = partition_state_space(space, 6)
        updated = [block_update(b, pool, ll) for b in blocks]
        merged = merge_blocks(updated)

        reference = space.copy()
        from repro.lattice.ops import posterior_update

        posterior_update(reference, pool, ll)
        merged.normalize()
        assert np.allclose(merged.log_probs, reference.log_probs, atol=1e-10)

    def test_scale_shifts_mass(self, space):
        blocks = partition_state_space(space, 8)
        shift = 1.5
        scaled = [block_scale(b, shift) for b in blocks]
        total = np.logaddexp.reduce([block_log_mass(b) for b in scaled])
        assert total == pytest.approx(space.log_total_mass - shift, abs=1e-10)

    def test_top_states_block_local(self, space):
        blocks = partition_state_space(space, 8)
        for b in blocks:
            top = block_top_states(b, 3)
            assert len(top) == min(3, b.size)
            lps = [lp for _m, lp in top]
            assert lps == sorted(lps, reverse=True)

    def test_filter_consistent(self, space):
        blocks = partition_state_space(space, 8)
        filtered = [block_filter_consistent(b, positive_mask=0b1, negative_mask=0b10) for b in blocks]
        for b in filtered:
            assert np.all(b.masks & np.uint64(1) == np.uint64(1))
            assert np.all(b.masks & np.uint64(2) == np.uint64(0))

    def test_histogram_partials_cover_mass(self, space):
        blocks = partition_state_space(space, 8)
        lo, hi = space.log_probs.min(), space.log_probs.max()
        edges = np.linspace(lo, np.nextafter(hi, np.inf), 33)
        hist = sum(block_histogram_partial(b, edges) for b in blocks)
        assert hist.sum() == pytest.approx(1.0, abs=1e-10)

    def test_histogram_empty_block(self):
        b = LatticeBlock(2, np.array([], dtype=np.uint64), np.array([]))
        assert block_histogram_partial(b, np.linspace(0, 1, 5)).sum() == 0.0
