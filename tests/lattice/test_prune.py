"""Pruning: mass coverage guarantees and bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lattice.builder import build_dense_prior
from repro.lattice.prune import prune_below, prune_by_mass
from repro.lattice.states import StateSpace


class TestPruneByMass:
    def test_keeps_requested_mass(self):
        space = build_dense_prior(np.full(6, 0.05))
        result = prune_by_mass(space, 1e-3)
        assert result.dropped_mass <= 1e-3 + 1e-12

    def test_result_normalized(self):
        space = build_dense_prior(np.full(5, 0.1))
        assert prune_by_mass(space, 0.01).space.is_normalized()

    def test_epsilon_zero_keeps_positive_mass_states(self):
        space = build_dense_prior(np.full(4, 0.2))
        result = prune_by_mass(space, 0.0)
        assert result.kept_states == 16
        assert result.dropped_mass == 0.0

    def test_map_state_survives(self):
        space = build_dense_prior(np.full(8, 0.02))
        before = int(space.masks[np.argmax(space.log_probs)])
        result = prune_by_mass(space, 0.5)
        assert before in result.space.masks.tolist()

    def test_counts_add_up(self):
        space = build_dense_prior(np.full(6, 0.1))
        result = prune_by_mass(space, 0.05)
        assert result.kept_states + result.dropped_states == 64
        assert result.space.size == result.kept_states

    def test_aggressive_prune_shrinks_hard(self):
        space = build_dense_prior(np.full(10, 0.01))
        result = prune_by_mass(space, 0.1)
        assert result.kept_states < 64  # low prevalence: mass is concentrated

    def test_invalid_epsilon(self):
        space = StateSpace.dense(2)
        for eps in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError):
                prune_by_mass(space, eps)

    def test_linear_extension_preserved(self):
        space = build_dense_prior(np.full(5, 0.2))
        result = prune_by_mass(space, 0.2)
        masks = result.space.masks
        assert all(masks[i] < masks[i + 1] for i in range(len(masks) - 1))

    @settings(max_examples=25, deadline=None)
    @given(
        risks=st.lists(st.floats(0.01, 0.4), min_size=2, max_size=8).map(np.array),
        eps=st.floats(0.0001, 0.5),
    )
    def test_mass_guarantee_property(self, risks, eps):
        space = build_dense_prior(risks)
        result = prune_by_mass(space, eps)
        assert result.dropped_mass <= eps + 1e-9
        assert result.space.is_normalized()


class TestPruneBelow:
    def test_drops_below_floor(self):
        lp = np.log(np.array([0.6, 0.3, 0.08, 0.02]))
        space = StateSpace(2, np.arange(4, dtype=np.uint64), lp)
        result = prune_below(space, 0.05)
        assert result.kept_states == 3
        assert result.dropped_mass == pytest.approx(0.02)

    def test_never_empties(self):
        space = StateSpace.dense(3)
        result = prune_below(space, 0.99)
        assert result.kept_states >= 1

    def test_floor_zero_keeps_all(self):
        space = build_dense_prior(np.full(4, 0.3))
        assert prune_below(space, 0.0).kept_states == 16

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            prune_below(StateSpace.dense(2), 1.0)
