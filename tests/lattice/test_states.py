"""StateSpace construction and invariants."""

import numpy as np
import pytest

from repro.lattice.states import StateSpace


class TestDense:
    def test_size(self):
        assert StateSpace.dense(4).size == 16

    def test_uniform_normalized(self):
        space = StateSpace.dense(3)
        assert space.is_normalized()
        assert np.allclose(space.probs(), 1 / 8)

    def test_masks_enumerate_all(self):
        space = StateSpace.dense(3)
        assert sorted(space.masks.tolist()) == list(range(8))

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            StateSpace.dense(31)

    def test_zero_items_raises(self):
        with pytest.raises(ValueError):
            StateSpace.dense(0)


class TestFromMasks:
    def test_subset_support(self):
        space = StateSpace.from_masks(4, [0, 1, 3])
        assert space.size == 3
        assert space.is_normalized()

    def test_explicit_log_probs(self):
        lp = np.log([0.5, 0.5])
        space = StateSpace.from_masks(2, [0, 3], lp)
        assert np.allclose(space.probs(), [0.5, 0.5])

    def test_mask_beyond_n_items_raises(self):
        with pytest.raises(ValueError):
            StateSpace.from_masks(2, [8])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            StateSpace.from_masks(2, [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            StateSpace(2, np.array([0, 1], dtype=np.uint64), np.zeros(3))


class TestProperties:
    def test_probs_normalizes_unnormalized(self):
        space = StateSpace.from_masks(2, [0, 1], np.log([2.0, 6.0]))
        assert np.allclose(space.probs(), [0.25, 0.75])

    def test_log_total_mass(self):
        space = StateSpace.from_masks(1, [0, 1], np.log([1.0, 3.0]))
        assert space.log_total_mass == pytest.approx(np.log(4.0))

    def test_positive_counts(self):
        space = StateSpace.from_masks(3, [0b000, 0b101, 0b111])
        assert space.positive_counts().tolist() == [0, 2, 3]

    def test_copy_is_independent(self):
        space = StateSpace.dense(2)
        clone = space.copy()
        clone.log_probs[0] = -50.0
        assert space.log_probs[0] != -50.0

    def test_len(self):
        assert len(StateSpace.dense(3)) == 8

    def test_normalize_method(self):
        space = StateSpace.from_masks(2, [0, 1], np.array([1.0, 2.0]))
        space.normalize()
        assert space.is_normalized()

    def test_uint64_coercion(self):
        space = StateSpace(2, np.array([0, 1]), np.zeros(2))
        assert space.masks.dtype == np.uint64
