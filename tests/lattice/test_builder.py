"""Prior construction over dense and restricted lattices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.special import logsumexp

from repro.lattice.builder import (
    build_dense_prior,
    build_restricted_prior,
    enumerate_restricted_masks,
    product_prior_log,
)
from repro.util.bits import popcount64

risk_arrays = st.lists(
    st.floats(min_value=0.001, max_value=0.999), min_size=1, max_size=10
).map(np.array)


class TestProductPriorLog:
    def test_single_item(self):
        masks = np.array([0, 1], dtype=np.uint64)
        lp = product_prior_log(masks, np.array([0.3]))
        assert np.allclose(np.exp(lp), [0.7, 0.3])

    def test_two_items_independent(self):
        masks = np.arange(4, dtype=np.uint64)
        lp = product_prior_log(masks, np.array([0.1, 0.5]))
        expected = [0.9 * 0.5, 0.1 * 0.5, 0.9 * 0.5, 0.1 * 0.5]
        assert np.allclose(np.exp(lp), expected)

    def test_degenerate_risk_rejected(self):
        with pytest.raises(ValueError):
            product_prior_log(np.array([0], dtype=np.uint64), np.array([0.0]))
        with pytest.raises(ValueError):
            product_prior_log(np.array([0], dtype=np.uint64), np.array([1.0]))

    @settings(max_examples=30, deadline=None)
    @given(risks=risk_arrays)
    def test_dense_prior_sums_to_one(self, risks):
        masks = np.arange(1 << len(risks), dtype=np.uint64)
        lp = product_prior_log(masks, risks)
        assert logsumexp(lp) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(risks=risk_arrays)
    def test_matches_per_state_product(self, risks):
        masks = np.arange(1 << len(risks), dtype=np.uint64)
        lp = product_prior_log(masks, risks)
        for state in range(min(16, 1 << len(risks))):
            expected = 1.0
            for i, r in enumerate(risks):
                expected *= r if (state >> i) & 1 else 1 - r
            assert np.exp(lp[state]) == pytest.approx(expected, rel=1e-9)


class TestBuildDensePrior:
    def test_normalized(self):
        space = build_dense_prior(np.array([0.1, 0.2, 0.3]))
        assert space.is_normalized()
        assert space.size == 8

    def test_marginals_equal_risks(self):
        risks = np.array([0.05, 0.2, 0.5, 0.9])
        space = build_dense_prior(risks)
        assert np.allclose(space.marginals(), risks, atol=1e-10)

    def test_too_many_items(self):
        with pytest.raises(ValueError):
            build_dense_prior(np.full(31, 0.5))


class TestEnumerateRestrictedMasks:
    def test_rank_zero(self):
        assert enumerate_restricted_masks(5, 0).tolist() == [0]

    def test_counts_match_binomials(self):
        masks = enumerate_restricted_masks(6, 2)
        assert masks.size == 1 + 6 + 15

    def test_full_rank_is_complete_lattice(self):
        masks = enumerate_restricted_masks(4, 4)
        assert sorted(masks.tolist()) == list(range(16))

    def test_no_mask_exceeds_rank(self):
        masks = enumerate_restricted_masks(8, 3)
        assert popcount64(masks).max() == 3

    def test_sorted_by_rank_then_value(self):
        masks = enumerate_restricted_masks(4, 2)
        ranks = popcount64(masks)
        assert all(ranks[i] <= ranks[i + 1] for i in range(len(ranks) - 1))

    def test_no_duplicates(self):
        masks = enumerate_restricted_masks(7, 3)
        assert len(set(masks.tolist())) == masks.size

    def test_max_positives_clamped(self):
        assert enumerate_restricted_masks(3, 10).size == 8


class TestBuildRestrictedPrior:
    def test_normalized_on_support(self):
        space, _ = build_restricted_prior(np.full(8, 0.05), 3)
        assert space.is_normalized()

    def test_discarded_mass_matches_binomial_tail(self):
        n, p, k = 10, 0.1, 2
        from scipy.stats import binom

        _, log_disc = build_restricted_prior(np.full(n, p), k)
        expected_tail = 1.0 - binom.cdf(k, n, p)
        assert np.exp(log_disc) == pytest.approx(expected_tail, rel=1e-9)

    def test_full_rank_discards_nothing(self):
        _, log_disc = build_restricted_prior(np.full(4, 0.3), 4)
        assert np.exp(log_disc) == pytest.approx(0.0, abs=1e-12)

    def test_restriction_reweights_consistently(self):
        risks = np.array([0.02, 0.05, 0.1, 0.2, 0.15])
        dense = build_dense_prior(risks)
        restricted, _ = build_restricted_prior(risks, 2)
        # Restricted probabilities = dense probabilities renormalised on
        # the ≤2-positive support.
        keep = popcount64(dense.masks) <= 2
        expected = dense.probs()[keep] / dense.probs()[keep].sum()
        dense_by_mask = dict(zip(dense.masks[keep].tolist(), expected))
        for mask, p in zip(restricted.masks.tolist(), restricted.probs()):
            assert p == pytest.approx(dense_by_mask[mask], rel=1e-9)
