"""Lattice contraction: project_out_bit and its block kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lattice.builder import build_dense_prior
from repro.lattice.ops import (
    condition_on_classification,
    marginals,
    project_out_bit,
)
from repro.lattice.partition import (
    block_project_out_bit,
    merge_blocks,
    partition_state_space,
)
from repro.lattice.states import StateSpace


@pytest.fixture
def space():
    return build_dense_prior(np.array([0.1, 0.3, 0.2, 0.4]))


class TestProjectOutBit:
    def test_size_halves(self, space):
        assert project_out_bit(space, 1, True).size == 8

    def test_n_items_decreases(self, space):
        assert project_out_bit(space, 0, False).n_items == 3

    def test_marginals_match_conditioning(self, space):
        for bit in range(4):
            for keep_positive in (True, False):
                proj = project_out_bit(space, bit, keep_positive)
                cond = condition_on_classification(
                    space,
                    positive_mask=(1 << bit) if keep_positive else 0,
                    negative_mask=0 if keep_positive else (1 << bit),
                )
                m_cond = marginals(cond)
                expected = np.delete(m_cond, bit)
                assert np.allclose(marginals(proj), expected, atol=1e-12)

    def test_result_normalized(self, space):
        assert project_out_bit(space, 2, True).is_normalized()

    def test_independent_prior_unchanged_marginals(self, space):
        # With an independent prior, projecting one individual out leaves
        # everyone else's marginal exactly at their risk.
        proj = project_out_bit(space, 1, True)
        assert np.allclose(marginals(proj), [0.1, 0.2, 0.4], atol=1e-12)

    def test_no_duplicate_masks(self, space):
        proj = project_out_bit(space, 1, False)
        assert len(set(proj.masks.tolist())) == proj.size

    def test_invalid_bit(self, space):
        with pytest.raises(ValueError):
            project_out_bit(space, 4, True)
        with pytest.raises(ValueError):
            project_out_bit(space, -1, True)

    def test_last_individual_rejected(self):
        space = StateSpace.dense(1)
        with pytest.raises(ValueError):
            project_out_bit(space, 0, True)

    def test_contradiction_raises(self):
        space = StateSpace.from_masks(2, [0b00, 0b10])  # bit 0 never set
        with pytest.raises(ValueError):
            project_out_bit(space, 0, keep_positive=True)

    @settings(max_examples=25, deadline=None)
    @given(
        risks=st.lists(st.floats(0.05, 0.6), min_size=2, max_size=6).map(np.array),
        keep_positive=st.booleans(),
        data=st.data(),
    )
    def test_sequential_projection_consistent(self, risks, keep_positive, data):
        space = build_dense_prior(risks)
        bit = data.draw(st.integers(0, len(risks) - 1))
        proj = project_out_bit(space, bit, keep_positive)
        assert proj.is_normalized()
        assert proj.size == space.size // 2


class TestBlockProjection:
    def test_blocks_match_whole_space(self, space):
        blocks = partition_state_space(space, 5)
        projected = [block_project_out_bit(b, 2, True) for b in blocks]
        merged = merge_blocks([b for b in projected if b.size > 0])
        merged.normalize()
        reference = project_out_bit(space, 2, True)
        by_mask_ref = dict(zip(reference.masks.tolist(), reference.probs()))
        by_mask_got = dict(zip(merged.masks.tolist(), merged.probs()))
        assert by_mask_ref.keys() == by_mask_got.keys()
        for mask, p in by_mask_ref.items():
            assert by_mask_got[mask] == pytest.approx(p, abs=1e-12)

    def test_empty_block_ok(self):
        from repro.lattice.partition import LatticeBlock

        empty = LatticeBlock(3, np.array([], dtype=np.uint64), np.array([]))
        out = block_project_out_bit(empty, 1, True)
        assert out.size == 0
        assert out.n_items == 2
