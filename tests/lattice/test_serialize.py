"""Lattice and posterior persistence."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, LogNormalViralLoadModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.lattice.serialize import (
    load_posterior,
    load_state_space,
    save_posterior,
    save_state_space,
)


class TestStateSpaceRoundTrip:
    def test_round_trip(self, tmp_path):
        space = PriorSpec(np.array([0.1, 0.3, 0.05])).build_dense()
        path = tmp_path / "lattice.npz"
        save_state_space(space, path)
        loaded = load_state_space(path)
        assert loaded.n_items == space.n_items
        assert np.array_equal(loaded.masks, space.masks)
        assert np.allclose(loaded.log_probs, space.log_probs)

    def test_restricted_support_round_trip(self, tmp_path):
        space, _ = PriorSpec.uniform(12, 0.03).build_restricted(3)
        path = tmp_path / "restricted.npz"
        save_state_space(space, path)
        loaded = load_state_space(path)
        assert loaded.size == space.size

    def test_loaded_arrays_are_writable(self, tmp_path):
        space = PriorSpec.uniform(4, 0.1).build_dense()
        path = tmp_path / "l.npz"
        save_state_space(space, path)
        loaded = load_state_space(path)
        loaded.log_probs += 1.0  # must not raise (copies, not mmap views)


class TestPosteriorCheckpoint:
    def _screen_a_bit(self, model, track_entropy=False):
        post = Posterior.from_prior(
            PriorSpec.uniform(6, 0.1), model, track_entropy=track_entropy
        )
        post.begin_stage()
        post.update([0, 1, 2], True)
        post.begin_stage()
        post.update([0], False)
        return post

    def test_round_trip_resumes_identically(self, tmp_path):
        model = BinaryErrorModel(0.95, 0.98)
        post = self._screen_a_bit(model)
        path = tmp_path / "ckpt.npz"
        save_posterior(post, path)
        resumed = load_posterior(path, model)
        assert np.allclose(resumed.marginals(), post.marginals())
        assert resumed.num_tests == post.num_tests
        assert resumed.log.log_evidence == pytest.approx(post.log.log_evidence)
        # Continue both and stay identical.
        post.update([3, 4], False)
        resumed.update([3, 4], False)
        assert np.allclose(resumed.marginals(), post.marginals())

    def test_stage_counter_restored(self, tmp_path):
        model = BinaryErrorModel(0.95, 0.98)
        post = self._screen_a_bit(model)
        path = tmp_path / "c.npz"
        save_posterior(post, path)
        resumed = load_posterior(path, model)
        assert resumed.begin_stage() == 3

    def test_entropy_tracking_flag_restored(self, tmp_path):
        model = BinaryErrorModel(0.95, 0.98)
        post = self._screen_a_bit(model, track_entropy=True)
        path = tmp_path / "e.npz"
        save_posterior(post, path)
        resumed = load_posterior(path, model)
        rec = resumed.update([5], False)
        assert rec.entropy_before is not None

    def test_continuous_outcomes_survive(self, tmp_path):
        model = LogNormalViralLoadModel()
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), model)
        post.update([0, 1], 6.5)
        path = tmp_path / "ct.npz"
        save_posterior(post, path)
        resumed = load_posterior(path, model)
        assert resumed.log.records[0].outcome == pytest.approx(6.5)

    def test_contracted_posterior_rejected(self, tmp_path):
        model = BinaryErrorModel(0.95, 0.98)
        post = self._screen_a_bit(model)
        post.settle(5, False)
        with pytest.raises(ValueError):
            save_posterior(post, tmp_path / "x.npz")
