"""Lattice operation kernels against brute-force oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lattice.builder import build_dense_prior
from repro.lattice.ops import (
    condition_on_classification,
    down_set_mass,
    entropy,
    kl_divergence,
    map_state,
    marginals,
    normalize_log_probs,
    pool_count_distribution,
    posterior_update,
    top_states,
    up_set_mass,
)
from repro.lattice.states import StateSpace


def brute_marginals(space):
    p = space.probs()
    return [
        sum(p[j] for j in range(space.size) if (int(space.masks[j]) >> i) & 1)
        for i in range(space.n_items)
    ]


class TestNormalize:
    def test_sums_to_one(self):
        lp = normalize_log_probs(np.array([0.0, 1.0, 2.0]))
        assert np.exp(lp).sum() == pytest.approx(1.0)

    def test_idempotent(self):
        lp = normalize_log_probs(np.array([-1.0, -2.0]))
        assert np.allclose(normalize_log_probs(lp), lp)

    def test_preserves_ratios(self):
        lp = normalize_log_probs(np.log([2.0, 6.0]))
        assert np.exp(lp[1] - lp[0]) == pytest.approx(3.0)

    def test_all_zero_mass_raises(self):
        with pytest.raises(ValueError):
            normalize_log_probs(np.array([-np.inf, -np.inf]))

    def test_extreme_values_stable(self):
        lp = normalize_log_probs(np.array([-1e6, -1e6 + 1.0]))
        assert np.isfinite(lp).all()
        assert np.exp(lp).sum() == pytest.approx(1.0)


class TestEntropy:
    def test_uniform(self):
        assert entropy(StateSpace.dense(3)) == pytest.approx(3 * np.log(2))

    def test_point_mass_zero(self):
        lp = np.full(4, -np.inf)
        lp[2] = 0.0
        space = StateSpace(2, np.arange(4, dtype=np.uint64), lp)
        assert entropy(space) == pytest.approx(0.0)

    def test_nonnegative(self):
        space = build_dense_prior(np.array([0.1, 0.7, 0.3]))
        assert entropy(space) >= 0.0


class TestMarginals:
    def test_matches_brute_force(self):
        space = build_dense_prior(np.array([0.1, 0.4, 0.25, 0.6]))
        assert np.allclose(marginals(space), brute_marginals(space))

    @settings(max_examples=25, deadline=None)
    @given(
        risks=st.lists(st.floats(0.01, 0.99), min_size=1, max_size=6).map(np.array)
    )
    def test_prior_marginals_equal_risks(self, risks):
        space = build_dense_prior(risks)
        assert np.allclose(marginals(space), risks, atol=1e-9)

    def test_in_unit_interval(self):
        space = build_dense_prior(np.array([0.2, 0.8]))
        m = marginals(space)
        assert np.all(m >= 0) and np.all(m <= 1)


class TestMapTopStates:
    def test_map_state(self):
        lp = np.log(np.array([0.1, 0.2, 0.65, 0.05]))
        space = StateSpace(2, np.arange(4, dtype=np.uint64), lp)
        assert map_state(space) == 2

    def test_top_states_sorted(self):
        lp = np.log(np.array([0.4, 0.1, 0.3, 0.2]))
        space = StateSpace(2, np.arange(4, dtype=np.uint64), lp)
        top = top_states(space, 3)
        assert [m for m, _ in top] == [0, 2, 3]
        assert top[0][1] == pytest.approx(0.4)

    def test_top_states_k_zero(self):
        assert top_states(StateSpace.dense(2), 0) == []

    def test_top_states_k_exceeds_size(self):
        assert len(top_states(StateSpace.dense(2), 100)) == 4


class TestDownUpSet:
    def test_down_set_uniform(self):
        space = StateSpace.dense(3)
        # down-set of pool {0}: states with bit0 clear = half the lattice
        assert down_set_mass(space, 0b001) == pytest.approx(0.5)

    def test_down_plus_up_is_one(self):
        space = build_dense_prior(np.array([0.2, 0.5, 0.1]))
        for pool in (0b001, 0b011, 0b111):
            assert down_set_mass(space, pool) + up_set_mass(space, pool) == pytest.approx(1.0)

    def test_prior_down_set_is_product(self):
        risks = np.array([0.1, 0.2, 0.3])
        space = build_dense_prior(risks)
        assert down_set_mass(space, 0b111) == pytest.approx(np.prod(1 - risks))

    def test_pool_count_distribution_sums_to_one(self):
        space = build_dense_prior(np.array([0.3, 0.3, 0.3, 0.3]))
        dist = pool_count_distribution(space, 0b1111)
        assert dist.sum() == pytest.approx(1.0)
        # iid 0.3 risks: counts are Binomial(4, 0.3)
        from scipy.stats import binom

        assert np.allclose(dist, binom.pmf(np.arange(5), 4, 0.3), atol=1e-9)


class TestPosteriorUpdate:
    def test_matches_manual_bayes(self):
        risks = np.array([0.2, 0.4, 0.1])
        space = build_dense_prior(risks)
        pool, ll = 0b011, np.log(np.array([0.05, 0.8, 0.95]))
        prior_p = space.probs().copy()
        posterior_update(space, pool, ll)
        counts = [bin(s & pool).count("1") for s in range(8)]
        unnorm = prior_p * np.exp(ll)[counts]
        assert np.allclose(space.probs(), unnorm / unnorm.sum())

    def test_output_normalized(self):
        space = build_dense_prior(np.array([0.5, 0.5]))
        posterior_update(space, 0b01, np.log([0.3, 0.9]))
        assert space.is_normalized()

    def test_short_likelihood_vector_raises(self):
        space = StateSpace.dense(3)
        with pytest.raises(ValueError):
            posterior_update(space, 0b111, np.log([0.5, 0.5]))  # needs k=0..3

    def test_sequential_updates_commute(self):
        risks = np.array([0.1, 0.3, 0.2])
        ll_a, ll_b = np.log([0.1, 0.9]), np.log([0.8, 0.2])
        s1 = build_dense_prior(risks)
        posterior_update(s1, 0b001, ll_a)
        posterior_update(s1, 0b100, ll_b)
        s2 = build_dense_prior(risks)
        posterior_update(s2, 0b100, ll_b)
        posterior_update(s2, 0b001, ll_a)
        assert np.allclose(s1.log_probs, s2.log_probs, atol=1e-10)


class TestCondition:
    def test_confirmed_positive(self):
        space = build_dense_prior(np.array([0.1, 0.5]))
        out = condition_on_classification(space, positive_mask=0b01)
        assert np.allclose(marginals(out)[0], 1.0)
        assert out.size == 2

    def test_confirmed_negative(self):
        space = build_dense_prior(np.array([0.1, 0.5]))
        out = condition_on_classification(space, negative_mask=0b10)
        assert marginals(out)[1] == pytest.approx(0.0)

    def test_other_marginals_unchanged_under_independence(self):
        space = build_dense_prior(np.array([0.1, 0.5, 0.3]))
        out = condition_on_classification(space, positive_mask=0b001)
        assert np.allclose(marginals(out)[1:], [0.5, 0.3], atol=1e-10)

    def test_conflicting_masks_raise(self):
        space = StateSpace.dense(2)
        with pytest.raises(ValueError):
            condition_on_classification(space, positive_mask=0b01, negative_mask=0b01)

    def test_contradiction_raises(self):
        space = StateSpace.from_masks(2, [0b00])  # only the all-negative state
        with pytest.raises(ValueError):
            condition_on_classification(space, positive_mask=0b01)


class TestKL:
    def test_self_divergence_zero(self):
        space = build_dense_prior(np.array([0.2, 0.6]))
        assert kl_divergence(space, space.copy()) == pytest.approx(0.0)

    def test_nonnegative(self):
        p = build_dense_prior(np.array([0.2, 0.6]))
        q = build_dense_prior(np.array([0.5, 0.5]))
        assert kl_divergence(p, q) > 0.0

    def test_asymmetric(self):
        p = build_dense_prior(np.array([0.05, 0.05]))
        q = build_dense_prior(np.array([0.6, 0.6]))
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_mismatched_support_raises(self):
        p = StateSpace.dense(2)
        q = StateSpace.from_masks(2, [0, 1])
        with pytest.raises(ValueError):
            kl_divergence(p, q)
