"""Cross-run stability of shuffle partition assignment.

Builtin ``hash`` salts str/bytes with ``PYTHONHASHSEED``, so a
``HashPartitioner`` built on it routes the same key to different
partitions on different interpreter runs.  :func:`repro.engine.shuffle.
stable_hash` must not.
"""

import json
import os
import pathlib
import subprocess
import sys

from repro.engine.shuffle import HashPartitioner, stable_hash

_SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

# Executed in fresh interpreters with different hash seeds; the printed
# partition assignment must be identical across runs.
_PROBE = """
import json, sys
sys.path.insert(0, %r)
from repro.engine.shuffle import HashPartitioner
keys = [
    "alpha", "beta", "gamma-with-a-longer-name", b"raw-bytes",
    ("compound", "key"), ("nested", ("deeper", "still")),
    frozenset({"a", "b", "c"}), 0, 7, -13, 2.5, None, True,
]
part = HashPartitioner(16)
print(json.dumps([part.partition(k) for k in keys]))
""" % (_SRC,)


def _probe_with_seed(seed: str) -> list:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    out = subprocess.run(
        [sys.executable, "-c", _PROBE], env=env, capture_output=True, text=True, check=True
    )
    return json.loads(out.stdout)


class TestStableHash:
    def test_partition_assignment_stable_across_hash_seeds(self):
        a = _probe_with_seed("1")
        b = _probe_with_seed("31337")
        assert a == b

    def test_in_process_matches_subprocess(self):
        # The current (salted) interpreter must agree with a fresh one.
        part = HashPartitioner(16)
        keys = [
            "alpha", "beta", "gamma-with-a-longer-name", b"raw-bytes",
            ("compound", "key"), ("nested", ("deeper", "still")),
            frozenset({"a", "b", "c"}), 0, 7, -13, 2.5, None, True,
        ]
        assert [part.partition(k) for k in keys] == _probe_with_seed("99")

    def test_numeric_cross_type_consistency(self):
        # 2 == 2.0 == True+1, so they must land in the same partition or
        # grouping by key would split equal keys.
        part = HashPartitioner(8)
        assert part.partition(2) == part.partition(2.0)
        assert part.partition(1) == part.partition(True)

    def test_tuple_recursion_stable(self):
        assert stable_hash(("a", ("b", 1))) == stable_hash(("a", ("b", 1)))
        assert stable_hash(("a", "b")) != stable_hash(("b", "a"))

    def test_frozenset_order_independent(self):
        assert stable_hash(frozenset(["x", "y", "z"])) == stable_hash(
            frozenset(["z", "x", "y"])
        )

    def test_distribution_not_degenerate(self):
        part = HashPartitioner(8)
        assigned = {part.partition(f"key-{i}") for i in range(200)}
        assert len(assigned) == 8
