"""LRU block store."""

import numpy as np
import pytest

from repro.engine.blockstore import BlockStore


class TestBlockStore:
    def test_put_get(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1, 2, 3])
        assert store.get((0, 0)) == [1, 2, 3]

    def test_miss_returns_none(self):
        store = BlockStore(1 << 20)
        assert store.get((9, 9)) is None

    def test_hit_miss_counters(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1])
        store.get((0, 0))
        store.get((1, 1))
        assert store.hits == 1
        assert store.misses == 1

    def test_lru_eviction_order(self):
        store = BlockStore(4096)
        big = list(range(100))
        store.put((0, 0), big)
        store.put((0, 1), big)
        store.get((0, 0))  # touch 0 so 1 is LRU
        store.put((0, 2), big)  # must evict something
        if store.evictions:
            assert store.get((0, 0)) is not None or store.get((0, 2)) is not None

    def test_oversized_block_still_stored(self):
        store = BlockStore(64)
        store.put((0, 0), list(range(1000)))
        assert store.get((0, 0)) is not None

    def test_numpy_size_estimation(self):
        store = BlockStore(1 << 30)
        store.put((0, 0), [np.zeros(1000)])
        assert store.used_bytes >= 8000

    def test_drop_rdd(self):
        store = BlockStore(1 << 20)
        store.put((1, 0), [1])
        store.put((1, 1), [2])
        store.put((2, 0), [3])
        assert store.drop_rdd(1) == 2
        assert store.get((1, 0)) is None
        assert store.get((2, 0)) == [3]

    def test_drop_rdd_counts_evictions_and_posts_events(self):
        from repro.engine.listener import CacheEvict, EventBus, RecordingListener

        bus = EventBus()
        rec = bus.register(RecordingListener())
        store = BlockStore(1 << 20, bus=bus)
        store.put((1, 0), [1])
        store.put((1, 1), [2])
        store.put((2, 0), [3])
        assert store.evictions == 0
        assert store.drop_rdd(1) == 2
        assert store.evictions == 2
        evicts = rec.of_type(CacheEvict)
        assert {(e.rdd_id, e.partition) for e in evicts} == {(1, 0), (1, 1)}
        assert all(e.size_bytes > 0 for e in evicts)
        # the untouched RDD stays cached and uncounted
        assert store.drop_rdd(3) == 0
        assert store.evictions == 2

    def test_replace_same_key(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1])
        store.put((0, 0), [2, 3])
        assert store.get((0, 0)) == [2, 3]
        assert len(store) == 1

    def test_clear(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1])
        store.clear()
        assert len(store) == 0
        assert store.used_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BlockStore(0)
