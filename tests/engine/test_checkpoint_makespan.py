"""RDD.checkpoint and the simulated-makespan projection."""

import pytest

from repro.engine import Context
from repro.engine.metrics import (
    StageMetrics,
    TaskMetrics,
    simulated_makespan,
    simulated_stage_time,
)


class TestCheckpoint:
    def test_same_contents(self, ctx):
        rdd = ctx.range(20, num_partitions=4).map(lambda x: x * 3)
        ck = rdd.checkpoint()
        assert ck.collect() == rdd.collect()
        assert ck.num_partitions == 4

    def test_no_lineage(self, ctx):
        ck = ctx.range(10, num_partitions=2).map(lambda x: x).checkpoint()
        assert ck.dependencies == []
        assert "CheckpointedRDD" in ck.debug_string()

    def test_truncates_recomputation(self):
        with Context(mode="serial") as ctx:
            acc = ctx.accumulator(0)

            def tap(x):
                acc.add(1)
                return x

            ck = ctx.range(5, num_partitions=1).map(tap).checkpoint()
            assert acc.value == 5  # materialized once at checkpoint time
            ck.count()
            ck.sum()
            assert acc.value == 5  # never recomputed

    def test_empty_rdd(self, ctx):
        ck = ctx.parallelize([], 1).checkpoint()
        assert ck.collect() == []

    def test_downstream_transforms_work(self, ctx):
        ck = ctx.range(6, num_partitions=2).checkpoint()
        assert dict(
            ck.map(lambda x: (x % 2, x)).reduce_by_key(lambda a, b: a + b).collect()
        ) == {0: 6, 1: 9}


class TestSimulatedMakespan:
    def test_single_worker_is_sum(self):
        assert simulated_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert simulated_makespan([1.0, 1.0, 1.0, 1.0], 2) == pytest.approx(2.0)

    def test_lpt_beats_naive_order(self):
        # LPT puts the big task alone: makespan 3, not 4.
        times = [3.0, 1.0, 1.0, 1.0]
        assert simulated_makespan(times, 2) == pytest.approx(3.0)

    def test_more_workers_never_slower(self):
        times = [0.5, 0.9, 1.3, 0.2, 0.7, 1.1]
        spans = [simulated_makespan(times, w) for w in (1, 2, 4, 8)]
        assert all(a >= b - 1e-12 for a, b in zip(spans, spans[1:]))

    def test_bounded_below_by_max_task(self):
        times = [5.0, 0.1, 0.1]
        assert simulated_makespan(times, 16) == pytest.approx(5.0)

    def test_overhead_charged_per_task(self):
        base = simulated_makespan([1.0, 1.0], 2)
        with_oh = simulated_makespan([1.0, 1.0], 2, per_task_overhead_s=0.5)
        assert with_oh == pytest.approx(base + 0.5)

    def test_empty_tasks(self):
        assert simulated_makespan([], 4) == 0.0

    def test_empty_tasks_single_worker(self):
        assert simulated_makespan([], 1) == 0.0

    def test_zero_duration_tasks(self):
        assert simulated_makespan([0.0, 0.0, 0.0], 2) == 0.0

    def test_zero_duration_tasks_still_pay_overhead(self):
        # Three zero-second tasks on two workers: LPT loads one slot
        # with two dispatches.
        assert simulated_makespan(
            [0.0, 0.0, 0.0], 2, per_task_overhead_s=0.1
        ) == pytest.approx(0.2)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], 0)

    def test_negative_workers(self):
        with pytest.raises(ValueError):
            simulated_makespan([1.0], -3)

    def test_stage_time_wrapper(self):
        sm = StageMetrics(0, "result", num_tasks=2)
        sm.tasks = [TaskMetrics(0, 0, 1.0), TaskMetrics(0, 1, 3.0)]
        assert simulated_stage_time(sm, 2) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            simulated_stage_time(sm, 0)


class TestStageSkew:
    def test_empty_stage_is_balanced(self):
        assert StageMetrics(0, "result").skew == 1.0

    def test_zero_duration_tasks_are_balanced(self):
        sm = StageMetrics(0, "result", num_tasks=2)
        sm.tasks = [TaskMetrics(0, 0, 0.0), TaskMetrics(0, 1, 0.0)]
        assert sm.skew == 1.0

    def test_single_task_is_balanced(self):
        sm = StageMetrics(0, "result", num_tasks=1)
        sm.tasks = [TaskMetrics(0, 0, 2.5)]
        assert sm.skew == pytest.approx(1.0)

    def test_straggler_raises_skew(self):
        sm = StageMetrics(0, "result", num_tasks=4)
        sm.tasks = [TaskMetrics(0, p, 1.0) for p in range(3)] + [TaskMetrics(0, 3, 5.0)]
        assert sm.skew == pytest.approx(5.0 / 2.0)
