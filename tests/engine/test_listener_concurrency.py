"""Bus/listener behaviour under concurrent posting (thread-mode reality).

Thread-mode executors post task events from pool threads while the
driver thread posts stage/job events, so the bus contract — every
registered listener sees every event exactly once, listener exceptions
are swallowed and counted, the flight recorder neither drops nor
corrupts records — must hold under real contention, not just in
single-threaded unit tests.
"""

import threading

from repro.engine import EventBus, RecordingListener
from repro.engine.listener import EngineListener, TaskEnd
from repro.obs.flight import FlightRecorder

N_THREADS = 8
N_POSTS = 500


def _hammer(bus: EventBus) -> None:
    """Post N_POSTS events per thread, payload-tagged by poster."""
    barrier = threading.Barrier(N_THREADS)

    def worker(tid: int) -> None:
        barrier.wait()  # maximize overlap
        for i in range(N_POSTS):
            bus.post(TaskEnd(stage_id=tid, partition=i, wall_s=0.0, attempts=1))

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_recording_listener_sees_every_event_uncorrupted():
    bus = EventBus()
    rec = bus.register(RecordingListener())
    _hammer(bus)

    events = rec.events
    assert len(events) == N_THREADS * N_POSTS
    assert bus.dropped_errors == 0
    # No interleaving corruption: each poster's full sequence arrived.
    by_poster = {}
    for e in events:
        by_poster.setdefault(e.stage_id, []).append(e.partition)
    assert set(by_poster) == set(range(N_THREADS))
    for parts in by_poster.values():
        assert sorted(parts) == list(range(N_POSTS))


def test_flight_recorder_counts_exact_under_contention():
    bus = EventBus()
    recorder = bus.register(FlightRecorder(capacity=N_THREADS * N_POSTS))
    _hammer(bus)

    snap = recorder.snapshot()
    assert snap["total_seen"] == N_THREADS * N_POSTS
    assert snap["recorded"] == N_THREADS * N_POSTS
    assert snap["dropped"] == 0
    # Sequence numbers are unique and gap-free.
    seqs = [d["seq"] for d in recorder.events()]
    assert sorted(seqs) == list(range(N_THREADS * N_POSTS))


class _FailEveryOther(EngineListener):
    def __init__(self) -> None:
        self.seen = 0

    def on_event(self, event) -> None:
        self.seen += 1
        if self.seen % 2 == 0:
            raise RuntimeError("listener bug")


def test_raising_listener_counted_and_healthy_listener_unaffected():
    bus = EventBus()
    flaky = bus.register(_FailEveryOther())
    rec = bus.register(RecordingListener())
    _hammer(bus)

    total = N_THREADS * N_POSTS
    assert len(rec.events) == total, "healthy listener missed events"
    assert flaky.seen == total, "raising listener must still see everything"
    assert bus.dropped_errors == total // 2
    assert isinstance(bus.last_error, RuntimeError)


def test_concurrent_read_while_writing_never_raises():
    """FlightRecorder readers retry on deque mutation instead of failing."""
    bus = EventBus()
    recorder = bus.register(FlightRecorder(capacity=256))
    stop = threading.Event()
    errors = []

    def reader() -> None:
        while not stop.is_set():
            try:
                recorder.events(limit=32)
                recorder.slow()
                recorder.snapshot()
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)
                return

    t = threading.Thread(target=reader)
    t.start()
    try:
        _hammer(bus)
    finally:
        stop.set()
        t.join()
    assert errors == []
    assert recorder.snapshot()["total_seen"] == N_THREADS * N_POSTS
