"""The same workload across all three executor backends."""

import numpy as np
import pytest

from repro.engine import Context


@pytest.fixture(scope="module", params=["serial", "threads", "processes"])
def mode_ctx(request):
    with Context(mode=request.param, parallelism=2) as c:
        yield c


class TestModeParity:
    def test_map_reduce(self, mode_ctx):
        assert mode_ctx.range(100, num_partitions=4).map(lambda x: x * 3).sum() == 14850

    def test_shuffle(self, mode_ctx):
        pairs = mode_ctx.parallelize([(i % 4, i) for i in range(40)], 4)
        out = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        expected = {k: sum(i for i in range(40) if i % 4 == k) for k in range(4)}
        assert out == expected

    def test_broadcast(self, mode_ctx):
        bc = mode_ctx.broadcast(np.arange(10))
        out = mode_ctx.range(10, num_partitions=2).map(lambda i: int(bc.value[i])).collect()
        assert out == list(range(10))

    def test_accumulator(self, mode_ctx):
        acc = mode_ctx.accumulator(0)
        mode_ctx.range(20, num_partitions=4).foreach(lambda x: acc.add(1))
        assert acc.value == 20

    def test_custom_op_accumulator(self, mode_ctx):
        # Regression: the op must travel to process workers — a stub
        # falling back to + would turn max into a sum.
        acc = mode_ctx.accumulator(0, op=max, name="maximum")
        mode_ctx.parallelize([3, 9, 1, 7], 4).foreach(lambda x: acc.add(x))
        assert acc.value == 9

    def test_mutable_zero_accumulator(self, mode_ctx):
        acc = mode_ctx.accumulator([], op=lambda a, b: a + b)
        mode_ctx.parallelize([1, 2, 3], 3).foreach(lambda x: acc.add([x]))
        assert sorted(acc.value) == [1, 2, 3]

    def test_numpy_records(self, mode_ctx):
        arrays = mode_ctx.parallelize([np.arange(5), np.arange(5, 10)], 2)
        assert arrays.map(lambda a: float(a.sum())).sum() == 45.0

    def test_join(self, mode_ctx):
        left = mode_ctx.parallelize([(1, "a"), (2, "b")], 2)
        right = mode_ctx.parallelize([(2, "x")], 1)
        assert dict(left.join(right).collect()) == {2: ("b", "x")}

    def test_sort(self, mode_ctx):
        data = [7, 2, 9, 4, 1]
        assert mode_ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_tree_aggregate(self, mode_ctx):
        out = mode_ctx.range(256, num_partitions=8).tree_aggregate(
            0, lambda a, x: a + x, lambda a, b: a + b, depth=2
        )
        assert out == 32640

    def test_closures_capture_locals(self, mode_ctx):
        factor = 7
        offset = 3
        out = mode_ctx.range(5, num_partitions=2).map(lambda x: x * factor + offset).collect()
        assert out == [3, 10, 17, 24, 31]

    def test_nested_function_closure(self, mode_ctx):
        def make_adder(n):
            def add(x):
                return x + n

            return add

        out = mode_ctx.range(4, num_partitions=2).map(make_adder(100)).collect()
        assert out == [100, 101, 102, 103]


class TestProcessModeSpecifics:
    def test_exception_propagates(self, process_ctx):
        from repro.engine.errors import TaskFailedError

        def boom(x):
            raise ValueError("worker-side failure")

        with pytest.raises(TaskFailedError):
            process_ctx.range(4, num_partitions=2).map(boom).collect()

    def test_worker_isolation_no_driver_mutation(self, process_ctx):
        # Mutations to a driver list inside tasks stay in the worker fork.
        shared = []
        process_ctx.range(4, num_partitions=2).map(lambda x: shared.append(x)).collect()
        assert shared == []

    def test_shuffle_via_payload(self, process_ctx):
        pairs = process_ctx.parallelize([(i % 3, 1) for i in range(12)], 3)
        out = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 4, 1: 4, 2: 4}

    def test_chained_shuffles(self, process_ctx):
        out = (
            process_ctx.parallelize([(i % 3, i) for i in range(12)], 3)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[0] % 2, kv[1]))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert dict(out) == {0: 18 + 26, 1: 22}
