"""Zero-copy (out-of-band) pickling of NumPy payloads.

``serialize_oob`` must ship large arrays as pickle-5 out-of-band buffers
— the metadata stream stays small and the buffers carry the bytes — and
``deserialize_oob`` must hand back *writable* arrays so downstream code
(worker caches, kernels that copy-on-write) behaves exactly as if the
object had never crossed a process boundary.
"""

import numpy as np

from repro.engine.closure import deserialize_oob, serialize_oob
from repro.engine.executor import TaskResult
from repro.lattice.partition import LatticeBlock


class TestSerializeOob:
    def test_large_array_goes_out_of_band(self):
        arr = np.arange(1 << 16, dtype=np.float64)  # 512 KB
        data, buffers = serialize_oob(arr)
        assert len(buffers) >= 1
        assert sum(len(b) for b in buffers) >= arr.nbytes
        # The in-band stream holds metadata only, not the array body.
        assert len(data) < arr.nbytes // 10

    def test_round_trip_equality(self):
        arr = np.linspace(0.0, 1.0, 10_000)
        out = deserialize_oob(*serialize_oob({"x": arr, "n": 7}))
        assert out["n"] == 7
        np.testing.assert_array_equal(out["x"], arr)

    def test_reconstructed_array_is_writable(self):
        arr = np.zeros(4096)
        out = deserialize_oob(*serialize_oob(arr))
        out[0] = 1.0  # must not raise "read-only" — buffers are bytearrays
        assert out[0] == 1.0

    def test_lattice_block_round_trip(self):
        block = LatticeBlock(
            n_items=3,
            masks=np.array([0, 1, 3, 7], dtype=np.uint64),
            log_probs=np.log(np.array([0.1, 0.2, 0.3, 0.4])),
        )
        data, buffers = serialize_oob(block)
        assert buffers  # both arrays shipped out-of-band
        out = deserialize_oob(data, buffers)
        np.testing.assert_array_equal(out.masks, block.masks)
        np.testing.assert_allclose(out.log_probs, block.log_probs)

    def test_task_result_with_cache_events(self):
        res = TaskResult(
            partition=3,
            value=[np.ones(128)],
            cache_events=[("hit", 5, 0, 0), ("evict", 5, 1, 1024)],
        )
        out = deserialize_oob(*serialize_oob(res))
        assert out.partition == 3
        assert out.cache_events == [("hit", 5, 0, 0), ("evict", 5, 1, 1024)]
        np.testing.assert_array_equal(out.value[0], np.ones(128))

    def test_small_objects_need_no_buffers(self):
        data, buffers = serialize_oob({"a": 1, "b": "two"})
        assert buffers == []
        assert deserialize_oob(data, buffers) == {"a": 1, "b": "two"}
