"""Listener bus: event stream contract across all executor modes.

The acceptance sequence for a shuffle job is::

    job_start
      stage_start (shuffle-map)
        task_start/task_end per map partition   [+ task_retry on failures]
        shuffle_write per map partition
      stage_end
      stage_start (result)
        task_start/task_end per result partition
        shuffle_fetch per reduce read           [serial/threads only]
      stage_end
    job_end

Task-level events interleave freely inside their stage (thread mode runs
them concurrently); the stage/job skeleton is strictly ordered.
"""

import os

import pytest

from repro.engine import Context, EngineConfig, RecordingListener
from repro.engine.listener import (
    CacheEvict,
    CacheHit,
    CacheMiss,
    EngineListener,
    EventBus,
    JobEnd,
    JobStart,
    ShuffleFetch,
    ShuffleWrite,
    StageEnd,
    StageStart,
    TaskEnd,
    TaskRetry,
    TaskStart,
)

MODES = ["serial", "threads", "processes"]


# ---------------------------------------------------------------------------
# EventBus unit behaviour


class _Boom(EngineListener):
    def on_event(self, event):
        raise RuntimeError("listener bug")


class TestEventBus:
    def test_falsy_until_listener_registered(self):
        bus = EventBus()
        assert not bus
        listener = bus.register(RecordingListener())
        assert bus
        bus.unregister(listener)
        assert not bus

    def test_disabled_bus_stays_falsy_and_silent(self):
        bus = EventBus(enabled=False)
        rec = bus.register(RecordingListener())
        assert not bus
        bus.post(JobStart(job_id=0))
        assert rec.events == []

    def test_duplicate_register_delivers_once(self):
        bus = EventBus()
        rec = RecordingListener()
        bus.register(rec)
        bus.register(rec)
        assert len(bus) == 1
        bus.post(JobStart(job_id=1))
        assert len(rec.events) == 1

    def test_unregister_absent_listener_is_noop(self):
        EventBus().unregister(RecordingListener())

    def test_listener_exception_swallowed_and_counted(self):
        bus = EventBus()
        bus.register(_Boom())
        rec = bus.register(RecordingListener())
        bus.post(JobStart(job_id=2))
        bus.post(JobEnd(job_id=2, wall_s=0.0))
        assert bus.dropped_errors == 2
        assert isinstance(bus.last_error, RuntimeError)
        # The healthy listener still saw everything.
        assert rec.kinds() == ["job_start", "job_end"]

    def test_event_kind_and_to_dict(self):
        e = TaskEnd(stage_id=3, partition=1, wall_s=0.5, attempts=2)
        assert e.kind == "task_end"
        d = e.to_dict()
        assert d["kind"] == "task_end"
        assert d["stage_id"] == 3 and d["attempts"] == 2
        assert "time" in d


# ---------------------------------------------------------------------------
# Full-sequence acceptance across executor modes


def _stage_bounds(rec, stage_kind):
    """(start_index, end_index) of the stage with the given kind."""
    events = rec.events
    start = next(
        i
        for i, e in enumerate(events)
        if isinstance(e, StageStart) and e.stage_kind == stage_kind
    )
    end = next(
        i
        for i, e in enumerate(events)
        if isinstance(e, StageEnd) and e.stage_kind == stage_kind
    )
    return start, end


@pytest.mark.parametrize("mode", MODES)
class TestShuffleJobSequence:
    def test_full_event_sequence(self, mode):
        with Context(mode=mode, parallelism=2, shuffle_partitions=2) as ctx:
            rec = ctx.add_listener(RecordingListener())
            pairs = ctx.range(20, num_partitions=2).map(lambda x: (x % 4, 1))
            out = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
            assert out == {k: 5 for k in range(4)}

            kinds = rec.kinds()
            assert kinds[0] == "job_start"
            assert kinds[-1] == "job_end"
            (job_end,) = rec.of_type(JobEnd)
            assert job_end.succeeded
            assert job_end.wall_s > 0

            # Strict stage/job skeleton: map stage fully precedes result.
            skeleton = [k for k in kinds if k in ("job_start", "job_end",
                                                  "stage_start", "stage_end")]
            assert skeleton == [
                "job_start",
                "stage_start", "stage_end",   # shuffle-map
                "stage_start", "stage_end",   # result
                "job_end",
            ]
            map_stage, result_stage = rec.of_type(StageStart)
            assert map_stage.stage_kind == "shuffle-map"
            assert map_stage.num_tasks == 2
            assert result_stage.stage_kind == "result"
            assert result_stage.num_tasks == 2
            assert map_stage.job_id == result_stage.job_id == job_end.job_id

            # Map-stage tasks live between the map-stage boundaries;
            # result-stage tasks between the result-stage boundaries.
            events = rec.events
            m0, m1 = _stage_bounds(rec, "shuffle-map")
            r0, r1 = _stage_bounds(rec, "result")
            assert m0 < m1 < r0 < r1
            map_sid = map_stage.stage_id
            res_sid = result_stage.stage_id
            for i, e in enumerate(events):
                if isinstance(e, (TaskStart, TaskEnd, TaskRetry)):
                    if e.stage_id == map_sid:
                        assert m0 < i < m1
                    else:
                        assert e.stage_id == res_sid
                        assert r0 < i < r1

            # One start/end pair per partition per stage, no retries.
            for sid in (map_sid, res_sid):
                starts = [e for e in rec.of_type(TaskStart) if e.stage_id == sid]
                ends = [e for e in rec.of_type(TaskEnd) if e.stage_id == sid]
                assert sorted(e.partition for e in starts) == [0, 1]
                assert sorted(e.partition for e in ends) == [0, 1]
                assert all(e.attempt == 1 for e in starts)
                assert all(e.attempts == 1 for e in ends)
            assert rec.of_type(TaskRetry) == []

            # Map output registration: one write per map partition.
            writes = rec.of_type(ShuffleWrite)
            assert sorted(w.map_id for w in writes) == [0, 1]
            assert all(w.records > 0 for w in writes)
            assert len({w.shuffle_id for w in writes}) == 1

            if mode != "processes":
                # Reduce reads go through the driver-resident manager;
                # in process mode buckets ride inside the task payload,
                # so no driver-side fetch events exist.
                fetches = rec.of_type(ShuffleFetch)
                assert sorted(f.reduce_id for f in fetches) == [0, 1]

    def test_retry_events_on_flaky_task(self, mode, tmp_path):
        with Context(mode=mode, parallelism=2, max_task_retries=2) as ctx:
            rec = ctx.add_listener(RecordingListener())
            marker = str(tmp_path / "m")

            def flaky(i, it):
                # File-counted attempts: survives the fork boundary.
                path = f"{marker}.p{i}"
                calls = 1
                if os.path.exists(path):
                    with open(path) as fh:
                        calls = int(fh.read()) + 1
                with open(path, "w") as fh:
                    fh.write(str(calls))
                if i == 1 and calls < 2:
                    raise RuntimeError("flaky partition")
                return list(it)

            out = ctx.range(8, num_partitions=2).map_partitions_with_index(flaky).collect()
            assert out == list(range(8))

            kinds = rec.kinds()
            assert kinds[0] == "job_start" and kinds[-1] == "job_end"
            assert rec.of_type(JobEnd)[0].succeeded

            (retry,) = rec.of_type(TaskRetry)
            assert retry.partition == 1
            assert retry.attempt == 1
            assert "flaky partition" in retry.error

            # Partition 1: started twice, ended once with attempts == 2.
            starts_p1 = [e for e in rec.of_type(TaskStart) if e.partition == 1]
            assert [e.attempt for e in starts_p1] == [1, 2]
            (end_p1,) = [e for e in rec.of_type(TaskEnd) if e.partition == 1]
            assert end_p1.attempts == 2
            # Partition 0 was clean.
            (end_p0,) = [e for e in rec.of_type(TaskEnd) if e.partition == 0]
            assert end_p0.attempts == 1

            # The retry sits between its task_start pair in the stream.
            events = rec.events
            i_retry = events.index(retry)
            i_start2 = events.index(starts_p1[1])
            assert events.index(starts_p1[0]) < i_retry < i_start2 < events.index(end_p1)


# ---------------------------------------------------------------------------
# Cache events


class TestCacheEvents:
    def test_miss_then_hit(self):
        with Context(mode="serial") as ctx:
            rec = ctx.add_listener(RecordingListener())
            cached = ctx.range(100, num_partitions=2).map(lambda x: x * x).cache()
            cached.count()
            misses = rec.of_type(CacheMiss)
            assert sorted(m.partition for m in misses) == [0, 1]
            assert rec.of_type(CacheHit) == []

            rec.clear()
            cached.count()
            hits = rec.of_type(CacheHit)
            assert sorted(h.partition for h in hits) == [0, 1]
            assert rec.of_type(CacheMiss) == []

    def test_eviction_under_pressure(self):
        cfg = EngineConfig(mode="serial", cache_capacity_bytes=4096)
        with Context(config=cfg) as ctx:
            rec = ctx.add_listener(RecordingListener())
            big = ctx.parallelize([bytes(2048)] * 8, 8).cache()
            big.count()
            evictions = rec.of_type(CacheEvict)
            assert evictions, "LRU pressure should have evicted partitions"
            assert all(e.size_bytes > 0 for e in evictions)


# ---------------------------------------------------------------------------
# Context integration


class TestContextIntegration:
    def test_enable_events_false_silences_registered_listener(self):
        cfg = EngineConfig(mode="serial", enable_events=False)
        with Context(config=cfg) as ctx:
            rec = ctx.add_listener(RecordingListener())
            assert ctx.range(10, num_partitions=2).sum() == 45
            assert rec.events == []

    def test_remove_listener_stops_delivery(self):
        with Context(mode="serial") as ctx:
            rec = ctx.add_listener(RecordingListener())
            ctx.range(4, num_partitions=1).count()
            seen = len(rec.events)
            assert seen > 0
            ctx.remove_listener(rec)
            ctx.range(4, num_partitions=1).count()
            assert len(rec.events) == seen

    def test_broken_listener_does_not_kill_job(self):
        with Context(mode="serial") as ctx:
            ctx.add_listener(_Boom())
            assert ctx.range(10, num_partitions=2).sum() == 45
            assert ctx.event_bus.dropped_errors > 0
