"""Per-task resource telemetry: CPU time, peak-RSS delta, GC counts.

Every executor mode must produce the same summary vocabulary — serial,
threads and processes all stamp ``cpu_s`` / ``rss_peak_kb`` /
``gc_collections`` on task results, the scheduler rolls them into
stage/job metrics, and ``TaskEnd`` events carry them on the bus.
"""

import time

import pytest

from repro.engine import Context
from repro.engine.listener import EngineListener, TaskEnd

SUMMARY_KEYS = {
    "wall_s",
    "stages",
    "tasks",
    "task_time_s",
    "overhead_s",
    "cpu_s",
    "rss_peak_kb",
    "gc_collections",
}


def _burn(x):
    t0 = time.perf_counter()
    acc = 0
    while time.perf_counter() - t0 < 0.02:
        acc += 1
    return x + (acc and 0)


class _TaskEndCollector(EngineListener):
    def __init__(self):
        self.events = []

    def on_task_end(self, event: TaskEnd) -> None:
        self.events.append(event)


class TestSummaryKeysAcrossModes:
    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_summary_vocabulary_is_identical(self, mode):
        with Context(mode=mode, parallelism=2) as ctx:
            assert ctx.parallelize(range(8), 4).map(_burn).count() == 8
            summary = ctx.metrics.last().summary()
        assert set(summary) == SUMMARY_KEYS
        assert summary["tasks"] == 4.0
        assert summary["cpu_s"] >= 0.0
        assert summary["rss_peak_kb"] >= 0.0
        assert summary["gc_collections"] >= 0.0

    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_busy_tasks_accumulate_cpu(self, mode):
        with Context(mode=mode, parallelism=2) as ctx:
            ctx.parallelize(range(8), 4).map(_burn).count()
            summary = ctx.metrics.last().summary()
        # Four 20ms spin tasks: well over 10ms of CPU in any mode.
        assert summary["cpu_s"] > 0.01


class TestTaskEndCarriesTelemetry:
    @pytest.mark.parametrize("mode", ["serial", "threads", "processes"])
    def test_task_end_fields(self, mode):
        collector = _TaskEndCollector()
        with Context(mode=mode, parallelism=2) as ctx:
            ctx.add_listener(collector)
            ctx.parallelize(range(8), 4).map(_burn).count()
        assert len(collector.events) == 4
        for event in collector.events:
            assert event.cpu_s >= 0.0
            assert event.rss_peak_kb >= 0
            assert event.gc_collections >= 0
        assert sum(e.cpu_s for e in collector.events) > 0.01

    def test_task_end_backward_compatible_positional(self):
        # Telemetry fields appended after `worker`: old positional
        # construction still works and defaults to zero.
        event = TaskEnd(1, 2, 0.5, 1)
        assert event.cpu_s == 0.0
        assert event.rss_peak_kb == 0
        assert event.gc_collections == 0


class TestStageRollups:
    def test_stage_aggregates(self):
        with Context(mode="serial") as ctx:
            ctx.parallelize(range(8), 4).map(_burn).count()
            job = ctx.metrics.last()
        stage = job.stages[-1]
        assert stage.cpu_time_s == pytest.approx(sum(t.cpu_s for t in stage.tasks))
        assert stage.rss_peak_kb == max(t.rss_peak_kb for t in stage.tasks)
        assert stage.gc_collections == sum(t.gc_collections for t in stage.tasks)

    def test_gc_collections_counted_when_forced(self):
        import gc

        def churn(x):
            # Enough garbage to force at least one gen-0 collection.
            for _ in range(50):
                gc.collect(0)
            return x

        with Context(mode="serial") as ctx:
            ctx.parallelize(range(2), 1).map(churn).count()
            summary = ctx.metrics.last().summary()
        assert summary["gc_collections"] >= 1


class TestJobStamps:
    def test_wall_clock_and_trace_stamps(self):
        from repro.engine.tracing import trace_scope

        before = time.time()
        with Context(mode="serial") as ctx:
            with trace_scope(name="stamped") as tc:
                ctx.parallelize(range(4), 2).sum()
            job = ctx.metrics.last()
        assert job.trace_id == tc.trace_id
        assert before - 1.0 <= job.t0_wall <= job.t1_wall <= time.time() + 1.0
        assert job.succeeded

    def test_dump_jsonl_carries_stamps(self, tmp_path):
        import json

        with Context(mode="serial") as ctx:
            ctx.parallelize(range(4), 2).sum()
            path = tmp_path / "jobs.jsonl"
            assert ctx.metrics.dump_jsonl(path) == 1
        record = json.loads(path.read_text().splitlines()[0])
        assert {"t0_wall", "t1_wall", "trace_id"} <= set(record)
        assert record["t1_wall"] >= record["t0_wall"] > 0

    def test_failed_job_recorded_as_failed(self):
        with Context(mode="serial") as ctx:
            with pytest.raises(Exception):
                ctx.parallelize(range(4), 2).map(lambda x: 1 // 0).count()
            job = ctx.metrics.last()
        assert not job.succeeded


class TestHubPublication:
    def test_registry_publishes_to_context_hub(self):
        with Context(mode="serial") as ctx:
            ctx.parallelize(range(8), 4).map(_burn).count()
            hub = ctx.metrics_hub
            assert hub.get("repro_engine_jobs_total").labels(status="ok").value == 1
            assert hub.get("repro_engine_tasks_total").value == 4
            assert hub.get("repro_engine_task_cpu_seconds_total").value > 0.0
            assert hub.get("repro_engine_job_seconds").labels().count == 1

    def test_failed_job_counted_by_status(self):
        with Context(mode="serial") as ctx:
            with pytest.raises(Exception):
                ctx.parallelize(range(2), 1).map(lambda x: 1 // 0).count()
            fam = ctx.metrics_hub.get("repro_engine_jobs_total")
            assert fam.labels(status="failed").value == 1


class TestWorkerProfileRelay:
    def test_process_workers_relay_samples(self):
        from repro.obs.sampler import Sampler

        sampler = Sampler(hz=500).start().install()
        try:
            with Context(mode="processes", parallelism=2) as ctx:
                ctx.parallelize(range(8), 4).map(_burn).count()
        finally:
            sampler.stop()
            sampler.uninstall()
        folded = sampler.folded()
        assert sum(folded.values()) > 0
        assert any("_burn" in stack for stack in folded)
