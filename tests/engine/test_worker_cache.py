"""Worker-resident block cache and the cache-generation protocol.

Serial and thread tasks hit the driver's block store directly; process
tasks hit a store resident in each forked worker, with cache events
relayed back through the task result.  The accounting must look the same
from the driver's bus either way, and a generation bump (``unpersist``)
must invalidate worker entries the driver cannot reach.
"""

import pytest

from repro.engine import Context
from repro.engine.blockstore import BlockStore
from repro.engine.listener import CacheEvict, CacheHit, CacheMiss, RecordingListener


class TestGenerationAwareStore:
    def test_put_get_same_generation(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1, 2], generation=3)
        assert store.get((0, 0), generation=3) == [1, 2]
        assert store.hits == 1

    def test_default_generation_is_zero(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1])
        assert store.get((0, 0), generation=0) == [1]

    def test_stale_generation_purges_and_misses(self):
        store = BlockStore(1 << 20)
        store.put((0, 0), [1, 2], generation=0)
        assert store.get((0, 0), generation=1) is None
        assert store.misses == 1
        assert store.evictions == 1
        assert len(store) == 0
        # A fresh put at the new generation works as usual.
        store.put((0, 0), [3], generation=1)
        assert store.get((0, 0), generation=1) == [3]

    def test_stale_purge_posts_evict_event(self):
        from repro.engine.listener import EventBus

        bus = EventBus()
        rec = bus.register(RecordingListener())
        store = BlockStore(1 << 20, bus=bus)
        store.put((7, 0), [1], generation=0)
        store.get((7, 0), generation=2)
        evicts = rec.of_type(CacheEvict)
        assert [(e.rdd_id, e.partition) for e in evicts] == [(7, 0)]
        assert rec.of_type(CacheMiss)


def _cache_counts(rec: RecordingListener, rdd_id: int):
    hits = sum(1 for e in rec.of_type(CacheHit) if e.rdd_id == rdd_id)
    misses = sum(1 for e in rec.of_type(CacheMiss) if e.rdd_id == rdd_id)
    evicts = sum(1 for e in rec.of_type(CacheEvict) if e.rdd_id == rdd_id)
    return hits, misses, evicts


@pytest.fixture(params=["serial", "threads", "processes"])
def cache_ctx(request):
    # parallelism=1 keeps process mode deterministic: one worker serves
    # every task, so its resident cache sees every repeated partition.
    with Context(mode=request.param, parallelism=1) as c:
        yield c


class TestCacheAccountingAcrossModes:
    def test_miss_then_hit(self, cache_ctx):
        rec = cache_ctx.add_listener(RecordingListener())
        try:
            rdd = cache_ctx.parallelize(list(range(8)), 1).map(lambda x: x * 2).cache()
            rdd.count()
            hits, misses, _ = _cache_counts(rec, rdd.id)
            assert misses == 1 and hits == 0
            rec.clear()
            rdd.count()
            rdd.count()
            hits, misses, _ = _cache_counts(rec, rdd.id)
            assert hits == 2 and misses == 0
        finally:
            cache_ctx.remove_listener(rec)

    def test_generation_bump_invalidates(self, cache_ctx):
        rec = cache_ctx.add_listener(RecordingListener())
        try:
            rdd = cache_ctx.parallelize(list(range(4)), 1).map(lambda x: x + 1).cache()
            rdd.count()
            rdd.count()
            rec.clear()
            rdd.unpersist()
            rdd.cache()
            rdd.count()
            hits, misses, _ = _cache_counts(rec, rdd.id)
            # The stale entry (wherever it lives) must not serve: the
            # re-cached access is a miss, not a hit.
            assert misses == 1 and hits == 0
            rec.clear()
            rdd.count()
            hits, misses, _ = _cache_counts(rec, rdd.id)
            assert hits == 1 and misses == 0
        finally:
            cache_ctx.remove_listener(rec)


class TestWorkerResidentCache:
    """Process-mode specifics: the cache lives in the forked worker."""

    def test_build_runs_once_per_partition_per_generation(self):
        with Context(mode="processes", parallelism=1) as ctx:
            acc = ctx.accumulator(0)

            def tap(x):
                acc.add(1)
                return x

            rdd = ctx.parallelize(list(range(6)), 1).map(tap).cache()
            rdd.count()
            assert acc.value == 6  # first action builds the partition
            rdd.count()
            rdd.collect()
            assert acc.value == 6  # served from the worker store, no rebuild
            rdd.unpersist()
            rdd.cache()
            rdd.count()
            assert acc.value == 12  # new generation: exactly one rebuild

    def test_worker_evict_relayed_to_driver_bus(self):
        # A worker store too small for two partitions must evict, and the
        # eviction must surface on the driver bus despite happening in a
        # forked process.
        import numpy as np

        from repro.engine.config import EngineConfig

        config = EngineConfig(
            mode="processes", parallelism=1, worker_cache_capacity_bytes=40_000
        )
        with Context(config=config) as ctx:
            rec = ctx.add_listener(RecordingListener())
            a = ctx.parallelize([np.zeros(4096)], 1).map(lambda x: x + 1).cache()
            b = ctx.parallelize([np.zeros(4096)], 1).map(lambda x: x + 2).cache()
            a.count()
            b.count()  # caching b (32 KB) must push a (32 KB) out
            a.count()
            _hits_a, misses_a, evicts_a = _cache_counts(rec, a.id)
            assert evicts_a >= 1
            assert misses_a == 2  # initial build + post-eviction rebuild

    def test_cached_blocks_survive_across_jobs(self):
        # The point of the worker-resident store: repeated actions against
        # a cached RDD must not re-run its lineage in process mode.
        with Context(mode="processes", parallelism=1) as ctx:
            rec = ctx.add_listener(RecordingListener())
            rdd = ctx.parallelize(list(range(10)), 1).map(lambda x: x * x).cache()
            total = rdd.sum()
            for _ in range(3):
                assert rdd.sum() == total
            hits, misses, _ = _cache_counts(rec, rdd.id)
            assert misses == 1
            assert hits == 3
