"""EngineConfig validation and metrics objects."""

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.engine.metrics import JobMetrics, MetricsRegistry, StageMetrics, TaskMetrics


class TestEngineConfig:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.mode == "threads"
        assert cfg.effective_parallelism >= 1

    def test_explicit_parallelism(self):
        assert EngineConfig(parallelism=3).effective_parallelism == 3

    def test_shuffle_partitions_mirror_parallelism(self):
        cfg = EngineConfig(parallelism=5)
        assert cfg.effective_shuffle_partitions == 5
        assert EngineConfig(parallelism=5, shuffle_partitions=2).effective_shuffle_partitions == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"parallelism": -1},
            {"shuffle_partitions": -2},
            {"max_task_retries": -1},
            {"cache_capacity_bytes": 0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_with_replaces_fields(self):
        cfg = EngineConfig(parallelism=2).with_(mode="serial")
        assert cfg.mode == "serial"
        assert cfg.parallelism == 2

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.mode = "serial"


class TestMetricsObjects:
    def test_stage_rollups(self):
        stage = StageMetrics(1, "result", num_tasks=2)
        stage.tasks = [TaskMetrics(1, 0, wall_s=1.0), TaskMetrics(1, 1, wall_s=3.0)]
        assert stage.task_time_s == 4.0
        assert stage.max_task_s == 3.0
        assert stage.skew == 1.5

    def test_stage_skew_empty(self):
        assert StageMetrics(0, "result").skew == 1.0

    def test_job_summary(self):
        job = JobMetrics(0, wall_s=2.0)
        stage = StageMetrics(1, "result", num_tasks=1, wall_s=1.5)
        stage.tasks = [TaskMetrics(1, 0, wall_s=1.4)]
        job.stages.append(stage)
        summary = job.summary()
        assert summary["tasks"] == 1.0
        assert summary["overhead_s"] == pytest.approx(0.5)

    def test_registry_bounded(self):
        reg = MetricsRegistry(keep_last=3)
        for i in range(10):
            reg.record(JobMetrics(i))
        assert len(reg.jobs) == 3
        assert reg.last().job_id == 9

    def test_registry_clear(self):
        reg = MetricsRegistry()
        reg.record(JobMetrics(0))
        reg.clear()
        assert reg.last() is None
