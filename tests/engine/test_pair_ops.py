"""Key-value (shuffle) operations."""


from repro.engine import HashPartitioner


class TestReduceByKey:
    def test_basic(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        assert dict(pairs.reduce_by_key(lambda x, y: x + y).collect()) == {"a": 4, "b": 2}

    def test_single_value_keys(self, ctx):
        pairs = ctx.parallelize([(i, i) for i in range(10)], 3)
        assert dict(pairs.reduce_by_key(lambda x, y: x + y).collect()) == {i: i for i in range(10)}

    def test_num_partitions_respected(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(30)], 4)
        out = pairs.reduce_by_key(lambda x, y: x + y, num_partitions=2)
        assert out.num_partitions == 2
        assert dict(out.collect()) == {0: 10, 1: 10, 2: 10}

    def test_large_cardinality(self, ctx):
        pairs = ctx.range(1000, num_partitions=8).map(lambda x: (x % 100, 1))
        counts = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
        assert all(counts[k] == 10 for k in range(100))


class TestCombineAggregateFold:
    def test_combine_by_key(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("a", 2), ("b", 3)], 2)
        out = pairs.combine_by_key(
            create=lambda v: [v],
            merge_value=lambda acc, v: acc + [v],
            merge_combiners=lambda a, b: a + b,
        )
        result = {k: sorted(v) for k, v in out.collect()}
        assert result == {"a": [1, 2], "b": [3]}

    def test_combine_without_map_side(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("a", 2)], 2)
        out = pairs.combine_by_key(
            lambda v: v, lambda a, v: a + v, lambda a, b: a + b, map_side_combine=False
        )
        assert dict(out.collect()) == {"a": 3}

    def test_aggregate_by_key_mutable_zero(self, ctx):
        pairs = ctx.parallelize([("x", 1), ("x", 2), ("y", 9)], 3)
        out = pairs.aggregate_by_key(
            [], lambda acc, v: acc + [v], lambda a, b: sorted(a + b)
        )
        result = {k: sorted(v) for k, v in out.collect()}
        assert result == {"x": [1, 2], "y": [9]}

    def test_aggregate_zero_not_shared_between_keys(self, ctx):
        # A buggy implementation reusing one mutable zero across keys
        # would leak values between them.
        pairs = ctx.parallelize([("a", 1), ("b", 2)], 1)
        out = dict(
            pairs.aggregate_by_key([], lambda acc, v: acc + [v], lambda a, b: a + b).collect()
        )
        assert out == {"a": [1], "b": [2]}

    def test_fold_by_key(self, ctx):
        pairs = ctx.parallelize([(1, 2), (1, 3), (2, 4)], 2)
        assert dict(pairs.fold_by_key(0, lambda a, b: a + b).collect()) == {1: 5, 2: 4}


class TestGroupByKey:
    def test_basic(self, ctx):
        pairs = ctx.parallelize([("k", i) for i in range(5)], 3)
        out = dict(pairs.group_by_key().collect())
        assert sorted(out["k"]) == [0, 1, 2, 3, 4]

    def test_multiple_keys(self, ctx):
        pairs = ctx.parallelize([(i % 2, i) for i in range(6)], 2)
        out = {k: sorted(v) for k, v in pairs.group_by_key().collect()}
        assert out == {0: [0, 2, 4], 1: [1, 3, 5]}


class TestMapValues:
    def test_map_values(self, ctx):
        pairs = ctx.parallelize([("a", 1)], 1)
        assert pairs.map_values(lambda v: v * 10).collect() == [("a", 10)]

    def test_flat_map_values(self, ctx):
        pairs = ctx.parallelize([("a", 2)], 1)
        assert pairs.flat_map_values(range).collect() == [("a", 0), ("a", 1)]

    def test_keys_values(self, ctx):
        pairs = ctx.parallelize([(1, "x"), (2, "y")], 2)
        assert pairs.keys().collect() == [1, 2]
        assert pairs.values().collect() == ["x", "y"]

    def test_map_values_preserves_partitioner(self, ctx):
        part = HashPartitioner(3)
        pairs = ctx.parallelize([(i, i) for i in range(9)], 2).partition_by(part)
        mapped = pairs.map_values(lambda v: v + 1)
        assert mapped.partitioner == part


class TestJoins:
    def test_inner_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        right = ctx.parallelize([(2, "x"), (3, "y"), (4, "z")], 2)
        out = dict(left.join(right).collect())
        assert out == {2: ("b", "x"), 3: ("c", "y")}

    def test_inner_join_cartesian_per_key(self, ctx):
        left = ctx.parallelize([(1, "a"), (1, "b")], 2)
        right = ctx.parallelize([(1, "x"), (1, "y")], 2)
        out = sorted(left.join(right).values().collect())
        assert out == [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]

    def test_left_outer_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")], 2)
        right = ctx.parallelize([(1, "x")], 1)
        out = dict(left.left_outer_join(right).collect())
        assert out == {1: ("a", "x"), 2: ("b", None)}

    def test_right_outer_join(self, ctx):
        left = ctx.parallelize([(1, "a")], 1)
        right = ctx.parallelize([(1, "x"), (5, "q")], 2)
        out = dict(left.right_outer_join(right).collect())
        assert out == {1: ("a", "x"), 5: (None, "q")}

    def test_full_outer_join(self, ctx):
        left = ctx.parallelize([(1, "a"), (2, "b")], 2)
        right = ctx.parallelize([(2, "x"), (3, "y")], 2)
        out = dict(left.full_outer_join(right).collect())
        assert out == {1: ("a", None), 2: ("b", "x"), 3: (None, "y")}

    def test_cogroup(self, ctx):
        left = ctx.parallelize([(1, "a"), (1, "b")], 2)
        right = ctx.parallelize([(1, "x"), (2, "y")], 2)
        out = dict(left.cogroup(right).collect())
        assert sorted(out[1][0]) == ["a", "b"]
        assert out[1][1] == ["x"]
        assert out[2] == ([], ["y"])


class TestPartitionBy:
    def test_partitioner_set(self, ctx):
        part = HashPartitioner(4)
        pairs = ctx.parallelize([(i, i) for i in range(16)], 2).partition_by(part)
        assert pairs.partitioner == part
        assert pairs.num_partitions == 4

    def test_no_reshuffle_when_compatible(self, ctx):
        part = HashPartitioner(3)
        pairs = ctx.parallelize([(i, i) for i in range(9)], 2).partition_by(part)
        again = pairs.partition_by(HashPartitioner(3))
        assert again is pairs

    def test_keys_land_in_hash_partition(self, ctx):
        part = HashPartitioner(4)
        pairs = ctx.parallelize([(i, i) for i in range(20)], 3).partition_by(part)
        for pid, records in enumerate(pairs.glom().collect()):
            for k, _v in records:
                assert part.partition(k) == pid

    def test_join_reuses_partitioning(self, ctx):
        # A pre-partitioned side cogroups narrowly: its partitioner is
        # adopted by the join output.
        part = HashPartitioner(3)
        left = ctx.parallelize([(i, i) for i in range(9)], 2).partition_by(part)
        right = ctx.parallelize([(i, -i) for i in range(9)], 2)
        joined = left.join(right)
        assert joined.num_partitions == 3
        assert dict(joined.collect()) == {i: (i, -i) for i in range(9)}


class TestCountLookup:
    def test_count_by_key(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("a", 2), ("b", 1)], 2)
        assert pairs.count_by_key() == {"a": 2, "b": 1}

    def test_count_by_value(self, ctx):
        assert ctx.parallelize([1, 1, 2], 2).count_by_value() == {1: 2, 2: 1}

    def test_lookup_unpartitioned(self, ctx):
        pairs = ctx.parallelize([(1, "a"), (2, "b"), (1, "c")], 3)
        assert sorted(pairs.lookup(1)) == ["a", "c"]

    def test_lookup_partitioned_targets_one_partition(self, ctx):
        pairs = ctx.parallelize([(i, str(i)) for i in range(10)], 2).partition_by(
            HashPartitioner(5)
        )
        assert pairs.lookup(7) == ["7"]

    def test_lookup_missing_key(self, ctx):
        pairs = ctx.parallelize([(1, "a")], 1)
        assert pairs.lookup(99) == []
