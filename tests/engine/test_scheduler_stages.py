"""Stage construction, shuffle reuse, caching, failure handling."""

import pytest

from repro.engine import Context
from repro.engine.dag import build_stages
from repro.engine.errors import TaskFailedError


class TestStageGraph:
    def test_narrow_only_single_stage(self, ctx):
        rdd = ctx.range(10, num_partitions=2).map(lambda x: x).filter(lambda x: True)
        final = build_stages(rdd)
        assert final.kind == "result"
        assert final.parents == []

    def test_one_shuffle_two_stages(self, ctx):
        rdd = ctx.parallelize([(1, 1)], 1).reduce_by_key(lambda a, b: a + b)
        final = build_stages(rdd)
        assert len(final.parents) == 1
        assert final.parents[0].kind == "shuffle-map"

    def test_chained_shuffles(self, ctx):
        rdd = (
            ctx.parallelize([(1, 1), (2, 2)], 2)
            .reduce_by_key(lambda a, b: a + b)
            .map(lambda kv: (kv[1], kv[0]))
            .reduce_by_key(lambda a, b: a + b)
        )
        final = build_stages(rdd)
        assert len(final.parents) == 1
        assert len(final.parents[0].parents) == 1

    def test_join_has_two_parent_stages(self, ctx):
        left = ctx.parallelize([(1, "a")], 1)
        right = ctx.parallelize([(1, "b")], 1)
        final = build_stages(left.join(right))
        # join = cogroup (2 shuffle deps) then narrow flat_map_values
        assert len(final.parents) == 2


class TestShuffleReuse:
    def test_shuffle_materialized_once(self):
        with Context(mode="serial") as ctx:
            reduced = ctx.parallelize([(i % 3, 1) for i in range(9)], 3).reduce_by_key(
                lambda a, b: a + b
            )
            first = dict(reduced.collect())
            jobs_before = len(ctx.metrics.jobs)
            second = dict(reduced.collect())
            last_job = ctx.metrics.jobs[-1]
            assert first == second == {0: 3, 1: 3, 2: 3}
            # Second collect skips the map stage: only the result stage runs.
            assert len(ctx.metrics.jobs) == jobs_before + 1
            assert len(last_job.stages) == 1

    def test_cached_rdd_not_recomputed(self):
        with Context(mode="serial") as ctx:
            acc = ctx.accumulator(0)

            def tap(x):
                acc.add(1)
                return x

            cached = ctx.range(10, num_partitions=2).map(tap).cache()
            cached.count()
            cached.sum()
            # Second action reads the cache: tap ran only once per record.
            assert acc.value == 10

    def test_unpersist_forces_recompute(self):
        with Context(mode="serial") as ctx:
            acc = ctx.accumulator(0)

            def tap(x):
                acc.add(1)
                return x

            cached = ctx.range(5, num_partitions=1).map(tap).cache()
            cached.count()
            cached.unpersist()
            cached.count()
            assert acc.value == 10


class TestFailureHandling:
    def test_deterministic_failure_aborts(self):
        with Context(mode="serial", max_task_retries=1) as ctx:

            def boom(x):
                raise RuntimeError("kaboom")

            with pytest.raises(TaskFailedError) as exc_info:
                ctx.range(4, num_partitions=2).map(boom).collect()
            assert exc_info.value.attempts == 2

    def test_flaky_task_retried_to_success(self):
        with Context(mode="serial", max_task_retries=2) as ctx:
            attempts = {"n": 0}

            def flaky_partition(i, it):
                attempts["n"] += 1
                if attempts["n"] < 2:
                    raise RuntimeError("transient")
                return list(it)

            out = ctx.range(4, num_partitions=1).map_partitions_with_index(
                flaky_partition
            ).collect()
            assert out == [0, 1, 2, 3]
            assert attempts["n"] == 2

    def test_retry_does_not_double_count_accumulators(self):
        with Context(mode="serial", max_task_retries=3) as ctx:
            acc = ctx.accumulator(0)
            attempts = {"n": 0}

            def flaky(i, it):
                for _x in it:
                    acc.add(1)
                attempts["n"] += 1
                if attempts["n"] < 3:
                    raise RuntimeError("transient")
                return [0]

            ctx.range(6, num_partitions=1).map_partitions_with_index(flaky).collect()
            # Only the successful attempt's deltas are merged.
            assert acc.value == 6


class TestContextLifecycle:
    def test_stopped_context_rejects_jobs(self):
        ctx = Context(mode="serial")
        rdd = ctx.range(4)
        ctx.stop()
        from repro.engine.errors import ContextStoppedError

        with pytest.raises(ContextStoppedError):
            rdd.collect()

    def test_stop_idempotent(self):
        ctx = Context(mode="serial")
        ctx.stop()
        ctx.stop()

    def test_context_manager(self):
        with Context(mode="serial") as ctx:
            assert ctx.range(3).count() == 3

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Context(mode="gpu")

    def test_metrics_recorded_per_job(self):
        with Context(mode="serial") as ctx:
            ctx.range(10, num_partitions=4).sum()
            job = ctx.metrics.last()
            assert job is not None
            assert job.num_tasks == 4
            assert job.wall_s > 0
