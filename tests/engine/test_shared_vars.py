"""Broadcast variables and accumulators."""

import pytest

from repro.engine.broadcast import Broadcast


class TestBroadcast:
    def test_value_visible_in_tasks(self, ctx):
        bc = ctx.broadcast([10, 20, 30])
        out = ctx.range(3, num_partitions=3).map(lambda i: bc.value[i]).collect()
        assert out == [10, 20, 30]

    def test_large_object(self, ctx):
        bc = ctx.broadcast({i: i * i for i in range(1000)})
        assert ctx.range(10, num_partitions=2).map(lambda i: bc.value[i]).sum() == 285

    def test_destroy_blocks_access(self, ctx):
        bc = ctx.broadcast("x")
        bc.destroy()
        with pytest.raises(ValueError):
            _ = bc.value

    def test_unique_ids(self):
        assert Broadcast(1).id != Broadcast(1).id

    def test_pickle_round_trip(self):
        import pickle

        bc = Broadcast({"a": 1})
        clone = pickle.loads(pickle.dumps(bc))
        assert clone.value == {"a": 1}
        assert clone.id == bc.id


class TestAccumulator:
    def test_sum_accumulator(self, ctx):
        acc = ctx.accumulator(0)
        ctx.range(100, num_partitions=8).foreach(lambda x: acc.add(1))
        assert acc.value == 100

    def test_custom_op(self, ctx):
        acc = ctx.accumulator(0, op=max, name="maximum")
        ctx.parallelize([3, 9, 1], 3).foreach(lambda x: acc.add(x))
        assert acc.value == 9

    def test_list_accumulator(self, ctx):
        acc = ctx.accumulator([], op=lambda a, b: a + b)
        ctx.parallelize([1, 2, 3], 2).foreach(lambda x: acc.add([x]))
        assert sorted(acc.value) == [1, 2, 3]

    def test_driver_side_add(self, ctx):
        acc = ctx.accumulator(10)
        acc.add(5)
        assert acc.value == 15

    def test_reset(self, ctx):
        acc = ctx.accumulator(0)
        acc.add(3)
        acc.reset()
        assert acc.value == 0

    def test_multiple_accumulators_one_job(self, ctx):
        count = ctx.accumulator(0)
        total = ctx.accumulator(0)

        def visit(x):
            count.add(1)
            total.add(x)

        ctx.range(10, num_partitions=3).foreach(visit)
        assert count.value == 10
        assert total.value == 45

    def test_updates_in_map_apply_once_per_action(self, ctx):
        # Accumulator updates inside transformations fire once per job run.
        acc = ctx.accumulator(0)

        def tap(x):
            acc.add(1)
            return x

        rdd = ctx.range(10, num_partitions=2).map(tap)
        rdd.count()
        assert acc.value == 10
