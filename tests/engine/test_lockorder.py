"""Runtime lock-order sanitizer: registry, OrderedLock, modes, hooks.

The directory-wide autouse fixture (conftest.py) puts every test here in
``raise`` mode; tests that need ``record``/``off`` switch explicitly and
rely on the fixture's teardown to restore the previous mode.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine import lockorder
from repro.engine.context import Context
from repro.engine.lockorder import (
    ADMISSION_GATE_LOCKS,
    DATA_PLANE_MAX_LEVEL,
    LOCK_LEVELS,
    MODULE_LOCK_LEVELS,
    LockOrderError,
    OrderedLock,
    UndeclaredLockError,
    lock_level,
)
from repro.engine.listener import LockOrderViolation, RecordingListener


class TestRegistry:
    def test_lock_level_resolves_class_and_module_names(self):
        assert lock_level("Context._lock") == LOCK_LEVELS[("Context", "_lock")]
        assert lock_level("_stage_lock") == MODULE_LOCK_LEVELS["_stage_lock"]
        assert lock_level("NoSuch._lock") is None

    def test_hierarchy_is_outer_to_inner(self):
        order = [
            ("ReproServer", "_engine_lock"),
            ("Context", "_lock"),
            ("BlockStore", "_lock"),
            ("AccumulatorRegistry", "_lock"),
            ("Accumulator", "_lock"),
            ("EventBus", "_lock"),
            ("MetricsHub", "_lock"),
            ("RecordingListener", "_lock"),
        ]
        levels = [LOCK_LEVELS[key] for key in order]
        assert levels == sorted(levels)
        assert len(set(levels)) == len(levels)

    def test_admission_gates_are_declared_data_plane_locks(self):
        for key in ADMISSION_GATE_LOCKS:
            assert key in LOCK_LEVELS
            assert LOCK_LEVELS[key] <= DATA_PLANE_MAX_LEVEL

    def test_undeclared_name_refused_at_construction(self):
        with pytest.raises(UndeclaredLockError):
            OrderedLock("Mystery._lock")
        with pytest.raises(UndeclaredLockError):
            OrderedLock("_mystery_lock")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            lockorder.set_sanitizer_mode("loud")


class TestRaiseMode:
    def test_ordered_acquisition_is_clean(self):
        outer = OrderedLock("Context._lock")
        inner = OrderedLock("BlockStore._lock")
        with outer:
            with inner:
                held = dict(lockorder.held_locks())
        assert held == {"Context._lock": 20, "BlockStore._lock": 50}
        assert lockorder.held_locks() == ()

    def test_inversion_raises_before_acquiring(self):
        outer = OrderedLock("Context._lock")
        inner = OrderedLock("BlockStore._lock")
        with inner:
            with pytest.raises(LockOrderError, match="Context._lock"):
                outer.acquire()
        # raise happened *before* acquisition: the lock is free afterwards
        assert outer.acquire(blocking=False)
        outer.release()

    def test_same_level_nesting_is_a_violation(self):
        a = OrderedLock("RecordingListener._lock")
        b = OrderedLock("ResultCache._lock")
        with a:
            with pytest.raises(LockOrderError):
                b.acquire()

    def test_reentrant_reacquire_is_allowed(self):
        bus = OrderedLock("EventBus._lock", reentrant=True)
        with bus:
            with bus:
                assert dict(lockorder.held_locks())["EventBus._lock"] == 80

    def test_non_reentrant_self_reacquire_still_flagged(self):
        lock = OrderedLock("BlockStore._lock")
        with lock:
            with pytest.raises(LockOrderError):
                lock.acquire(blocking=False)

    def test_per_thread_isolation(self):
        outer = OrderedLock("Context._lock")
        inner = OrderedLock("BlockStore._lock")
        errors = []

        def other_thread():
            try:
                with outer:  # this thread holds nothing: no violation
                    pass
            except LockOrderError as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with inner:
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        assert errors == []


class TestRecordMode:
    def test_violation_recorded_and_execution_continues(self):
        lockorder.set_sanitizer_mode("record")
        lockorder.clear_violations()
        outer = OrderedLock("Context._lock")
        inner = OrderedLock("BlockStore._lock")
        with inner:
            with outer:  # inverted, but must not raise
                pass
        (record,) = lockorder.violations()
        assert record.acquired == "Context._lock"
        assert record.acquired_level == 20
        assert record.held == "BlockStore._lock"
        assert record.held_level == 50
        assert "strictly descending" in record.describe()

    def test_hooks_fire_once_per_violation(self):
        lockorder.set_sanitizer_mode("record")
        lockorder.clear_violations()
        seen = []
        hook = lockorder.add_violation_hook(seen.append)
        try:
            inner = OrderedLock("BlockStore._lock")
            outer = OrderedLock("Context._lock")
            with inner:
                with outer:
                    pass
            assert len(seen) == 1
            assert seen[0].acquired == "Context._lock"
        finally:
            lockorder.remove_violation_hook(hook)

    def test_hook_acquiring_locks_does_not_cascade(self):
        lockorder.set_sanitizer_mode("record")
        lockorder.clear_violations()
        leaf = OrderedLock("ResultCache._lock")

        def nosy_hook(record):
            with leaf:  # would itself be out of order; must not re-enter
                pass

        hook = lockorder.add_violation_hook(nosy_hook)
        try:
            inner = OrderedLock("BlockStore._lock")
            outer = OrderedLock("Context._lock")
            with inner:
                with outer:
                    pass
            assert len(lockorder.violations()) == 1
        finally:
            lockorder.remove_violation_hook(hook)

    def test_off_mode_skips_all_tracking(self):
        lockorder.set_sanitizer_mode("off")
        lockorder.clear_violations()
        inner = OrderedLock("BlockStore._lock")
        outer = OrderedLock("Context._lock")
        with inner:
            with outer:
                assert lockorder.held_locks() == ()
        assert lockorder.violations() == []


class TestEngineIntegration:
    def test_context_posts_bus_event_and_counts_violations(self):
        lockorder.set_sanitizer_mode("record")
        lockorder.clear_violations()
        with Context(mode="serial") as ctx:
            recorder = RecordingListener()
            ctx.event_bus.register(recorder)
            inner = OrderedLock("BlockStore._lock")
            outer = OrderedLock("Context._lock")
            with inner:
                with outer:
                    pass
            events = recorder.of_type(LockOrderViolation)
            assert len(events) == 1
            assert events[0].acquired == "Context._lock"
            assert events[0].held == "BlockStore._lock"
            snap = ctx.metrics_hub.snapshot()
        family = snap["repro_lock_order_violations_total"]
        assert family["series"][0]["value"] == 1.0

    def test_engine_config_switches_mode(self):
        from repro.engine.config import EngineConfig

        lockorder.set_sanitizer_mode("off")
        cfg = EngineConfig(mode="serial", lock_sanitizer="record")
        with Context(config=cfg):
            assert lockorder.sanitizer_mode() == "record"

    def test_engine_config_rejects_bad_mode(self):
        from repro.engine.config import EngineConfig

        with pytest.raises(ValueError):
            EngineConfig(lock_sanitizer="shout")

    def test_env_mode_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_SANITIZER", "RECORD")
        assert lockorder._env_mode() == "record"
        monkeypatch.setenv("REPRO_LOCK_SANITIZER", "banana")
        assert lockorder._env_mode() == "off"
        monkeypatch.delenv("REPRO_LOCK_SANITIZER")
        assert lockorder._env_mode() == "off"
