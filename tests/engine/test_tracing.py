"""Trace-context propagation: scopes, event stamping, executor hand-off.

The correlation contract: every event the engine emits while a
``trace_scope`` is open carries that scope's trace_id/span_id and the
innermost SBGT phase, in *all three* executor modes — thread pools copy
the contextvars context per task, and the process executor posts events
driver-side where the scope is live.
"""

import os
import time

import pytest

from repro.engine import (
    Context,
    EngineConfig,
    TraceContext,
    current_trace,
    current_trace_id,
    ensure_trace,
    phase_scope,
    trace_scope,
)
from repro.engine.listener import JobStart, TaskEnd
from repro.engine.tracing import (
    EPOCH_OFFSET,
    current_phase,
    current_span_id,
    new_trace_id,
)

MODES = ["serial", "threads", "processes"]


# ---------------------------------------------------------------------------
# Scope semantics (pure contextvars, no engine)


class TestScopes:
    def test_no_scope_means_empty_ids(self):
        assert current_trace() is None
        assert current_trace_id() == ""
        assert current_span_id() == ""
        assert current_phase() == ""

    def test_root_scope_generates_ids_and_resets(self):
        with trace_scope(name="root") as tc:
            assert isinstance(tc, TraceContext)
            assert len(tc.trace_id) == 16
            assert tc.parent_id == ""
            assert tc.name == "root"
            assert current_trace() is tc
            assert current_trace_id() == tc.trace_id
        assert current_trace() is None

    def test_nested_scope_is_child_span_of_same_trace(self):
        with trace_scope(name="outer") as outer:
            with trace_scope(name="inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.span_id != outer.span_id
                assert inner.parent_id == outer.span_id
            assert current_trace() is outer

    def test_explicit_trace_id_forces_root(self):
        with trace_scope(name="outer"):
            with trace_scope(trace_id="cafebabe12345678") as forced:
                assert forced.trace_id == "cafebabe12345678"
                assert forced.parent_id == ""

    def test_ensure_trace_reuses_active_scope(self):
        with trace_scope(name="outer") as outer:
            with ensure_trace(name="ignored") as tc:
                assert tc is outer

    def test_ensure_trace_opens_root_when_none(self):
        with ensure_trace(name="batch") as tc:
            assert tc.name == "batch"
            assert current_trace_id() == tc.trace_id
        assert current_trace() is None

    def test_phase_scope_nests_and_restores(self):
        assert current_phase() == ""
        with phase_scope("selection"):
            assert current_phase() == "selection"
            with phase_scope("lattice-op"):
                assert current_phase() == "lattice-op"
            assert current_phase() == "selection"
        assert current_phase() == ""

    def test_new_trace_ids_are_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64


# ---------------------------------------------------------------------------
# Event stamping


class TestEventStamping:
    def test_event_outside_scope_is_unstamped(self):
        e = JobStart(job_id=1)
        assert e.trace_id == "" and e.span_id == "" and e.phase == ""

    def test_event_inside_scope_is_stamped(self):
        with trace_scope(name="op") as tc, phase_scope("analysis"):
            e = TaskEnd(stage_id=0, partition=0, wall_s=0.1, attempts=1)
        assert e.trace_id == tc.trace_id
        assert e.span_id == tc.span_id
        assert e.phase == "analysis"
        d = e.to_dict()
        assert d["trace_id"] == tc.trace_id
        assert d["phase"] == "analysis"
        assert "trace" not in d  # the raw TraceContext stays off the wire

    def test_wall_is_epoch_seconds(self):
        """Satellite regression: ``wall`` must be comparable to
        ``time.time()``, not a raw ``perf_counter`` stamp (whose origin
        is per-process and ordered events across a fork boundary wrong
        before the ``EPOCH_OFFSET`` fix)."""
        before = time.time()
        e = JobStart(job_id=0)
        after = time.time()
        assert before - 0.5 <= e.wall <= after + 0.5
        # and it is exactly the perf_counter stamp shifted by the offset
        assert e.wall == pytest.approx(e.time + EPOCH_OFFSET)


# ---------------------------------------------------------------------------
# End-to-end propagation through the scheduler, per executor mode


@pytest.mark.parametrize("mode", MODES)
class TestPropagation:
    def test_job_events_carry_trace_and_phase(self, mode):
        with Context(mode=mode, parallelism=2, shuffle_partitions=2) as ctx:
            recorder = ctx.flight_recorder
            assert recorder is not None  # on by default
            with trace_scope(name="test-op") as tc, phase_scope("lattice-op"):
                pairs = ctx.range(20, num_partitions=2).map(lambda x: (x % 4, 1))
                out = dict(pairs.reduce_by_key(lambda a, b: a + b).collect())
            assert out == {k: 5 for k in range(4)}

            events = recorder.trace(tc.trace_id)
            kinds = {d["kind"] for d in events}
            assert kinds >= {
                "job_start", "job_end",
                "stage_start", "stage_end",
                "task_start", "task_end",
            }
            assert all(d["trace_id"] == tc.trace_id for d in events)
            assert all(d["phase"] == "lattice-op" for d in events)
            # the trace is discoverable without knowing its id
            assert tc.trace_id in recorder.traces()

    def test_untraced_job_events_have_empty_trace(self, mode):
        with Context(mode=mode, parallelism=2) as ctx:
            assert ctx.range(10, num_partitions=2).sum() == 45
            events = ctx.flight_recorder.events(kind="task_end")
            assert events
            assert all(d["trace_id"] == "" for d in events)

    def test_task_end_worker_attribution_and_t0_wall(self, mode):
        """Satellite regression: ``t0_wall`` is the worker-side wall
        clock at task start — epoch seconds in every mode, stamped in
        the worker process under fork."""
        t_before = time.time()
        with Context(mode=mode, parallelism=2) as ctx:
            assert ctx.range(10, num_partitions=2).sum() == 45
            ends = ctx.flight_recorder.events(kind="task_end")
        t_after = time.time()

        assert ends
        for d in ends:
            assert t_before - 1.0 <= d["t0_wall"] <= t_after + 1.0
            # t0_wall is a live time.time() read; d["wall"] is
            # perf_counter + an EPOCH_OFFSET frozen at import.  The two
            # clock domains jitter a few microseconds apart, so the
            # "start precedes end" check needs millisecond slack.
            assert d["t0_wall"] <= d["wall"] + 5e-3
            pid_s, _, thread = d["worker"].partition("/")
            assert thread
            if mode == "processes":
                assert int(pid_s) != os.getpid(), "fork task ran in the driver?"
            else:
                assert int(pid_s) == os.getpid()

    def test_two_interleaved_traces_stay_separate(self, mode):
        with Context(mode=mode, parallelism=2) as ctx:
            recorder = ctx.flight_recorder
            with trace_scope(name="a") as ta:
                ctx.range(8, num_partitions=2).count()
            with trace_scope(name="b") as tb:
                ctx.range(8, num_partitions=2).count()
            a_events = recorder.trace(ta.trace_id)
            b_events = recorder.trace(tb.trace_id)
            assert a_events and b_events
            assert {d["trace_id"] for d in a_events} == {ta.trace_id}
            assert {d["trace_id"] for d in b_events} == {tb.trace_id}
            assert ta.trace_id != tb.trace_id


def test_events_off_means_no_stamping_cost_path():
    """With events disabled the bus is falsy and no events exist to stamp;
    a trace scope must not break jobs."""
    cfg = EngineConfig(mode="serial", enable_events=False)
    with Context(config=cfg) as ctx:
        assert ctx.flight_recorder is None
        with trace_scope(name="silent"):
            assert ctx.range(10, num_partitions=2).sum() == 45
