"""HyperLogLog approximate distinct counting."""

import pytest

from repro.engine.hll import HyperLogLog, count_approx_distinct


class TestHyperLogLog:
    def test_empty_is_zero(self):
        assert HyperLogLog().cardinality() == pytest.approx(0.0, abs=1e-9)

    def test_small_exact_via_linear_counting(self):
        hll = HyperLogLog(12)
        hll.add_all(range(50))
        assert hll.cardinality() == pytest.approx(50, abs=2)

    def test_duplicates_do_not_inflate(self):
        hll = HyperLogLog(12)
        for _ in range(100):
            hll.add_all(range(20))
        assert hll.cardinality() == pytest.approx(20, abs=2)

    @pytest.mark.parametrize("true_count", [1_000, 20_000])
    def test_within_expected_error(self, true_count):
        hll = HyperLogLog(12)
        hll.add_all(f"item-{i}" for i in range(true_count))
        err = abs(hll.cardinality() - true_count) / true_count
        assert err < 5 * hll.relative_error()  # 5 sigma

    def test_merge_equals_union(self):
        a, b = HyperLogLog(10), HyperLogLog(10)
        a.add_all(range(0, 600))
        b.add_all(range(400, 1000))  # overlap 400..600
        a.merge(b)
        union = HyperLogLog(10).add_all(range(1000))
        assert a.cardinality() == pytest.approx(union.cardinality(), rel=1e-9)

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            HyperLogLog(3)
        with pytest.raises(ValueError):
            HyperLogLog(17)

    def test_hash_stable_across_types(self):
        hll = HyperLogLog(8)
        hll.add("x").add("x").add(("x",))
        assert hll.cardinality() == pytest.approx(2, abs=1)

    def test_pickles(self):
        import pickle

        hll = HyperLogLog(8).add_all(range(100))
        clone = pickle.loads(pickle.dumps(hll))
        assert clone.cardinality() == hll.cardinality()


class TestRDDCountApproxDistinct:
    def test_matches_exact_for_small(self, ctx):
        rdd = ctx.parallelize([i % 80 for i in range(2000)], 8)
        approx = rdd.count_approx_distinct()
        assert approx == pytest.approx(80, abs=3)

    def test_large_within_error(self, ctx):
        rdd = ctx.range(30_000, num_partitions=8).map(lambda x: x // 2)
        approx = rdd.count_approx_distinct(precision=12)
        assert abs(approx - 15_000) / 15_000 < 0.1

    def test_function_form(self, ctx):
        rdd = ctx.parallelize(list("abcabc"), 3)
        assert count_approx_distinct(rdd, precision=10) == pytest.approx(3, abs=1)

    def test_works_in_process_mode(self, process_ctx):
        rdd = process_ctx.parallelize([i % 40 for i in range(400)], 2)
        assert rdd.count_approx_distinct() == pytest.approx(40, abs=2)
