"""Narrow transformations and dataset constructors."""

import pytest

from repro.engine.errors import EngineError


class TestParallelize:
    def test_collect_round_trip(self, ctx):
        data = list(range(37))
        assert ctx.parallelize(data, 5).collect() == data

    def test_partition_count_capped_by_size(self, ctx):
        rdd = ctx.parallelize([1, 2], 16)
        assert rdd.num_partitions == 2

    def test_empty_collection(self, ctx):
        rdd = ctx.parallelize([], 4)
        assert rdd.collect() == []
        assert rdd.num_partitions == 1

    def test_partitions_cover_all_data(self, ctx):
        parts = ctx.parallelize(list(range(10)), 3).collect_partitions()
        assert sorted(x for p in parts for x in p) == list(range(10))
        assert len(parts) == 3


class TestRange:
    def test_basic(self, ctx):
        assert ctx.range(10).collect() == list(range(10))

    def test_start_stop_step(self, ctx):
        assert ctx.range(2, 20, 3, num_partitions=4).collect() == list(range(2, 20, 3))

    def test_negative_step(self, ctx):
        assert ctx.range(10, 0, -2, num_partitions=3).collect() == list(range(10, 0, -2))

    def test_empty_range(self, ctx):
        assert ctx.range(5, 5).collect() == []

    def test_zero_step_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.range(0, 10, 0)


class TestMapFilter:
    def test_map(self, ctx):
        assert ctx.range(5, num_partitions=2).map(lambda x: x * x).collect() == [0, 1, 4, 9, 16]

    def test_filter(self, ctx):
        out = ctx.range(10, num_partitions=3).filter(lambda x: x % 2 == 0).collect()
        assert out == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        out = ctx.parallelize([1, 2, 3], 2).flat_map(lambda x: [x] * x).collect()
        assert out == [1, 2, 2, 3, 3, 3]

    def test_chained_pipeline(self, ctx):
        out = (
            ctx.range(20, num_partitions=4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(str)
            .collect()
        )
        assert out == ["3", "6", "9", "12", "15", "18"]

    def test_map_partitions(self, ctx):
        out = ctx.range(10, num_partitions=2).map_partitions(lambda it: [sum(it)]).collect()
        assert sum(out) == 45
        assert len(out) == 2

    def test_map_partitions_with_index(self, ctx):
        out = ctx.range(4, num_partitions=2).map_partitions_with_index(
            lambda i, it: [(i, x) for x in it]
        ).collect()
        assert out == [(0, 0), (0, 1), (1, 2), (1, 3)]

    def test_glom(self, ctx):
        parts = ctx.range(6, num_partitions=3).glom().collect()
        assert [x for p in parts for x in p] == list(range(6))
        assert len(parts) == 3


class TestKeyByZip:
    def test_key_by(self, ctx):
        assert ctx.parallelize(["a", "bb"], 1).key_by(len).collect() == [(1, "a"), (2, "bb")]

    def test_zip_with_index(self, ctx):
        out = ctx.parallelize(list("abcd"), 3).zip_with_index().collect()
        assert out == [("a", 0), ("b", 1), ("c", 2), ("d", 3)]

    def test_zip(self, ctx):
        a = ctx.range(4, num_partitions=2)
        b = a.map(lambda x: x * 10)
        assert a.zip(b).collect() == [(0, 0), (1, 10), (2, 20), (3, 30)]

    def test_zip_partitions(self, ctx):
        a = ctx.range(4, num_partitions=2)
        b = a.map(lambda x: x + 1)
        out = a.zip_partitions(b, lambda xs, ys: [sum(xs) + sum(ys)]).collect()
        assert sum(out) == 6 + 10

    def test_zip_mismatched_partitions_raises(self, ctx):
        a = ctx.range(4, num_partitions=2)
        b = ctx.range(4, num_partitions=3)
        with pytest.raises(ValueError):
            a.zip_partitions(b, lambda x, y: [])


class TestUnionCoalesce:
    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3, 4], 2)
        assert a.union(b).collect() == [1, 2, 3, 4]

    def test_union_partition_count(self, ctx):
        a = ctx.parallelize([1], 1)
        b = ctx.parallelize([2, 3], 2)
        assert a.union(b).num_partitions == 3

    def test_context_union_many(self, ctx):
        rdds = [ctx.parallelize([i], 1) for i in range(5)]
        assert ctx.union(rdds).collect() == [0, 1, 2, 3, 4]

    def test_coalesce_reduces_partitions(self, ctx):
        rdd = ctx.range(20, num_partitions=8).coalesce(3)
        assert rdd.num_partitions == 3
        assert rdd.collect() == list(range(20))

    def test_coalesce_no_op_when_growing(self, ctx):
        rdd = ctx.range(5, num_partitions=2)
        assert rdd.coalesce(10) is rdd

    def test_repartition(self, ctx):
        rdd = ctx.range(20, num_partitions=2).repartition(5)
        assert rdd.num_partitions == 5
        assert sorted(rdd.collect()) == list(range(20))


class TestSample:
    def test_fraction_zero(self, ctx):
        assert ctx.range(100, num_partitions=4).sample(0.0, seed=1).collect() == []

    def test_fraction_one(self, ctx):
        assert ctx.range(50, num_partitions=4).sample(1.0, seed=1).count() == 50

    def test_deterministic_with_seed(self, ctx):
        rdd = ctx.range(200, num_partitions=4)
        assert rdd.sample(0.3, seed=5).collect() == rdd.sample(0.3, seed=5).collect()

    def test_invalid_fraction(self, ctx):
        with pytest.raises(ValueError):
            ctx.range(10).sample(1.5)


class TestTakeFirst:
    def test_take_fewer_than_available(self, ctx):
        assert ctx.range(100, num_partitions=8).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, ctx):
        assert ctx.range(3, num_partitions=2).take(10) == [0, 1, 2]

    def test_take_zero(self, ctx):
        assert ctx.range(10).take(0) == []

    def test_first(self, ctx):
        assert ctx.range(5, num_partitions=3).first() == 0

    def test_first_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 1).first()

    def test_is_empty(self, ctx):
        assert ctx.parallelize([], 1).is_empty()
        assert not ctx.range(1).is_empty()

    def test_top(self, ctx):
        assert ctx.parallelize([5, 1, 9, 3], 2).top(2) == [9, 5]

    def test_top_with_key(self, ctx):
        out = ctx.parallelize(["aa", "b", "ccc"], 2).top(1, key=len)
        assert out == ["ccc"]


class TestDistinctSort:
    def test_distinct(self, ctx):
        out = sorted(ctx.parallelize([3, 1, 3, 2, 1], 3).distinct().collect())
        assert out == [1, 2, 3]

    def test_sort_by_ascending(self, ctx):
        data = [5, 2, 8, 1, 9, 3]
        assert ctx.parallelize(data, 3).sort_by(lambda x: x).collect() == sorted(data)

    def test_sort_by_descending(self, ctx):
        data = [5, 2, 8, 1]
        out = ctx.parallelize(data, 2).sort_by(lambda x: x, ascending=False).collect()
        assert out == sorted(data, reverse=True)

    def test_sort_by_key_func(self, ctx):
        data = ["ccc", "a", "bb"]
        assert ctx.parallelize(data, 2).sort_by(len).collect() == ["a", "bb", "ccc"]

    def test_sort_with_duplicates(self, ctx):
        data = [3, 1, 3, 1, 2] * 10
        assert ctx.parallelize(data, 4).sort_by(lambda x: x).collect() == sorted(data)

    def test_group_by(self, ctx):
        grouped = dict(ctx.range(10, num_partitions=3).group_by(lambda x: x % 2).collect())
        assert sorted(grouped[0]) == [0, 2, 4, 6, 8]
        assert sorted(grouped[1]) == [1, 3, 5, 7, 9]
