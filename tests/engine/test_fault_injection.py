"""Failure injection across executor backends."""

import threading

import pytest

from repro.engine import Context
from repro.engine.errors import TaskFailedError


class _FlakyOnce:
    """Callable failing the first *k* invocations (thread-safe)."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, i, it):
        with self._lock:
            self.calls += 1
            n = self.calls
        if n <= self.failures:
            raise RuntimeError(f"injected failure #{n}")
        return list(it)


class TestThreadModeFailures:
    def test_flaky_task_recovers(self):
        with Context(mode="threads", parallelism=2, max_task_retries=2) as ctx:
            flaky = _FlakyOnce(1)
            out = ctx.range(8, num_partitions=1).map_partitions_with_index(flaky).collect()
            assert out == list(range(8))

    def test_exhausted_retries_fail_job(self):
        with Context(mode="threads", parallelism=2, max_task_retries=1) as ctx:
            def always_boom(x):
                raise ValueError("permanent")

            with pytest.raises(TaskFailedError) as info:
                ctx.range(4, num_partitions=2).map(always_boom).count()
            assert isinstance(info.value.cause, ValueError)

    def test_failure_in_shuffle_map_stage(self):
        with Context(mode="threads", parallelism=2, max_task_retries=0) as ctx:
            def boom_keyed(x):
                raise RuntimeError("map-side")

            rdd = ctx.range(4, num_partitions=2).map(boom_keyed).reduce_by_key(
                lambda a, b: a
            )
            with pytest.raises(TaskFailedError):
                rdd.collect()

    def test_context_usable_after_failed_job(self):
        with Context(mode="threads", parallelism=2, max_task_retries=0) as ctx:
            def boom(x):
                raise RuntimeError("nope")

            with pytest.raises(TaskFailedError):
                ctx.range(4, num_partitions=2).map(boom).collect()
            # The same context must still run healthy jobs.
            assert ctx.range(10, num_partitions=2).sum() == 45


class TestProcessModeFailures:
    def test_worker_exception_type_preserved(self, process_ctx):
        def typed_boom(x):
            raise KeyError("worker-side key error")

        with pytest.raises(TaskFailedError) as info:
            process_ctx.range(2, num_partitions=1).map(typed_boom).collect()
        assert "KeyError" in repr(info.value.cause) or isinstance(info.value.cause, KeyError)

    def test_unpicklable_record_fails_cleanly(self, process_ctx):
        # Results must cross the process boundary; a lock cannot.
        import threading as _t

        with pytest.raises(TaskFailedError):
            process_ctx.range(2, num_partitions=1).map(lambda x: _t.Lock()).collect()

    def test_process_context_survives_failure(self, process_ctx):
        def boom(x):
            raise RuntimeError("die")

        with pytest.raises(TaskFailedError):
            process_ctx.range(2, num_partitions=1).map(boom).collect()
        assert process_ctx.range(6, num_partitions=2).sum() == 15


class TestRetrySemantics:
    def test_each_partition_retried_independently(self):
        with Context(mode="serial", max_task_retries=3) as ctx:
            per_partition_attempts = {}

            def flaky(i, it):
                per_partition_attempts[i] = per_partition_attempts.get(i, 0) + 1
                if per_partition_attempts[i] < 2:
                    raise RuntimeError("transient")
                return list(it)

            out = ctx.range(6, num_partitions=3).map_partitions_with_index(flaky).collect()
            assert out == list(range(6))
            assert all(v == 2 for v in per_partition_attempts.values())

    def test_attempt_count_in_metrics(self):
        with Context(mode="serial", max_task_retries=2) as ctx:
            attempts = {"n": 0}

            def flaky(i, it):
                attempts["n"] += 1
                if attempts["n"] == 1:
                    raise RuntimeError("once")
                return list(it)

            ctx.range(3, num_partitions=1).map_partitions_with_index(flaky).collect()
            job = ctx.metrics.last()
            assert job.stages[-1].tasks[0].attempts == 2
