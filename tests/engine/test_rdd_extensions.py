"""Extended RDD API: stats, histogram, ordered/sampled takes, set ops."""

import numpy as np
import pytest

from repro.engine.errors import EngineError
from repro.engine.rdd import StatCounter


class TestStatCounter:
    def test_single_value(self):
        st = StatCounter().add(5.0)
        assert st.count == 1
        assert st.mean == 5.0
        assert st.variance == 0.0

    def test_matches_numpy(self):
        values = [3.0, 1.5, 9.0, -2.0, 4.5]
        st = StatCounter()
        for v in values:
            st.add(v)
        assert st.mean == pytest.approx(np.mean(values))
        assert st.stdev == pytest.approx(np.std(values))
        assert st.min == min(values)
        assert st.max == max(values)
        assert st.sum == pytest.approx(sum(values))

    def test_merge_equivalent_to_sequential(self):
        a_vals, b_vals = [1.0, 2.0, 3.0], [10.0, 20.0]
        a, b = StatCounter(), StatCounter()
        for v in a_vals:
            a.add(v)
        for v in b_vals:
            b.add(v)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx(np.mean(a_vals + b_vals))
        assert a.stdev == pytest.approx(np.std(a_vals + b_vals))

    def test_merge_with_empty(self):
        a = StatCounter().add(1.0)
        a.merge(StatCounter())
        assert a.count == 1
        b = StatCounter()
        b.merge(StatCounter().add(2.0))
        assert b.mean == 2.0


class TestRDDStats:
    def test_stats_action(self, ctx):
        st = ctx.range(100, num_partitions=7).stats()
        assert st.count == 100
        assert st.mean == pytest.approx(49.5)
        assert st.min == 0.0 and st.max == 99.0
        assert st.stdev == pytest.approx(np.std(np.arange(100)))

    def test_stats_empty(self, ctx):
        assert ctx.parallelize([], 2).stats().count == 0


class TestHistogram:
    def test_even_buckets(self, ctx):
        edges, counts = ctx.range(100, num_partitions=4).histogram(4)
        assert len(edges) == 5
        assert counts == [25, 25, 25, 24 + 1]  # last bucket right-closed
        assert sum(counts) == 100

    def test_explicit_edges(self, ctx):
        edges, counts = ctx.parallelize([1, 5, 9, 15], 2).histogram([0, 10, 20])
        assert counts == [3, 1]

    def test_out_of_range_ignored(self, ctx):
        _edges, counts = ctx.parallelize([-5, 5, 25], 2).histogram([0.0, 10.0])
        assert counts == [1]

    def test_constant_values(self, ctx):
        edges, counts = ctx.parallelize([7, 7, 7], 1).histogram(3)
        assert counts == [3]

    def test_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 1).histogram(3)

    def test_bad_edges(self, ctx):
        with pytest.raises(ValueError):
            ctx.range(5).histogram([3.0, 1.0])
        with pytest.raises(ValueError):
            ctx.range(5).histogram(0)


class TestTakeOrderedSample:
    def test_take_ordered(self, ctx):
        out = ctx.parallelize([9, 2, 7, 1, 8], 3).take_ordered(3)
        assert out == [1, 2, 7]

    def test_take_ordered_with_key(self, ctx):
        out = ctx.parallelize(["aaa", "b", "cc"], 2).take_ordered(2, key=len)
        assert out == ["b", "cc"]

    def test_take_ordered_zero(self, ctx):
        assert ctx.range(5).take_ordered(0) == []

    def test_take_sample_without_replacement(self, ctx):
        sample = ctx.range(100, num_partitions=4).take_sample(10, seed=3)
        assert len(sample) == 10
        assert len(set(sample)) == 10
        assert all(0 <= x < 100 for x in sample)

    def test_take_sample_deterministic(self, ctx):
        rdd = ctx.range(50, num_partitions=4)
        assert rdd.take_sample(5, seed=9) == rdd.take_sample(5, seed=9)

    def test_take_sample_exceeding_size(self, ctx):
        assert sorted(ctx.range(5, num_partitions=2).take_sample(100, seed=1)) == list(range(5))

    def test_take_sample_with_replacement(self, ctx):
        sample = ctx.range(3, num_partitions=2).take_sample(10, with_replacement=True, seed=2)
        assert len(sample) == 10
        assert set(sample) <= {0, 1, 2}

    def test_take_sample_empty(self, ctx):
        assert ctx.parallelize([], 1).take_sample(5, seed=0) == []


class TestSetOps:
    def test_subtract(self, ctx):
        left = ctx.parallelize([1, 2, 2, 3, 4], 3)
        right = ctx.parallelize([2, 4, 9], 2)
        assert sorted(left.subtract(right).collect()) == [1, 3]

    def test_subtract_keeps_left_multiplicity(self, ctx):
        left = ctx.parallelize([1, 1, 5], 2)
        right = ctx.parallelize([5], 1)
        assert sorted(left.subtract(right).collect()) == [1, 1]

    def test_intersection(self, ctx):
        left = ctx.parallelize([1, 2, 2, 3], 2)
        right = ctx.parallelize([2, 3, 3, 7], 2)
        assert sorted(left.intersection(right).collect()) == [2, 3]

    def test_intersection_empty(self, ctx):
        left = ctx.parallelize([1], 1)
        right = ctx.parallelize([2], 1)
        assert left.intersection(right).collect() == []

    def test_cartesian(self, ctx):
        left = ctx.parallelize([1, 2], 2)
        right = ctx.parallelize(["a", "b"], 2)
        out = sorted(left.cartesian(right).collect())
        assert out == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]
        assert left.cartesian(right).num_partitions == 4

    def test_cartesian_count(self, ctx):
        assert ctx.range(5, num_partitions=2).cartesian(ctx.range(7, num_partitions=3)).count() == 35


class TestDebugString:
    def test_shows_lineage(self, ctx):
        rdd = ctx.range(10, num_partitions=2).map(lambda x: (x % 2, x)).reduce_by_key(
            lambda a, b: a + b
        )
        out = rdd.debug_string()
        assert "ShuffledRDD" in out
        assert "RangeRDD" in out
        assert "shuffle" in out

    def test_narrow_only(self, ctx):
        out = ctx.range(4).map(lambda x: x).debug_string()
        assert "MapPartitionsRDD" in out
        assert "shuffle" not in out
