"""Engine suite runs with the lock-order sanitizer in ``raise`` mode.

Every test in this directory exercises the real locks, so an
out-of-order acquisition fails the offending test at the acquisition
site instead of deadlocking some later run.  The previous mode is
restored afterwards so the setting cannot leak into other suites.
"""

import pytest

from repro.engine import lockorder


@pytest.fixture(autouse=True)
def _lock_sanitizer_raise():
    previous = lockorder.set_sanitizer_mode("raise")
    lockorder.clear_violations()
    try:
        yield
    finally:
        lockorder.set_sanitizer_mode(previous)
        lockorder.clear_violations()
