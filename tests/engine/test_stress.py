"""Stress and interaction tests: many partitions, eviction, deep chains."""

import numpy as np

from repro.engine import Context, EngineConfig


class TestManyPartitions:
    def test_wide_shuffle(self, ctx):
        pairs = ctx.range(5000, num_partitions=16).map(lambda x: (x % 97, 1))
        counts = dict(pairs.reduce_by_key(lambda a, b: a + b, num_partitions=32).collect())
        assert sum(counts.values()) == 5000
        assert len(counts) == 97

    def test_many_small_partitions(self, ctx):
        rdd = ctx.parallelize(list(range(64)), 64)
        assert rdd.num_partitions == 64
        assert rdd.map(lambda x: x * x).sum() == sum(i * i for i in range(64))

    def test_deep_narrow_chain(self, ctx):
        rdd = ctx.range(100, num_partitions=4)
        for _ in range(60):
            rdd = rdd.map(lambda x: x + 1)
        assert rdd.sum() == sum(range(100)) + 60 * 100

    def test_chained_shuffles_deep(self, ctx):
        rdd = ctx.parallelize([(i % 8, 1) for i in range(256)], 8)
        for _ in range(5):
            rdd = rdd.reduce_by_key(lambda a, b: a + b).map(lambda kv: (kv[0] % 4, kv[1]))
        assert sum(v for _k, v in rdd.reduce_by_key(lambda a, b: a + b).collect()) == 256


class TestCacheEviction:
    def test_eviction_does_not_break_results(self):
        cfg = EngineConfig(mode="serial", cache_capacity_bytes=4096)
        with Context(config=cfg) as ctx:
            rdds = [
                ctx.parallelize(list(range(i * 100, i * 100 + 100)), 2).cache()
                for i in range(8)
            ]
            for r in rdds:
                r.count()  # fill far beyond capacity → evictions
            assert ctx.block_store.evictions > 0
            # Every RDD still answers correctly (evicted ones recompute).
            for i, r in enumerate(rdds):
                assert r.sum() == sum(range(i * 100, i * 100 + 100))

    def test_numpy_partition_caching(self, ctx):
        arrays = ctx.parallelize([np.arange(1000) for _ in range(4)], 4).cache()
        first = arrays.map(lambda a: float(a.sum())).sum()
        second = arrays.map(lambda a: float(a.sum())).sum()
        assert first == second == 4 * float(np.arange(1000).sum())


class TestMixedWorkload:
    def test_union_of_shuffled(self, ctx):
        a = ctx.parallelize([(1, "a")], 1).reduce_by_key(lambda x, y: x)
        b = ctx.parallelize([(2, "b")], 1).reduce_by_key(lambda x, y: x)
        assert sorted(a.union(b).collect()) == [(1, "a"), (2, "b")]

    def test_join_after_sort(self, ctx):
        left = ctx.parallelize([(3, "c"), (1, "a"), (2, "b")], 2).sort_by(lambda kv: kv[0])
        right = ctx.parallelize([(2, "x")], 1)
        assert dict(left.join(right).collect()) == {2: ("b", "x")}

    def test_cached_shuffle_reuse_with_downstream_branches(self, ctx):
        base = ctx.parallelize([(i % 5, i) for i in range(50)], 4).reduce_by_key(
            lambda a, b: a + b
        ).cache()
        sums = dict(base.collect())
        maxes = base.map_values(lambda v: v * 2).collect()
        assert dict(maxes) == {k: v * 2 for k, v in sums.items()}

    def test_zip_of_transformed_branches(self, ctx):
        base = ctx.range(20, num_partitions=4)
        doubled = base.map(lambda x: 2 * x)
        squared = base.map(lambda x: x * x)
        pairs = doubled.zip(squared).collect()
        assert pairs == [(2 * i, i * i) for i in range(20)]
