"""Partitioners and the shuffle manager."""

import pytest

from repro.engine.errors import ShuffleFetchError
from repro.engine.shuffle import (
    HashPartitioner,
    LocalShuffleFetcher,
    PayloadShuffleFetcher,
    RangePartitioner,
    ShuffleManager,
)


class TestHashPartitioner:
    def test_in_range(self):
        part = HashPartitioner(4)
        assert all(0 <= part.partition(k) < 4 for k in range(100))

    def test_deterministic(self):
        part = HashPartitioner(8)
        assert part.partition("key") == part.partition("key")

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_ascending_split(self):
        part = RangePartitioner([10, 20])
        assert part.num_partitions == 3
        assert part.partition(5) == 0
        assert part.partition(10) == 0
        assert part.partition(15) == 1
        assert part.partition(25) == 2

    def test_descending(self):
        part = RangePartitioner([10], ascending=False)
        assert part.partition(5) == 1
        assert part.partition(50) == 0

    def test_order_preserved(self):
        part = RangePartitioner([3, 7, 11])
        keys = list(range(15))
        pids = [part.partition(k) for k in keys]
        assert pids == sorted(pids)

    def test_equality_includes_bounds(self):
        assert RangePartitioner([1, 2]) == RangePartitioner([1, 2])
        assert RangePartitioner([1, 2]) != RangePartitioner([1, 3])
        assert RangePartitioner([1]) != HashPartitioner(2)


class TestShuffleManager:
    def test_put_fetch_round_trip(self):
        mgr = ShuffleManager()
        sid = mgr.new_shuffle_id()
        mgr.expect(sid, 2)
        mgr.put(sid, 0, [[("a", 1)], [("b", 2)]])
        mgr.put(sid, 1, [[("a", 3)], []])
        assert sorted(mgr.fetch(sid, 0)) == [("a", 1), ("a", 3)]
        assert list(mgr.fetch(sid, 1)) == [("b", 2)]

    def test_materialized_tracking(self):
        mgr = ShuffleManager()
        sid = mgr.new_shuffle_id()
        mgr.expect(sid, 2)
        assert not mgr.is_materialized(sid)
        mgr.put(sid, 0, [[]])
        assert not mgr.is_materialized(sid)
        mgr.put(sid, 1, [[]])
        assert mgr.is_materialized(sid)

    def test_unknown_shuffle_raises(self):
        mgr = ShuffleManager()
        with pytest.raises(ShuffleFetchError):
            list(mgr.fetch(99, 0))

    def test_remove(self):
        mgr = ShuffleManager()
        sid = mgr.new_shuffle_id()
        mgr.expect(sid, 1)
        mgr.put(sid, 0, [[("k", 1)]])
        mgr.remove(sid)
        assert not mgr.is_materialized(sid)

    def test_unique_ids(self):
        mgr = ShuffleManager()
        ids = {mgr.new_shuffle_id() for _ in range(10)}
        assert len(ids) == 10

    def test_stats(self):
        mgr = ShuffleManager()
        sid = mgr.new_shuffle_id()
        mgr.expect(sid, 1)
        mgr.put(sid, 0, [[("a", 1), ("b", 2)]])
        stats = mgr.stats()
        assert stats["shuffles"] == 1
        assert stats["records"] == 2


class TestFetchers:
    def test_local_fetcher(self):
        mgr = ShuffleManager()
        sid = mgr.new_shuffle_id()
        mgr.expect(sid, 1)
        mgr.put(sid, 0, [[(1, "x")]])
        fetcher = LocalShuffleFetcher(mgr)
        assert list(fetcher.fetch(sid, 0)) == [(1, "x")]

    def test_payload_fetcher(self):
        fetcher = PayloadShuffleFetcher({(3, 1): [("k", "v")]})
        assert list(fetcher.fetch(3, 1)) == [("k", "v")]

    def test_payload_fetcher_missing(self):
        fetcher = PayloadShuffleFetcher({})
        with pytest.raises(ShuffleFetchError):
            fetcher.fetch(0, 0)
