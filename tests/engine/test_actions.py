"""Actions: reductions, aggregations, counting, side effects."""

import pytest

from repro.engine.errors import EngineError, JobFailedError


class TestReduceFold:
    def test_reduce_sum(self, ctx):
        assert ctx.range(100, num_partitions=7).reduce(lambda a, b: a + b) == 4950

    def test_reduce_single_element(self, ctx):
        assert ctx.parallelize([42], 1).reduce(lambda a, b: a + b) == 42

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_reduce_with_empty_partitions(self, ctx):
        # 3 records over 4 partitions: at least one partition is empty.
        assert ctx.parallelize([1, 2, 3], 4).reduce(lambda a, b: a + b) == 6

    def test_fold(self, ctx):
        assert ctx.range(10, num_partitions=3).fold(0, lambda a, b: a + b) == 45

    def test_fold_applies_zero_per_partition_like_spark(self, ctx):
        # Spark semantics: the zero is folded into every partition and
        # once more at the driver — 1 empty partition with zero=7 → 14.
        assert ctx.parallelize([], 1).fold(7, lambda a, b: a + b) == 14
        # The conventional identity zero is therefore safe:
        assert ctx.parallelize([], 1).fold(0, lambda a, b: a + b) == 0

    def test_tree_reduce(self, ctx):
        assert ctx.range(64, num_partitions=16).tree_reduce(lambda a, b: a + b) == 2016

    def test_tree_reduce_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 2).tree_reduce(lambda a, b: a + b)


class TestAggregate:
    def test_aggregate_mean(self, ctx):
        total, count = ctx.range(10, num_partitions=4).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert (total, count) == (45, 10)

    def test_tree_aggregate_matches_aggregate(self, ctx):
        rdd = ctx.range(1000, num_partitions=32)
        flat = rdd.aggregate(0, lambda a, x: a + x, lambda a, b: a + b)
        tree = rdd.tree_aggregate(0, lambda a, x: a + x, lambda a, b: a + b, depth=3)
        assert flat == tree == 499500

    def test_tree_aggregate_depth_one(self, ctx):
        out = ctx.range(10, num_partitions=4).tree_aggregate(
            0, lambda a, x: a + x, lambda a, b: a + b, depth=1
        )
        assert out == 45

    def test_tree_aggregate_invalid_depth(self, ctx):
        with pytest.raises(ValueError):
            ctx.range(10).tree_aggregate(0, lambda a, x: a, lambda a, b: a, depth=0)


class TestNumericActions:
    def test_sum(self, ctx):
        assert ctx.range(5, num_partitions=2).sum() == 10

    def test_sum_empty(self, ctx):
        assert ctx.parallelize([], 2).sum() == 0

    def test_count(self, ctx):
        assert ctx.range(123, num_partitions=7).count() == 123

    def test_count_empty(self, ctx):
        assert ctx.parallelize([], 3).count() == 0

    def test_max_min(self, ctx):
        rdd = ctx.parallelize([3, 9, 1, 7], 2)
        assert rdd.max() == 9
        assert rdd.min() == 1

    def test_max_with_key(self, ctx):
        rdd = ctx.parallelize(["a", "ccc", "bb"], 2)
        assert rdd.max(key=len) == "ccc"
        assert rdd.min(key=len) == "a"

    def test_mean(self, ctx):
        assert ctx.range(11, num_partitions=3).mean() == 5.0

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(EngineError):
            ctx.parallelize([], 2).mean()


class TestForeach:
    def test_foreach_with_accumulator(self, ctx):
        acc = ctx.accumulator(0)
        ctx.range(50, num_partitions=5).foreach(lambda x: acc.add(x))
        assert acc.value == 1225

    def test_foreach_partition(self, ctx):
        acc = ctx.accumulator(0)
        ctx.range(10, num_partitions=4).foreach_partition(lambda it: acc.add(len(list(it))))
        assert acc.value == 10


class TestRunJobPartitions:
    def test_specific_partitions(self, ctx):
        rdd = ctx.range(10, num_partitions=5)
        out = ctx.run_job(rdd, list, partitions=[1, 3])
        assert out == [[2, 3], [6, 7]]

    def test_out_of_range_partition_raises(self, ctx):
        rdd = ctx.range(10, num_partitions=2)
        with pytest.raises(JobFailedError):
            ctx.run_job(rdd, list, partitions=[5])
