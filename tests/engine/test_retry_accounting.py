"""Retry/attempt accounting across all three executor modes.

The metrics contract: a task that succeeds on attempt N reports
``attempts == N`` in :class:`TaskMetrics`; a task that exhausts its
retries raises :class:`TaskFailedError` carrying the original cause and
the total attempt count.  Flakiness is injected through a marker file so
the same test body works across fork boundaries (process mode).
"""

import os
import time

import pytest

from repro.engine import Context
from repro.engine.errors import JobFailedError, TaskFailedError
from repro.engine.executor import ProcessExecutor, Task, TaskResult

MODES = ["serial", "threads", "processes"]


def _flaky_via_marker(marker: str, succeed_on_attempt: int):
    """Partition function failing until *succeed_on_attempt* (file-counted)."""

    def fn(i, it):
        # Count attempts in the filesystem: visible to forked workers
        # where driver-side closures cannot share mutable state.
        path = f"{marker}.p{i}"
        calls = 1
        if os.path.exists(path):
            with open(path) as fh:
                calls = int(fh.read()) + 1
        with open(path, "w") as fh:
            fh.write(str(calls))
        if calls < succeed_on_attempt:
            raise RuntimeError(f"injected failure on attempt {calls}")
        return list(it)

    return fn


@pytest.mark.parametrize("mode", MODES)
class TestRetryAccounting:
    def test_success_on_second_attempt_recorded(self, mode, tmp_path):
        with Context(mode=mode, parallelism=2, max_task_retries=2) as ctx:
            flaky = _flaky_via_marker(str(tmp_path / "m"), succeed_on_attempt=2)
            out = ctx.range(6, num_partitions=2).map_partitions_with_index(flaky).collect()
            assert out == list(range(6))
            job = ctx.metrics.last()
            assert [t.attempts for t in job.stages[-1].tasks] == [2, 2]

    def test_first_try_success_counts_one_attempt(self, mode):
        with Context(mode=mode, parallelism=2, max_task_retries=2) as ctx:
            assert ctx.range(8, num_partitions=2).sum() == 28
            job = ctx.metrics.last()
            assert all(t.attempts == 1 for t in job.stages[-1].tasks)

    def test_exhausted_retries_raise_with_cause(self, mode, tmp_path):
        with Context(mode=mode, parallelism=2, max_task_retries=1) as ctx:
            flaky = _flaky_via_marker(str(tmp_path / "m"), succeed_on_attempt=99)
            with pytest.raises(TaskFailedError) as info:
                ctx.range(4, num_partitions=2).map_partitions_with_index(flaky).collect()
            err = info.value
            assert err.attempts == 2  # 1 try + 1 retry
            assert "injected failure" in repr(err.cause)

    def test_third_attempt_success(self, mode, tmp_path):
        with Context(mode=mode, parallelism=2, max_task_retries=3) as ctx:
            flaky = _flaky_via_marker(str(tmp_path / "m"), succeed_on_attempt=3)
            out = ctx.range(4, num_partitions=1).map_partitions_with_index(flaky).collect()
            assert out == list(range(4))
            job = ctx.metrics.last()
            assert job.stages[-1].tasks[0].attempts == 3


class TestThreadFailFast:
    def test_failure_does_not_wait_for_sleepers(self):
        """A permanently failing task aborts the wave promptly instead of
        draining behind slower siblings in submission order."""
        with Context(mode="threads", parallelism=4, max_task_retries=0) as ctx:

            def slow_or_boom(i, it):
                if i == 3:
                    raise ValueError("fail fast please")
                time.sleep(0.5)
                return list(it)

            t0 = time.perf_counter()
            with pytest.raises(TaskFailedError):
                ctx.range(8, num_partitions=4).map_partitions_with_index(
                    slow_or_boom
                ).collect()
            elapsed = time.perf_counter() - t0
            # The failing partition raises immediately; waiting the full
            # 0.5 s sleep of every healthy task would mean we blocked on
            # in-order result collection.
            assert elapsed < 0.45


class TestProcessResultCompleteness:
    def test_missing_result_raises_job_failed(self):
        tasks = [Task(stage_id=7, partition=p, body=lambda env: None) for p in range(3)]
        results = [TaskResult(0, "a"), None, TaskResult(2, "c")]
        with pytest.raises(JobFailedError, match=r"partition\(s\) \[1\] of stage 7"):
            ProcessExecutor._require_complete(results, tasks)

    def test_complete_results_pass_through(self):
        tasks = [Task(stage_id=1, partition=p, body=lambda env: None) for p in range(2)]
        results = [TaskResult(0, "a"), TaskResult(1, "b")]
        assert ProcessExecutor._require_complete(results, tasks) is results
