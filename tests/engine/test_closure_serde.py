"""Closure serialization: lambdas, nested functions, captured globals."""

import numpy as np
import pytest

from repro.engine.closure import deserialize, serialize
from repro.engine.errors import SerializationError

GLOBAL_FACTOR = 13


def top_level_double(x):
    return x * 2


def uses_global(x):
    return x * GLOBAL_FACTOR


class TestSerializeFunctions:
    def test_top_level_function(self):
        fn = deserialize(serialize(top_level_double))
        assert fn(21) == 42

    def test_lambda(self):
        fn = deserialize(serialize(lambda x: x + 1))
        assert fn(1) == 2

    def test_lambda_with_closure(self):
        n = 10
        fn = deserialize(serialize(lambda x: x + n))
        assert fn(5) == 15

    def test_nested_function(self):
        def outer(k):
            def inner(x):
                return x * k

            return inner

        fn = deserialize(serialize(outer(3)))
        assert fn(4) == 12

    def test_global_reference(self):
        fn = deserialize(serialize(uses_global))
        assert fn(2) == 26

    def test_lambda_referencing_module(self):
        fn = deserialize(serialize(lambda x: np.sqrt(x)))
        assert fn(4.0) == 2.0

    def test_default_arguments(self):
        fn = deserialize(serialize(lambda x, y=5: x + y))
        assert fn(1) == 6

    def test_kwonly_defaults(self):
        def f(x, *, scale=2):
            return x * scale

        fn = deserialize(serialize(f))
        assert fn(3) == 6
        assert fn(3, scale=10) == 30


class TestSerializeData:
    def test_plain_objects(self):
        payload = {"a": [1, 2], "b": (3, 4)}
        assert deserialize(serialize(payload)) == payload

    def test_numpy_arrays(self):
        arr = np.arange(10)
        out = deserialize(serialize(arr))
        assert np.array_equal(out, arr)

    def test_module_object(self):
        out = deserialize(serialize(np))
        assert out is np

    def test_unpicklable_raises_serialization_error(self):
        import threading

        with pytest.raises(SerializationError):
            serialize(threading.Lock())

    def test_serialize_function_validates_callable(self):
        from repro.engine.closure import deserialize_function

        data = serialize(42)
        with pytest.raises(SerializationError):
            deserialize_function(data)
