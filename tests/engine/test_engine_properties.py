"""Property-based engine tests: RDD ops agree with Python built-ins."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Context

# One shared serial context: hypothesis generates many examples and
# process/thread pools would dominate runtime.
_CTX = Context(mode="serial", parallelism=2)

ints = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60)
parts = st.integers(min_value=1, max_value=7)

common = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@common
@given(data=ints, n=parts)
def test_collect_is_identity(data, n):
    assert _CTX.parallelize(data, n).collect() == data


@common
@given(data=ints, n=parts)
def test_map_matches_builtin(data, n):
    assert _CTX.parallelize(data, n).map(lambda x: x * 2 + 1).collect() == [
        x * 2 + 1 for x in data
    ]


@common
@given(data=ints, n=parts)
def test_filter_matches_builtin(data, n):
    assert _CTX.parallelize(data, n).filter(lambda x: x % 3 == 0).collect() == [
        x for x in data if x % 3 == 0
    ]


@common
@given(data=ints, n=parts)
def test_count_and_sum(data, n):
    rdd = _CTX.parallelize(data, n)
    assert rdd.count() == len(data)
    assert rdd.sum() == sum(data)


@common
@given(data=ints, n=parts)
def test_distinct_matches_set(data, n):
    assert sorted(_CTX.parallelize(data, n).distinct().collect()) == sorted(set(data))


@common
@given(data=ints, n=parts)
def test_sort_matches_sorted(data, n):
    assert _CTX.parallelize(data, n).sort_by(lambda x: x).collect() == sorted(data)


@common
@given(data=ints, n=parts, m=parts)
def test_repartition_preserves_multiset(data, n, m):
    out = _CTX.parallelize(data, n).repartition(m).collect()
    assert sorted(out) == sorted(data)


@common
@given(data=st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)), max_size=50), n=parts)
def test_reduce_by_key_matches_dict_fold(data, n):
    expected: dict = {}
    for k, v in data:
        expected[k] = expected.get(k, 0) + v
    out = dict(_CTX.parallelize(data, n).reduce_by_key(lambda a, b: a + b).collect())
    assert out == expected


@common
@given(data=st.lists(st.tuples(st.integers(0, 5), st.integers(-50, 50)), max_size=50), n=parts)
def test_group_by_key_matches_dict(data, n):
    expected: dict = {}
    for k, v in data:
        expected.setdefault(k, []).append(v)
    out = {k: sorted(v) for k, v in _CTX.parallelize(data, n).group_by_key().collect()}
    assert out == {k: sorted(v) for k, v in expected.items()}


@common
@given(data=st.lists(st.integers(0, 100), min_size=1, max_size=60), n=parts)
def test_reduce_max_matches_builtin(data, n):
    assert _CTX.parallelize(data, n).reduce(max) == max(data)


@common
@given(data=ints, n=parts, k=st.integers(0, 10))
def test_take_matches_prefix(data, n, k):
    assert _CTX.parallelize(data, n).take(k) == data[:k]


pairs_st = st.lists(st.tuples(st.integers(0, 6), st.integers(-9, 9)), max_size=40)


@common
@given(left=pairs_st, right=pairs_st, n=parts)
def test_inner_join_matches_oracle(left, right, n):
    expected = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
    )
    got = sorted(_CTX.parallelize(left, n).join(_CTX.parallelize(right, n)).collect())
    assert got == expected


@common
@given(left=pairs_st, right=pairs_st, n=parts)
def test_full_outer_join_covers_all_keys(left, right, n):
    got = _CTX.parallelize(left, n).full_outer_join(_CTX.parallelize(right, n)).collect()
    got_keys = {k for k, _ in got}
    assert got_keys == {k for k, _ in left} | {k for k, _ in right}


@common
@given(
    left=st.lists(st.integers(0, 20), max_size=40),
    right=st.lists(st.integers(0, 20), max_size=40),
    n=parts,
)
def test_subtract_matches_oracle(left, right, n):
    expected = sorted(x for x in left if x not in set(right))
    got = sorted(_CTX.parallelize(left, n).subtract(_CTX.parallelize(right, n)).collect())
    assert got == expected


@common
@given(
    left=st.lists(st.integers(0, 20), max_size=40),
    right=st.lists(st.integers(0, 20), max_size=40),
    n=parts,
)
def test_intersection_matches_oracle(left, right, n):
    expected = sorted(set(left) & set(right))
    got = sorted(
        _CTX.parallelize(left, n).intersection(_CTX.parallelize(right, n)).collect()
    )
    assert got == expected


@common
@given(data=st.lists(st.floats(-100, 100), min_size=1, max_size=60), n=parts)
def test_stats_matches_numpy(data, n):
    import numpy as np

    st_out = _CTX.parallelize(data, n).stats()
    assert st_out.count == len(data)
    assert st_out.mean == pytest.approx(float(np.mean(data)), abs=1e-9)
    assert st_out.stdev == pytest.approx(float(np.std(data)), abs=1e-9)


@common
@given(data=ints, n=parts, k=st.integers(1, 8))
def test_take_ordered_matches_sorted_prefix(data, n, k):
    assert _CTX.parallelize(data, n).take_ordered(k) == sorted(data)[:k]
