"""FlightRecorder: ring semantics, filters, slow log, post-mortems."""

import pytest

from repro.engine import Context, EngineError, trace_scope
from repro.engine.listener import EventBus, JobEnd, JobStart, TaskEnd
from repro.obs.flight import FlightRecorder


def _post_tasks(recorder: FlightRecorder, n: int, **kw) -> None:
    for i in range(n):
        recorder.on_event(TaskEnd(stage_id=0, partition=i, wall_s=0.0, attempts=1, **kw))


# ---------------------------------------------------------------------------
# Construction / validation


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            FlightRecorder(slow_threshold_s=-0.1)

    def test_repr_mentions_counts(self):
        r = FlightRecorder(capacity=8)
        _post_tasks(r, 3)
        assert "3/8" in repr(r)


# ---------------------------------------------------------------------------
# Ring behaviour


class TestRing:
    def test_rollover_keeps_newest_and_counts_dropped(self):
        r = FlightRecorder(capacity=4)
        _post_tasks(r, 10)
        assert len(r) == 4
        events = r.events()
        assert [d["partition"] for d in events] == [6, 7, 8, 9]
        # seq is the global monotone id, not the ring index
        assert [d["seq"] for d in events] == [6, 7, 8, 9]
        snap = r.snapshot()
        assert snap["total_seen"] == 10
        assert snap["recorded"] == 4
        assert snap["dropped"] == 6

    def test_snapshot_keys_locked_down(self):
        snap = FlightRecorder().snapshot()
        assert set(snap) == {
            "capacity",
            "recorded",
            "total_seen",
            "dropped",
            "slow_threshold_s",
            "slow_recorded",
        }

    def test_clear_forgets_events_but_not_total(self):
        r = FlightRecorder(capacity=8)
        _post_tasks(r, 5)
        r.clear()
        assert len(r) == 0
        assert r.events() == [] and r.slow() == []
        snap = r.snapshot()
        assert snap["total_seen"] == 5
        assert snap["dropped"] == 0  # cleared, not evicted
        _post_tasks(r, 2)
        assert [d["seq"] for d in r.events()] == [5, 6]


# ---------------------------------------------------------------------------
# Filters and views


class TestViews:
    def test_kind_filter_and_limit_keep_newest(self):
        r = FlightRecorder()
        r.on_event(JobStart(job_id=1))
        _post_tasks(r, 5)
        r.on_event(JobEnd(job_id=1, wall_s=0.0))
        assert [d["kind"] for d in r.events(kind="job_start")] == ["job_start"]
        limited = r.events(kind="task_end", limit=2)
        assert [d["partition"] for d in limited] == [3, 4]

    def test_tail_is_newest_window_oldest_first(self):
        r = FlightRecorder()
        _post_tasks(r, 10)
        tail = r.tail(3)
        assert [d["partition"] for d in tail] == [7, 8, 9]

    def test_trace_filter_and_summary(self):
        r = FlightRecorder()
        with trace_scope(name="op") as tc:
            r.on_event(JobStart(job_id=1))
            r.on_event(TaskEnd(stage_id=0, partition=0, wall_s=0.01, attempts=1))
            r.on_event(JobEnd(job_id=1, wall_s=0.02))
        r.on_event(JobStart(job_id=2))  # different (empty) trace

        assert r.traces() == [tc.trace_id]
        assert len(r.trace(tc.trace_id)) == 3
        summary = r.trace_summary(tc.trace_id)
        assert summary["trace_id"] == tc.trace_id
        assert summary["events"] == 3
        assert summary["kinds"] == {"job_start": 1, "task_end": 1, "job_end": 1}
        assert summary["wall_span_s"] >= 0.0
        assert summary["first_wall"] <= summary["last_wall"]

    def test_trace_summary_of_unknown_trace_is_empty(self):
        summary = FlightRecorder().trace_summary("deadbeef")
        assert summary["events"] == 0
        assert summary["first_wall"] is None
        assert summary["wall_span_s"] == 0.0


# ---------------------------------------------------------------------------
# Slow-op log


class TestSlowLog:
    def test_slow_events_copied_to_slow_log(self):
        r = FlightRecorder(slow_threshold_s=0.05)
        r.on_event(TaskEnd(stage_id=0, partition=0, wall_s=0.01, attempts=1))
        r.on_event(TaskEnd(stage_id=0, partition=1, wall_s=0.5, attempts=1))
        r.on_event(JobStart(job_id=1))  # no wall_s at all
        slow = r.slow()
        assert [d["partition"] for d in slow] == [1]
        assert r.snapshot()["slow_recorded"] == 1

    def test_slow_log_survives_ring_rollover(self):
        r = FlightRecorder(capacity=4, slow_threshold_s=0.05)
        r.on_event(TaskEnd(stage_id=0, partition=99, wall_s=1.0, attempts=1))
        _post_tasks(r, 10)  # roll the slow event out of the ring
        assert all(d["partition"] != 99 for d in r.events())
        assert [d["partition"] for d in r.slow()] == [99]


# ---------------------------------------------------------------------------
# Bus + context integration


def test_bus_registration_records_posts():
    bus = EventBus()
    r = bus.register(FlightRecorder())
    bus.post(JobStart(job_id=7))
    assert [d["kind"] for d in r.events()] == ["job_start"]


def test_failed_job_gets_post_mortem_window():
    with Context(mode="serial", parallelism=2, max_task_retries=0) as ctx:
        def boom(x):
            raise RuntimeError("kaput")

        with pytest.raises(EngineError) as excinfo:
            ctx.range(4, num_partitions=2).map(boom).collect()

        pm = excinfo.value.post_mortem
        assert isinstance(pm, list) and pm
        kinds = {d["kind"] for d in pm}
        assert "job_start" in kinds
        assert all("seq" in d and "wall" in d for d in pm)


def test_recorder_disabled_by_config_leaves_no_post_mortem():
    from repro.engine import EngineConfig

    cfg = EngineConfig(mode="serial", flight_recorder=False, max_task_retries=0)
    with Context(config=cfg) as ctx:
        assert ctx.flight_recorder is None
        def boom(x):
            raise RuntimeError("kaput")

        with pytest.raises(EngineError) as excinfo:
            ctx.range(4, num_partitions=2).map(boom).collect()
        assert excinfo.value.post_mortem is None
