"""Chrome trace-event export and the structural validator."""

import json

import pytest

from repro.engine import Context, trace_scope
from repro.obs.chrome import chrome_trace, read_jsonl_records, validate_chrome_trace


def _events(doc, ph=None):
    evs = doc["traceEvents"]
    return [e for e in evs if ph is None or e["ph"] == ph]


def _task_end(wall, wall_s, t0_wall, worker, **kw):
    d = {
        "kind": "task_end",
        "time": 0.0,
        "wall": wall,
        "wall_s": wall_s,
        "t0_wall": t0_wall,
        "worker": worker,
        "trace_id": "t" * 16,
        "span_id": "s" * 16,
        "phase": "",
        "stage_id": 0,
        "attempts": 1,
    }
    d.update(kw)
    return d


# ---------------------------------------------------------------------------
# Exporter on synthetic records


class TestExporter:
    def test_task_slices_go_on_per_worker_tracks(self):
        recs = [
            _task_end(100.02, 0.02, 100.0, "41/w0", partition=0),
            _task_end(100.05, 0.02, 100.03, "42/w0", partition=1),
        ]
        doc = chrome_trace(recs, title="unit")
        xs = _events(doc, "X")
        assert len(xs) == 2
        assert {e["pid"] for e in xs} == {41, 42}
        assert all(e["tid"] >= 2 for e in xs), "worker tids must not collide with driver"
        # process/thread metadata exists for both workers
        meta_names = [
            (e["pid"], e["args"]["name"])
            for e in _events(doc, "M")
            if e["name"] == "process_name"
        ]
        assert (41, "unit worker pid 41") in meta_names
        assert (42, "unit worker pid 42") in meta_names

    def test_cross_process_ordering_uses_worker_wall_stamp(self):
        """Satellite regression for the clock fix: slices are placed at
        the worker-side epoch stamp (``t0_wall``), so a task that
        started *earlier* in another process renders earlier even when
        the driver saw its completion later."""
        recs = [
            _task_end(wall=100.50, wall_s=0.40, t0_wall=100.10, worker="41/w0", partition=0),
            _task_end(wall=100.45, wall_s=0.05, t0_wall=100.40, worker="42/w0", partition=1),
        ]
        doc = chrome_trace(recs)
        xs = sorted(_events(doc, "X"), key=lambda e: e["ts"])
        assert xs[0]["args"]["partition"] == 0, "earlier t0_wall must render first"
        # normalized to the earliest record: first slice opens at ts == 0
        assert xs[0]["ts"] == 0.0
        assert xs[1]["ts"] == pytest.approx((100.40 - 100.10) * 1e6, abs=1)
        assert xs[0]["dur"] == pytest.approx(0.40 * 1e6, abs=1)

    def test_driver_slices_derive_start_from_wall_minus_duration(self):
        recs = [
            {"kind": "job_end", "wall": 10.0, "wall_s": 2.0, "job_id": 3,
             "trace_id": "", "span_id": "", "phase": ""},
        ]
        doc = chrome_trace(recs)
        (x,) = _events(doc, "X")
        assert x["pid"] == 0 and x["tid"] == 0
        assert x["ts"] == 0.0  # base is wall - wall_s = 8.0
        assert x["dur"] == pytest.approx(2e6)
        assert x["name"] == "job 3"

    def test_serve_request_slice_named_by_endpoint(self):
        recs = [
            {"kind": "request_end", "wall": 5.0, "wall_s": 0.5,
             "endpoint": "/screen", "status": 200, "source": "computed",
             "trace_id": "", "span_id": "", "phase": ""},
        ]
        (x,) = _events(chrome_trace(recs), "X")
        assert x["name"] == "request /screen"

    def test_tracer_spans_emit_balanced_nested_pairs(self):
        spans = [
            {"record": "span", "phase": "selection", "label": "outer",
             "t0_wall": 100.0, "wall_s": 1.0, "self_s": 0.5},
            {"record": "span", "phase": "lattice-op", "label": "inner",
             "t0_wall": 100.2, "wall_s": 0.3, "self_s": 0.3},
        ]
        doc = chrome_trace(spans)
        bs, es = _events(doc, "B"), _events(doc, "E")
        assert [b["name"] for b in bs] == ["outer", "inner"]
        assert len(es) == 2
        assert all(e["tid"] == 1 for e in bs + es), "phases live on the phases track"
        # inner closes (100.5) before outer (101.0)
        assert es[0]["ts"] < es[1]["ts"]
        validate_chrome_trace(doc)

    def test_counters_accumulate(self):
        recs = [
            {"kind": "cache_miss", "wall": 1.0, "partition": 0,
             "trace_id": "", "span_id": "", "phase": ""},
            {"kind": "cache_hit", "wall": 2.0, "partition": 0,
             "trace_id": "", "span_id": "", "phase": ""},
            {"kind": "cache_hit", "wall": 3.0, "partition": 0,
             "trace_id": "", "span_id": "", "phase": ""},
        ]
        cs = _events(chrome_trace(recs), "C")
        assert [c["args"].get("hits", 0.0) for c in cs] == [0.0, 1.0, 2.0]
        assert cs[0]["args"]["misses"] == 1.0

    def test_retry_renders_as_instant(self):
        recs = [
            {"kind": "task_retry", "wall": 1.0, "stage_id": 2, "partition": 1,
             "attempt": 1, "error": "boom", "trace_id": "", "span_id": "", "phase": ""},
        ]
        (i,) = _events(chrome_trace(recs), "i")
        assert i["name"] == "retry s2p1"

    def test_unknown_and_malformed_records_are_skipped(self):
        doc = chrome_trace([
            {"record": "stage", "stage": 1},      # tracer stage summary
            {"kind": "job_start", "wall": 1.0,
             "trace_id": "", "span_id": "", "phase": ""},  # no slice/counter kind
            "not-a-dict",
            {},
        ])
        assert _events(doc, "X") == []
        validate_chrome_trace(doc)


# ---------------------------------------------------------------------------
# Validator


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([1, 2])

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})

    def test_rejects_unknown_ph_and_bad_fields(self):
        doc = {"traceEvents": [
            {"ph": "Z", "pid": 0, "tid": 0, "ts": 0, "name": "x"},
            {"ph": "X", "pid": "zero", "tid": 0, "ts": 0, "name": "x", "dur": -1},
            {"ph": "E", "pid": 0, "tid": 0, "ts": 0},
        ]}
        with pytest.raises(ValueError) as excinfo:
            validate_chrome_trace(doc)
        msg = str(excinfo.value)
        assert "unknown ph" in msg
        assert "pid must be an int" in msg
        assert "dur >= 0" in msg
        assert "E without matching B" in msg

    def test_rejects_unclosed_b(self):
        doc = {"traceEvents": [{"ph": "B", "pid": 0, "tid": 0, "ts": 0, "name": "x"}]}
        with pytest.raises(ValueError, match="unclosed B"):
            validate_chrome_trace(doc)

    def test_counts_valid_events(self):
        doc = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 0, "tid": 0, "args": {"name": "p"}},
            {"ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": 2.0, "name": "x"},
        ]}
        assert validate_chrome_trace(doc) == 2


# ---------------------------------------------------------------------------
# JSONL loading + end-to-end


def test_read_jsonl_records_skips_blank_lines(tmp_path):
    p = tmp_path / "t.jsonl"
    p.write_text('{"a": 1}\n\n{"b": 2}\n', encoding="utf-8")
    assert read_jsonl_records(p) == [{"a": 1}, {"b": 2}]


@pytest.mark.parametrize("mode", ["serial", "processes"])
def test_live_recorder_round_trips_through_exporter(mode, tmp_path):
    with Context(mode=mode, parallelism=2, shuffle_partitions=2) as ctx:
        with trace_scope(name="e2e"):
            pairs = ctx.range(20, num_partitions=2).map(lambda x: (x % 4, 1))
            assert len(pairs.reduce_by_key(lambda a, b: a + b).collect()) == 4
        records = ctx.flight_recorder.events()

    doc = chrome_trace(records, title="e2e")
    n = validate_chrome_trace(doc)
    assert n > len(records) // 2  # slices+counters+meta, some kinds skipped
    # it must survive an actual json round-trip (what the CLI writes)
    out = tmp_path / "trace.json"
    out.write_text(json.dumps(doc), encoding="utf-8")
    reloaded = json.loads(out.read_text(encoding="utf-8"))
    assert validate_chrome_trace(reloaded) == n
    phs = {e["ph"] for e in reloaded["traceEvents"]}
    assert "X" in phs and "M" in phs
    if mode == "processes":
        pids = {e["pid"] for e in reloaded["traceEvents"] if e["ph"] == "X"}
        assert any(p != 0 for p in pids), "worker tracks expected under fork"
