"""Tracer: span self-time accounting, stage telemetry, JSONL export."""

import json
import time

import pytest

from repro.engine import Context
from repro.obs import (
    PHASE_ANALYSIS,
    PHASE_LATTICE,
    PHASE_SELECTION,
    Tracer,
    current_tracer,
    trace_phase,
    traced,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert current_tracer() is None
    yield
    assert current_tracer() is None, "a test left a tracer installed"


class TestSpans:
    def test_nested_spans_self_time_partitions_wall(self):
        t = Tracer()
        with t.phase(PHASE_SELECTION, "outer"):
            time.sleep(0.02)
            with t.phase(PHASE_LATTICE, "inner"):
                time.sleep(0.02)
        outer = next(s for s in t.spans if s.label == "outer")
        inner = next(s for s in t.spans if s.label == "inner")
        assert inner.depth == 1 and outer.depth == 0
        # The inner span's wall is excluded from the outer's self time.
        assert outer.self_s == pytest.approx(outer.wall_s - inner.wall_s, abs=1e-3)
        assert t.phase_wall(PHASE_LATTICE) == pytest.approx(inner.self_s)
        assert t.phase_wall(PHASE_SELECTION) == pytest.approx(outer.self_s)

    def test_same_phase_nesting_does_not_double_count(self):
        t = Tracer()
        with t.phase(PHASE_LATTICE, "a"):
            with t.phase(PHASE_LATTICE, "b"):
                time.sleep(0.01)
        total = t.phase_wall(PHASE_LATTICE)
        walls = {s.label: s.wall_s for s in t.spans}
        # Sum of self times equals the outermost wall, not the sum of walls.
        assert total == pytest.approx(walls["a"], abs=1e-3)
        assert total < walls["a"] + walls["b"]

    def test_span_cap_keeps_totals(self):
        t = Tracer(keep_spans=3)
        for _ in range(10):
            with t.phase(PHASE_ANALYSIS, "x"):
                pass
        assert len(t.spans) == 3
        assert t.totals()[PHASE_ANALYSIS]["spans"] == 10

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.phase(PHASE_LATTICE, "boom"):
                raise ValueError("x")
        assert len(t.spans) == 1
        assert t._stack() == []


class TestModuleDispatch:
    def test_trace_phase_noop_without_installed_tracer(self):
        with trace_phase(PHASE_LATTICE, "ignored"):
            pass  # must not raise, must not record anywhere

    def test_install_uninstall_and_context_manager(self):
        t = Tracer()
        with t:
            assert current_tracer() is t
            with trace_phase(PHASE_SELECTION, "live"):
                pass
        assert current_tracer() is None
        assert [s.label for s in t.spans] == ["live"]

    def test_uninstall_does_not_clobber_other_tracer(self):
        a, b = Tracer(), Tracer()
        a.install()
        b.install()
        a.uninstall()  # b is active; a must leave it alone
        assert current_tracer() is b
        b.uninstall()

    def test_traced_decorator(self):
        @traced(PHASE_ANALYSIS)
        def work(x):
            return x * 2

        assert work(3) == 6  # uninstalled: plain call
        t = Tracer()
        with t:
            assert work(4) == 8
        assert [(s.phase, s.label) for s in t.spans] == [(PHASE_ANALYSIS, "work")]


class TestEngineAttribution:
    def test_jobs_and_tasks_attributed_to_open_phase(self):
        t = Tracer()
        with Context(mode="serial") as ctx:
            t.attach(ctx)
            try:
                with t.phase(PHASE_SELECTION, "sel"):
                    ctx.range(10, num_partitions=2).sum()
                ctx.range(10, num_partitions=2).sum()  # untagged
            finally:
                t.detach(ctx)
        totals = t.totals()
        assert totals[PHASE_SELECTION]["jobs"] == 1
        assert totals[PHASE_SELECTION]["tasks"] == 2
        assert totals[""]["jobs"] == 1


class TestStageTelemetry:
    def test_stage_records_counters_and_phase_breakdown(self):
        t = Tracer()
        t.begin_screen_stage(0)
        with t.phase(PHASE_SELECTION, "pick"):
            time.sleep(0.01)
        st = t.end_screen_stage(
            pools_proposed=3, tests_run=3, entropy_drop=0.5, states_pruned=7
        )
        assert st is not None
        assert (st.pools_proposed, st.tests_run, st.states_pruned) == (3, 3, 7)
        assert st.entropy_drop == 0.5
        assert st.wall_s > 0
        assert PHASE_SELECTION in st.phase_wall
        assert t.stages == [st]

    def test_end_without_begin_returns_none(self):
        assert Tracer().end_screen_stage() is None

    def test_phase_wall_is_per_stage_delta(self):
        t = Tracer()
        with t.phase(PHASE_LATTICE, "before"):
            time.sleep(0.01)
        t.begin_screen_stage(1)
        st = t.end_screen_stage()
        # Activity before the stage began must not leak into its breakdown.
        assert PHASE_LATTICE not in st.phase_wall


class TestExport:
    def test_dump_jsonl_round_trip(self, tmp_path):
        t = Tracer()
        with t.phase(PHASE_LATTICE, "upd"):
            pass
        t.begin_screen_stage(0)
        t.end_screen_stage(pools_proposed=1, tests_run=1)
        out = tmp_path / "trace.jsonl"
        n = t.dump_jsonl(out)
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == n == 3  # 1 span + 1 stage + summary
        by_kind = {r["record"] for r in records}
        assert by_kind == {"span", "stage", "summary"}
        summary = next(r for r in records if r["record"] == "summary")
        assert PHASE_LATTICE in summary["phases"]

    def test_summary_text_mentions_phases_and_stages(self):
        t = Tracer()
        with t.phase(PHASE_ANALYSIS, "marg"):
            pass
        t.begin_screen_stage(2)
        t.end_screen_stage(tests_run=4)
        text = t.summary()
        assert PHASE_ANALYSIS in text
        assert "stage" in text

    def test_clear_resets_everything(self):
        t = Tracer()
        with t.phase(PHASE_LATTICE, "x"):
            pass
        t.begin_screen_stage(0)
        t.end_screen_stage()
        t.clear()
        assert t.spans == [] and t.stages == []
        assert t.totals() == {}


class TestSbgtIntegration:
    def test_screen_produces_phase_spans_and_stage_telemetry(self):
        from repro.bayes.dilution import BinaryErrorModel
        from repro.bayes.priors import PriorSpec
        from repro.halving.policy import BHAPolicy
        from repro.sbgt.session import SBGTSession

        tracer = Tracer()
        with Context(mode="serial") as ctx:
            tracer.attach(ctx)
            with tracer:
                session = SBGTSession(
                    ctx, PriorSpec.uniform(6, 0.1), BinaryErrorModel(0.99, 0.99)
                )
                session.run_screen(BHAPolicy(), rng=0)
            tracer.detach(ctx)

        totals = tracer.totals()
        for phase in (PHASE_LATTICE, PHASE_SELECTION, PHASE_ANALYSIS):
            assert phase in totals, f"no spans recorded for {phase}"
            assert totals[phase]["spans"] > 0
        assert tracer.stages, "screen stages should emit telemetry"
        first = tracer.stages[0]
        assert first.tests_run > 0
        assert first.wall_s > 0
