"""Sampling profiler contract: capture, folding, relay, export.

The sampler's collapsed-stack output feeds the flamegraph renderer and
``flamegraph.pl``-style tooling, so the folding format (root-first,
``file:func`` frames, ``;`` separators) and the worker relay primitives
(:func:`drain` / :func:`merge_folded` / :func:`worker_sync`) are pinned
here.
"""

import time

import pytest

from repro.obs.flamegraph import flamegraph_html, folded_lines
from repro.obs.sampler import (
    MAX_FRAMES,
    Sampler,
    _fold_stack,
    current_profile_hz,
    current_sampler,
    merge_into_installed,
    worker_sync,
)


def _spin(seconds: float) -> None:
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < seconds:
        pass


class TestSampling:
    def test_rejects_non_positive_hz(self):
        with pytest.raises(ValueError):
            Sampler(hz=0)
        with pytest.raises(ValueError):
            Sampler(hz=-5)

    def test_captures_busy_frame(self):
        sampler = Sampler(hz=400).start()
        try:
            _spin(0.1)
        finally:
            sampler.stop()
        folded = sampler.folded()
        assert sampler.sample_count > 0
        assert any("_spin" in stack for stack in folded)

    def test_stacks_are_root_first(self):
        sampler = Sampler(hz=400).start()
        try:
            _spin(0.1)
        finally:
            sampler.stop()
        stack = next(s for s in sampler.folded() if "_spin" in s)
        frames = stack.split(";")
        # The busy leaf sits at the end, the interpreter root at the start.
        assert "_spin" in frames[-1]
        assert frames.index(next(f for f in frames if "_spin" in f)) > 0

    def test_start_is_idempotent(self):
        sampler = Sampler(hz=100).start()
        try:
            assert sampler.start() is sampler
            assert sampler.running
        finally:
            sampler.stop()
        assert not sampler.running

    def test_snapshot_shape(self):
        sampler = Sampler(hz=50)
        snap = sampler.snapshot()
        assert set(snap) == {"hz", "running", "ticks", "samples", "stacks"}
        assert snap["hz"] == 50.0
        assert snap["running"] is False

    def test_deep_recursion_is_truncated(self):
        class Frame:
            def __init__(self, back, name):
                self.f_back = back
                self.f_code = type(
                    "Code", (), {"co_filename": "deep.py", "co_name": name}
                )()

        frame = None
        for i in range(MAX_FRAMES * 2):
            frame = Frame(frame, f"f{i}")
        folded = _fold_stack(frame)
        frames = folded.split(";")
        assert frames[0] == "<truncated>"
        assert len(frames) == MAX_FRAMES + 1
        # Leaf-most frames survive truncation.
        assert frames[-1] == f"deep.py:f{MAX_FRAMES * 2 - 1}"


class TestRelay:
    def test_drain_pops_and_merge_restores(self):
        sampler = Sampler(hz=100)
        sampler.merge_folded([("a;b", 3), ("a;c", 1)])
        items = sampler.drain()
        assert dict(items) == {"a;b": 3, "a;c": 1}
        assert sampler.folded() == {}
        sampler.merge_folded(items)
        sampler.merge_folded([("a;b", 2)])
        assert sampler.folded() == {"a;b": 5, "a;c": 1}

    def test_install_registry(self):
        assert current_sampler() is None
        assert current_profile_hz() == 0.0
        sampler = Sampler(hz=100).start().install()
        try:
            assert current_sampler() is sampler
            assert current_profile_hz() == 100.0
            merge_into_installed([("x;y", 4)])
            assert sampler.folded()["x;y"] == 4
        finally:
            sampler.stop()
            sampler.uninstall()
        assert current_sampler() is None
        # merging with nothing installed is a no-op, not an error
        merge_into_installed([("x;y", 1)])

    def test_stopped_sampler_reports_zero_hz(self):
        sampler = Sampler(hz=100).install()
        try:
            assert current_profile_hz() == 0.0  # installed but not running
        finally:
            sampler.uninstall()

    def test_worker_sync_lifecycle(self):
        # Positive rate: a worker-local sampler spins up and drains.
        assert worker_sync(200.0) == []  # fresh sampler has nothing yet
        _spin(0.05)
        drained = worker_sync(200.0)
        assert sum(c for _, c in drained) > 0
        # Zero rate: sampler stops, residue drains exactly once.
        worker_sync(0.0)
        assert worker_sync(0.0) == []


class TestExport:
    def test_dump_collapsed(self, tmp_path):
        sampler = Sampler(hz=100)
        sampler.merge_folded([("main;work", 7), ("main;idle", 2)])
        path = tmp_path / "profile.collapsed"
        assert sampler.dump_collapsed(path) == 2
        lines = path.read_text().splitlines()
        assert lines == ["main;idle 2", "main;work 7"]  # sorted, "stack count"

    def test_flamegraph_html_self_contained(self):
        folded = {"main;select_pool": 5, "main;update_posterior": 3, "main": 1}
        html = flamegraph_html(folded, title="test profile")
        assert html.startswith("<!DOCTYPE html>")
        assert "test profile" in html
        assert "select_pool" in html and "update_posterior" in html
        # Self-contained: no external scripts or stylesheets.
        assert "src=" not in html and "href=" not in html

    def test_folded_lines_round_trip(self):
        folded = {"b;c": 2, "a": 1}
        assert folded_lines(folded) == ["a 1", "b;c 2"]

    def test_dump_flamegraph(self, tmp_path):
        sampler = Sampler(hz=100)
        sampler.merge_folded([("main;work", 7)])
        path = tmp_path / "profile.html"
        sampler.dump_flamegraph(path, title="t")
        assert "main" in path.read_text()
