"""MetricsHub contract: instruments, labels, exemplars, exposition.

The hub is the single vocabulary every layer folds into, so its
semantics are pinned here: get-or-create declaration, label handling,
exemplar stamping from the active trace scope, the JSON snapshot shape,
and a byte-stable Prometheus text exposition that the bundled validator
accepts.
"""

import pytest

from repro.engine.listener import CacheHit, CacheMiss, ShuffleWrite, TaskRetry
from repro.engine.tracing import trace_scope
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HubMetricsListener,
    MetricsHub,
    bucket_quantile,
    render_prometheus,
    validate_prometheus_text,
)


class TestInstruments:
    def test_counter_counts(self):
        hub = MetricsHub()
        c = hub.counter("repro_x_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        hub = MetricsHub()
        c = hub.counter("repro_x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_counter_name_must_end_total(self):
        hub = MetricsHub()
        with pytest.raises(ValueError, match="_total"):
            hub.counter("repro_x_count")

    def test_gauge_set_and_ratchet(self):
        hub = MetricsHub()
        g = hub.gauge("repro_depth")
        g.set(5)
        g.dec(2)
        assert g.value == pytest.approx(3.0)
        g.set_max(10)
        g.set_max(7)  # ratchet: never goes down
        assert g.value == pytest.approx(10.0)

    def test_histogram_buckets_sum_count_max(self):
        hub = MetricsHub()
        h = hub.histogram("repro_lat_seconds", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.counts == [1, 1, 1]  # one overflow
        assert child.count == 3
        assert child.sum == pytest.approx(7.0)
        assert child.max == pytest.approx(5.0)

    def test_invalid_metric_name_rejected(self):
        hub = MetricsHub()
        with pytest.raises(ValueError):
            hub.gauge("repro bad name")


class TestLabels:
    def test_label_children_are_independent(self):
        hub = MetricsHub()
        c = hub.counter("repro_req_total", labels=("code",))
        c.labels(code=200).inc(3)
        c.labels(code=404).inc()
        assert c.labels(code=200).value == 3
        assert c.labels(code=404).value == 1

    def test_label_mismatch_raises(self):
        hub = MetricsHub()
        c = hub.counter("repro_req_total", labels=("code",))
        with pytest.raises(ValueError):
            c.labels(status=200)

    def test_solo_access_with_labels_raises(self):
        hub = MetricsHub()
        c = hub.counter("repro_req_total", labels=("code",))
        with pytest.raises(ValueError, match="labels"):
            c.inc()

    def test_series_sorted_by_label_values(self):
        hub = MetricsHub()
        c = hub.counter("repro_req_total", labels=("code",))
        for code in (500, 200, 404):
            c.labels(code=code).inc()
        assert [labels["code"] for labels, _ in c.series()] == ["200", "404", "500"]


class TestDeclaration:
    def test_get_or_create_returns_same_family(self):
        hub = MetricsHub()
        assert hub.counter("repro_x_total") is hub.counter("repro_x_total")

    def test_kind_mismatch_raises(self):
        hub = MetricsHub()
        hub.gauge("repro_x")
        with pytest.raises(ValueError, match="already declared"):
            hub.histogram("repro_x")

    def test_labelset_mismatch_raises(self):
        hub = MetricsHub()
        hub.counter("repro_x_total", labels=("a",))
        with pytest.raises(ValueError, match="already declared"):
            hub.counter("repro_x_total", labels=("b",))

    def test_get_accessor(self):
        hub = MetricsHub()
        assert hub.get("repro_x_total") is None
        fam = hub.counter("repro_x_total")
        assert hub.get("repro_x_total") is fam


class TestExemplars:
    def test_observe_stamps_active_trace_id(self):
        hub = MetricsHub()
        h = hub.histogram("repro_lat_seconds")
        with trace_scope(name="req") as tc:
            h.observe(0.2)
        child = h.labels()
        assert child.exemplar == {"trace_id": tc.trace_id, "value": 0.2}

    def test_no_scope_no_exemplar(self):
        hub = MetricsHub()
        h = hub.histogram("repro_lat_seconds")
        h.observe(0.2)
        assert h.labels().exemplar is None

    def test_explicit_trace_id_wins(self):
        hub = MetricsHub()
        h = hub.histogram("repro_lat_seconds")
        h.observe(0.2, trace_id="tid-42")
        assert h.labels().exemplar["trace_id"] == "tid-42"

    def test_exemplar_rides_snapshot_not_exposition(self):
        hub = MetricsHub()
        hub.histogram("repro_lat_seconds").observe(0.2, trace_id="tid-42")
        assert (
            hub.snapshot()["repro_lat_seconds"]["series"][0]["exemplar"]["trace_id"]
            == "tid-42"
        )
        assert "tid-42" not in hub.render_prometheus()


class TestSnapshotAndExposition:
    def _hub(self) -> MetricsHub:
        hub = MetricsHub()
        c = hub.counter("repro_req_total", "requests", labels=("code",))
        c.labels(code=200).inc(3)
        c.labels(code=404).inc()
        hub.gauge("repro_depth", "queue depth").set(2)
        hub.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.5)
        return hub

    def test_snapshot_shape(self):
        snap = self._hub().snapshot()
        assert set(snap) == {"repro_depth", "repro_lat_seconds", "repro_req_total"}
        req = snap["repro_req_total"]
        assert req["type"] == "counter"
        assert req["labelnames"] == ["code"]
        assert [s["labels"] for s in req["series"]] == [{"code": "200"}, {"code": "404"}]
        lat = snap["repro_lat_seconds"]["series"][0]
        assert lat["buckets"] == [0.1, 1.0]
        assert lat["counts"] == [0, 1, 0]
        assert lat["count"] == 1

    def test_exposition_is_byte_stable_under_fixed_replay(self):
        # The same event history always renders to the same bytes.
        assert self._hub().render_prometheus() == self._hub().render_prometheus()

    def test_exposition_validates(self):
        text = self._hub().render_prometheus()
        assert validate_prometheus_text(text) > 0

    def test_histogram_exposition_is_cumulative_with_inf(self):
        text = self._hub().render_prometheus()
        lines = [ln for ln in text.splitlines() if ln.startswith("repro_lat_seconds")]
        assert 'repro_lat_seconds_bucket{le="0.1"} 0' in lines
        assert 'repro_lat_seconds_bucket{le="1"} 1' in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_lat_seconds_sum 0.5" in lines
        assert "repro_lat_seconds_count 1" in lines

    def test_render_from_snapshot_matches_hub_render(self):
        hub = self._hub()
        assert render_prometheus(hub.snapshot()) == hub.render_prometheus()

    def test_no_timestamps_in_exposition(self):
        for line in self._hub().render_prometheus().splitlines():
            if line.startswith("#"):
                continue
            assert len(line.split(" ")) == 2  # name{labels} value — nothing after


class TestValidator:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            validate_prometheus_text("# TYPE x gauge\nx 1 2 3 extra junk here\n")

    def test_rejects_sample_without_type(self):
        with pytest.raises(ValueError, match="no TYPE"):
            validate_prometheus_text("orphan_metric 1\n")

    def test_rejects_counter_without_total_suffix(self):
        with pytest.raises(ValueError, match="_total"):
            validate_prometheus_text("# TYPE x counter\nx 1\n")

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
        )
        with pytest.raises(ValueError, match="non-cumulative"):
            validate_prometheus_text(text)

    def test_rejects_histogram_without_inf(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 1\n'
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(text)


class TestBucketQuantile:
    def test_empty_distribution(self):
        assert bucket_quantile(0.5, (1.0, 2.0), [0, 0, 0], 0, 0.0) == 0.0

    def test_interpolates_within_bucket(self):
        # 10 samples in (1, 2]: p50 sits halfway through the bucket.
        q = bucket_quantile(0.5, (1.0, 2.0), [0, 10, 0], 10, 2.0)
        assert q == pytest.approx(1.5)

    def test_clamps_to_observed_max(self):
        q = bucket_quantile(1.0, (1.0, 2.0), [0, 1, 0], 1, 1.2)
        assert q == pytest.approx(1.2)

    def test_overflow_reports_max(self):
        q = bucket_quantile(0.9, (1.0, 2.0), [0, 0, 3], 3, 17.0)
        assert q == pytest.approx(17.0)

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestHubMetricsListener:
    def test_folds_bus_only_vocabularies(self):
        hub = MetricsHub()
        listener = HubMetricsListener(hub)
        listener.on_event(TaskRetry(1, 0, 1, "boom"))
        listener.on_event(CacheHit(7, 0))
        listener.on_event(CacheHit(7, 1))
        listener.on_event(CacheMiss(7, 2))
        listener.on_event(ShuffleWrite(3, 0, 10, buffer_bytes=2048))
        assert hub.get("repro_engine_task_retries_total").value == 1
        cache = hub.get("repro_engine_cache_events_total")
        assert cache.labels(event="hit").value == 2
        assert cache.labels(event="miss").value == 1
        shuffle = hub.get("repro_engine_shuffle_bytes_total")
        assert shuffle.labels(direction="write").value == 2048

    def test_does_not_declare_job_families(self):
        # Job/task rollups come from the registry; declaring them here
        # would double-count.
        hub = MetricsHub()
        HubMetricsListener(hub)
        assert hub.get("repro_engine_jobs_total") is None
        assert hub.get("repro_engine_tasks_total") is None
