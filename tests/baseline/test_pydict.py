"""The pure-Python dict baseline against the vectorised implementation."""

import numpy as np
import pytest

from repro.baseline.pydict import PyDictLattice, PyDictPosterior
from repro.bayes.dilution import BinaryErrorModel
from repro.halving.bha import select_halving_pool
from repro.lattice.builder import build_dense_prior
from repro.lattice.ops import down_set_mass, entropy, marginals


@pytest.fixture
def risks():
    return [0.05, 0.2, 0.4, 0.1]


@pytest.fixture
def pair(risks):
    """(dict baseline, numpy reference) over the same prior."""
    return PyDictLattice.from_risks(risks), build_dense_prior(np.array(risks))


class TestFromRisks:
    def test_size(self, pair):
        dict_lat, np_lat = pair
        assert dict_lat.size == np_lat.size == 16

    def test_prior_probs_match(self, pair):
        dict_lat, np_lat = pair
        np_probs = dict(zip(np_lat.masks.tolist(), np_lat.probs()))
        for state, p in dict_lat.probs.items():
            assert p == pytest.approx(np_probs[state], rel=1e-9)

    def test_normalized(self, pair):
        assert pair[0].total_mass() == pytest.approx(1.0)


class TestOperationsMatch:
    def test_marginals(self, pair):
        dict_lat, np_lat = pair
        assert np.allclose(dict_lat.marginals(), marginals(np_lat), atol=1e-10)

    def test_entropy(self, pair):
        dict_lat, np_lat = pair
        assert dict_lat.entropy() == pytest.approx(entropy(np_lat), abs=1e-10)

    def test_down_set_mass(self, pair):
        dict_lat, np_lat = pair
        for pool in (0b0001, 0b0110, 0b1111):
            assert dict_lat.down_set_mass(pool) == pytest.approx(
                down_set_mass(np_lat, pool), abs=1e-12
            )

    def test_bayes_update(self, pair):
        dict_lat, np_lat = pair
        lik = [0.02, 0.7, 0.9]
        dict_lat.bayes_update(0b0011, lik)
        from repro.lattice.ops import posterior_update

        posterior_update(np_lat, 0b0011, np.log(lik))
        np_probs = dict(zip(np_lat.masks.tolist(), np_lat.probs()))
        for state, p in dict_lat.probs.items():
            assert p == pytest.approx(np_probs[state], rel=1e-9)

    def test_halving_selection_matches(self, pair):
        dict_lat, np_lat = pair
        cands = [0b0001, 0b0011, 0b0111, 0b1111, 0b1000]
        d_pool, d_mass, d_gap = dict_lat.select_halving_pool(cands)
        n_pool, n_mass, n_gap = select_halving_pool(
            np_lat, np.array(cands, dtype=np.uint64)
        )
        assert d_pool == n_pool
        assert d_mass == pytest.approx(n_mass, abs=1e-12)

    def test_map_state_matches(self, pair):
        dict_lat, np_lat = pair
        from repro.lattice.ops import map_state

        assert dict_lat.map_state() == map_state(np_lat)

    def test_top_states_ordering(self, pair):
        dict_lat, _ = pair
        top = dict_lat.top_states(5)
        probs = [p for _s, p in top]
        assert probs == sorted(probs, reverse=True)


class TestManipulation:
    def test_condition(self):
        lat = PyDictLattice.from_risks([0.2, 0.3])
        lat.condition(positive_mask=0b01)
        assert all(s & 1 for s in lat.probs)
        assert lat.total_mass() == pytest.approx(1.0)

    def test_condition_contradiction_raises(self):
        lat = PyDictLattice(1, {0: 1.0})  # only the all-negative state
        with pytest.raises(ValueError):
            lat.condition(positive_mask=0b1)

    def test_prune_keeps_mass(self):
        lat = PyDictLattice.from_risks([0.05] * 8)
        dropped = lat.prune(0.01)
        assert dropped > 0
        assert lat.total_mass() == pytest.approx(1.0)

    def test_empty_lattice_rejected(self):
        with pytest.raises(ValueError):
            PyDictLattice(2, {})


class TestPyDictPosterior:
    def test_classify(self):
        post = PyDictPosterior([0.1, 0.1], BinaryErrorModel(0.99, 0.99))
        for _ in range(6):
            post.update([0], True)
            post.update([1], False)
        statuses = post.classify()
        assert statuses == ["positive", "negative"]

    def test_num_tests(self):
        post = PyDictPosterior([0.1], BinaryErrorModel())
        post.update([0], False)
        post.update(0b1, False)
        assert post.num_tests == 2
