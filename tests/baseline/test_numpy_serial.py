"""NumPy-serial runner matches the Posterior implementation."""

import numpy as np
import pytest

from repro.baseline.numpy_serial import NumpySerialRunner
from repro.bayes.dilution import DilutionErrorModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec


@pytest.fixture
def prior():
    return PriorSpec(np.array([0.1, 0.3, 0.05, 0.2]))


@pytest.fixture
def model():
    return DilutionErrorModel(0.97, 0.99, 0.4)


class TestNumpySerialRunner:
    def test_update_matches_posterior(self, prior, model):
        runner = NumpySerialRunner(prior, model)
        post = Posterior.from_prior(prior, model)
        for pool, outcome in [(0b0011, True), (0b1100, False)]:
            runner.update(pool, outcome)
            post.update(pool, outcome)
        assert np.allclose(runner.marginals(), post.marginals(), atol=1e-12)
        assert runner.entropy() == pytest.approx(post.entropy(), abs=1e-12)

    def test_halving_matches(self, prior, model):
        runner = NumpySerialRunner(prior, model)
        post = Posterior.from_prior(prior, model)
        cands = [0b0001, 0b0011, 0b0111, 0b1111]
        from repro.halving.bha import select_halving_pool

        assert runner.select_halving_pool(cands) == select_halving_pool(
            post.space, np.array(cands, dtype=np.uint64)
        )

    def test_counts_tests(self, prior, model):
        runner = NumpySerialRunner(prior, model)
        runner.update(0b1, False)
        assert runner.num_tests == 1

    def test_top_states(self, prior, model):
        runner = NumpySerialRunner(prior, model)
        top = runner.top_states(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_n_items(self, prior, model):
        assert NumpySerialRunner(prior, model).n_items == 4
