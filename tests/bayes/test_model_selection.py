"""Bayes-factor model comparison and evidence export."""

import json

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel, PerfectTest
from repro.bayes.model_selection import (
    compare_models,
    format_comparison,
    replay_log_evidence,
)
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec
from repro.simulate.population import make_cohort
from repro.simulate.testing import TestLab


def generate_trail(prior, true_model, rng_seed, pools):
    """Simulate a fixed pool schedule under the true model."""
    cohort = make_cohort(prior, rng=rng_seed)
    lab = TestLab(true_model, cohort.truth_mask, rng=rng_seed)
    return [(pool, lab.run(pool)) for pool in pools]


POOLS = [0b00001111, 0b11110000, 0b00110011, 0b01010101, 0b11111111, 0b00000011]


class TestReplayLogEvidence:
    def test_matches_posterior_evidence(self):
        prior = PriorSpec.uniform(8, 0.1)
        model = BinaryErrorModel(0.95, 0.98)
        trail = generate_trail(prior, model, 3, POOLS)
        direct = replay_log_evidence(prior, model, trail)
        post = Posterior.from_prior(prior, model)
        for pool, outcome in trail:
            post.update(pool, outcome)
        assert direct == pytest.approx(post.log.log_evidence, abs=1e-12)

    def test_finite_for_possible_data(self):
        prior = PriorSpec.uniform(8, 0.1)
        model = BinaryErrorModel(0.9, 0.9)
        trail = generate_trail(prior, model, 0, POOLS)
        assert np.isfinite(replay_log_evidence(prior, model, trail))


class TestCompareModels:
    def _candidates(self):
        return {
            "no-dilution": BinaryErrorModel(0.98, 0.99),
            "mild-dilution": DilutionErrorModel(0.98, 0.99, 0.3),
            "strong-dilution": DilutionErrorModel(0.98, 0.99, 1.2),
        }

    def test_true_model_wins_on_average(self):
        prior = PriorSpec.uniform(8, 0.25)  # enough positives to dilute
        true = DilutionErrorModel(0.98, 0.99, 1.2)
        wins = 0
        trials = 12
        for seed in range(trials):
            trail = generate_trail(prior, true, seed, POOLS * 3)
            best = compare_models(prior, self._candidates(), trail)[0]
            wins += best.name == "strong-dilution"
        assert wins >= trials * 0.6

    def test_sorted_by_evidence(self):
        prior = PriorSpec.uniform(8, 0.1)
        trail = generate_trail(prior, BinaryErrorModel(0.98, 0.99), 1, POOLS)
        scored = compare_models(prior, self._candidates(), trail)
        evs = [m.log_evidence for m in scored]
        assert evs == sorted(evs, reverse=True)

    def test_bayes_factor(self):
        from repro.bayes.model_selection import ModelEvidence

        a = ModelEvidence("a", -1.0)
        b = ModelEvidence("b", -3.0)
        assert a.bayes_factor_over(b) == pytest.approx(np.exp(2.0))

    def test_validation(self):
        prior = PriorSpec.uniform(4, 0.1)
        with pytest.raises(ValueError):
            compare_models(prior, {}, [(1, True)])
        with pytest.raises(ValueError):
            compare_models(prior, {"m": PerfectTest()}, [])

    def test_format_comparison(self):
        prior = PriorSpec.uniform(6, 0.1)
        trail = generate_trail(prior, BinaryErrorModel(0.95, 0.98), 2, [0b111, 0b111000])
        out = format_comparison(compare_models(prior, self._candidates(), trail))
        assert "log evidence" in out and "no-dilution" in out


class TestEvidenceJson:
    def test_round_trips_through_json(self):
        prior = PriorSpec.uniform(5, 0.1)
        post = Posterior.from_prior(prior, BinaryErrorModel(0.95, 0.98), track_entropy=True)
        post.begin_stage()
        post.update([0, 1, 2], True)
        post.update([3], False)
        payload = json.loads(post.log.to_json())
        assert payload["num_tests"] == 2
        assert payload["tests"][0]["pool_members"] == [0, 1, 2]
        assert payload["tests"][0]["outcome"] is True
        assert payload["tests"][0]["entropy_before"] > 0
        assert payload["log_evidence"] == pytest.approx(post.log.log_evidence)

    def test_continuous_outcomes_coerced(self):
        from repro.bayes.dilution import LogNormalViralLoadModel

        prior = PriorSpec.uniform(4, 0.1)
        post = Posterior.from_prior(prior, LogNormalViralLoadModel())
        post.update([0, 1], 5.25)
        payload = json.loads(post.log.to_json())
        assert payload["tests"][0]["outcome"] == pytest.approx(5.25)
