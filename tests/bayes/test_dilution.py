"""Response models: likelihood correctness, dilution laws, sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayes.dilution import (
    BinaryErrorModel,
    DilutionErrorModel,
    LogNormalViralLoadModel,
    PerfectTest,
)


class TestPerfectTest:
    def test_sensitivity(self):
        model = PerfectTest()
        assert model.sensitivity(0, 4) == 0.0
        assert model.sensitivity(1, 4) == 1.0
        assert model.sensitivity(4, 4) == 1.0

    def test_log_likelihood_positive_outcome(self):
        ll = PerfectTest().log_likelihood_by_count(True, 3)
        assert ll[0] < -100  # impossible: positive call with zero positives
        assert np.allclose(ll[1:], 0.0)

    def test_log_likelihood_negative_outcome(self):
        ll = PerfectTest().log_likelihood_by_count(False, 3)
        assert ll[0] == pytest.approx(0.0)
        assert np.all(ll[1:] < -100)

    def test_sample_deterministic(self):
        model = PerfectTest()
        assert model.sample(0, 5, rng=0) is False
        assert model.sample(2, 5, rng=0) is True

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            PerfectTest().sample(5, 4)
        with pytest.raises(ValueError):
            PerfectTest().log_likelihood_by_count(True, 0)


class TestBinaryErrorModel:
    def test_sensitivity_constant_in_k(self):
        model = BinaryErrorModel(0.9, 0.95)
        assert model.sensitivity(1, 10) == model.sensitivity(10, 10) == 0.9

    def test_false_positive_rate(self):
        assert BinaryErrorModel(0.9, 0.95).false_positive_rate == pytest.approx(0.05)

    def test_likelihoods_are_probabilities(self):
        model = BinaryErrorModel(0.9, 0.95)
        for outcome in (True, False):
            lik = np.exp(model.log_likelihood_by_count(outcome, 5))
            assert np.all(lik >= 0) and np.all(lik <= 1)

    def test_outcome_likelihoods_sum_to_one(self):
        model = BinaryErrorModel(0.85, 0.9)
        pos = np.exp(model.log_likelihood_by_count(True, 4))
        neg = np.exp(model.log_likelihood_by_count(False, 4))
        assert np.allclose(pos + neg, 1.0)

    def test_sampling_frequency_matches_sensitivity(self):
        model = BinaryErrorModel(0.8, 0.9)
        rng = np.random.default_rng(0)
        hits = sum(model.sample(2, 4, rng) for _ in range(4000))
        assert hits / 4000 == pytest.approx(0.8, abs=0.03)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            BinaryErrorModel(1.5, 0.9)


class TestDilutionErrorModel:
    def test_monotone_in_k(self):
        model = DilutionErrorModel(0.99, 0.99, 0.5)
        sens = [model.sensitivity(k, 8) for k in range(1, 9)]
        assert all(sens[i] <= sens[i + 1] + 1e-12 for i in range(7))

    def test_undiluted_full_sensitivity(self):
        model = DilutionErrorModel(0.97, 0.99, 0.7)
        assert model.sensitivity(8, 8) == pytest.approx(0.97)

    def test_zero_exponent_recovers_binary_model(self):
        diluted = DilutionErrorModel(0.9, 0.95, 0.0)
        flat = BinaryErrorModel(0.9, 0.95)
        for k in range(1, 6):
            assert diluted.sensitivity(k, 5) == pytest.approx(flat.sensitivity(k, 5))

    def test_stronger_dilution_hurts_more(self):
        weak = DilutionErrorModel(0.99, 0.99, 0.1)
        strong = DilutionErrorModel(0.99, 0.99, 1.0)
        assert strong.sensitivity(1, 16) < weak.sensitivity(1, 16)

    def test_positive_prob_by_count_vectorised_matches_scalar(self):
        model = DilutionErrorModel(0.95, 0.98, 0.4)
        vec = model.positive_prob_by_count(6)
        expected = [model.false_positive_rate] + [model.sensitivity(k, 6) for k in range(1, 7)]
        assert np.allclose(vec, expected)

    def test_outcome_likelihoods_sum_to_one(self):
        model = DilutionErrorModel(0.95, 0.98, 0.4)
        pos = np.exp(model.log_likelihood_by_count(True, 6))
        neg = np.exp(model.log_likelihood_by_count(False, 6))
        assert np.allclose(pos + neg, 1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(0, 12),
        n=st.integers(1, 12),
        delta=st.floats(0.0, 2.0),
    )
    def test_sensitivity_always_probability(self, k, n, delta):
        if k > n:
            return
        model = DilutionErrorModel(0.99, 0.99, delta)
        if k == 0:
            return
        s = model.sensitivity(k, n)
        assert 0.0 <= s <= 1.0


class TestLogNormalViralLoadModel:
    def test_not_binary(self):
        assert LogNormalViralLoadModel().binary is False

    def test_likelihood_shape(self):
        ll = LogNormalViralLoadModel().log_likelihood_by_count(5.0, 8)
        assert ll.shape == (9,)
        assert np.all(np.isfinite(ll))

    def test_high_signal_prefers_high_counts(self):
        model = LogNormalViralLoadModel(mu_pos=8.0, sigma_pos=1.0)
        ll = model.log_likelihood_by_count(8.0, 4)  # undiluted mean
        assert np.argmax(ll) == 4

    def test_background_signal_prefers_zero(self):
        model = LogNormalViralLoadModel(mu_pos=8.0, mu_neg=0.0)
        ll = model.log_likelihood_by_count(0.0, 4)
        assert np.argmax(ll) == 0

    def test_dilution_shifts_means_down(self):
        model = LogNormalViralLoadModel(mu_pos=8.0)
        # one positive in a 10-pool reads lower than in a 2-pool
        ll10 = model.log_likelihood_by_count(8.0 + np.log(1 / 10), 10)
        assert np.argmax(ll10) == 1

    def test_sample_reproducible(self):
        model = LogNormalViralLoadModel()
        assert model.sample(2, 4, rng=5) == model.sample(2, 4, rng=5)

    def test_sample_mean_matches_model(self):
        model = LogNormalViralLoadModel(mu_pos=8.0, sigma_pos=0.5)
        rng = np.random.default_rng(0)
        draws = [model.sample(4, 4, rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(8.0, abs=0.05)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormalViralLoadModel(sigma_pos=0.0)

    def test_gaussian_density_normalised(self):
        from scipy.integrate import quad

        model = LogNormalViralLoadModel()
        integral, _ = quad(
            lambda y: np.exp(model.log_likelihood_by_count(y, 3)[0]), -20, 20
        )
        assert integral == pytest.approx(1.0, abs=1e-6)
