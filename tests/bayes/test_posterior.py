"""Posterior: sequential updates, classification, the dict oracle."""

import math

import numpy as np
import pytest

from repro.baseline.pydict import PyDictPosterior
from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel, PerfectTest
from repro.bayes.posterior import Classification, Posterior
from repro.bayes.priors import PriorSpec


class TestUpdates:
    def test_negative_pool_clears_members(self):
        post = Posterior.from_prior(PriorSpec.uniform(6, 0.1), PerfectTest())
        post.update([0, 1, 2], False)
        m = post.marginals()
        assert np.allclose(m[:3], 0.0, atol=1e-12)
        assert np.allclose(m[3:], 0.1, atol=1e-10)

    def test_positive_pool_raises_members(self):
        post = Posterior.from_prior(PriorSpec.uniform(6, 0.1), PerfectTest())
        before = post.marginals()[0]
        post.update([0, 1], True)
        assert post.marginals()[0] > before

    def test_individual_positive_test_settles(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), PerfectTest())
        post.update([2], True)
        assert post.marginals()[2] == pytest.approx(1.0)

    def test_pool_accepts_mask_or_indices(self):
        p1 = Posterior.from_prior(PriorSpec.uniform(4, 0.2), PerfectTest())
        p2 = Posterior.from_prior(PriorSpec.uniform(4, 0.2), PerfectTest())
        p1.update([0, 2], False)
        p2.update(0b0101, False)
        assert np.allclose(p1.marginals(), p2.marginals())

    def test_empty_pool_raises(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.1), PerfectTest())
        with pytest.raises(ValueError):
            post.update(0, False)

    def test_num_tests_counted(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.1), BinaryErrorModel())
        post.update([0], False)
        post.update([1], False)
        assert post.num_tests == 2

    def test_repeated_noisy_tests_converge(self):
        model = BinaryErrorModel(0.9, 0.9)
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.3), model)
        for _ in range(10):
            post.update([0], True)
        assert post.marginals()[0] > 0.99


class TestAgainstPyDictOracle:
    """The vectorised posterior must agree with the per-state dict oracle."""

    @pytest.mark.parametrize(
        "model",
        [
            PerfectTest(),
            BinaryErrorModel(0.95, 0.98),
            DilutionErrorModel(0.97, 0.99, 0.5),
        ],
        ids=["perfect", "binary", "dilution"],
    )
    def test_marginals_match_after_test_sequence(self, model):
        risks = [0.05, 0.15, 0.3, 0.08, 0.2]
        fast = Posterior.from_prior(PriorSpec(np.array(risks)), model)
        oracle = PyDictPosterior(risks, model)
        sequence = [([0, 1, 2], True), ([0], False), ([3, 4], False), ([1, 2], True), ([1], True)]
        for pool, outcome in sequence:
            fast.update(pool, outcome)
            oracle.update(pool, outcome)
            assert np.allclose(fast.marginals(), oracle.marginals(), atol=1e-9)

    def test_entropy_matches(self):
        risks = [0.1, 0.25, 0.4]
        model = BinaryErrorModel(0.9, 0.95)
        fast = Posterior.from_prior(PriorSpec(np.array(risks)), model)
        oracle = PyDictPosterior(risks, model)
        fast.update([0, 1], True)
        oracle.update([0, 1], True)
        assert fast.entropy() == pytest.approx(oracle.lattice.entropy(), abs=1e-9)

    def test_map_state_matches(self):
        risks = [0.05, 0.4, 0.2, 0.1]
        model = DilutionErrorModel(0.95, 0.99, 0.3)
        fast = Posterior.from_prior(PriorSpec(np.array(risks)), model)
        oracle = PyDictPosterior(risks, model)
        for pool, outcome in [([1, 2], True), ([0, 3], False)]:
            fast.update(pool, outcome)
            oracle.update(pool, outcome)
        assert fast.map_state() == oracle.lattice.map_state()


class TestClassification:
    def test_thresholds(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), PerfectTest())
        post.update([0], True)
        post.update([1], False)
        report = post.classify(0.99, 0.01)
        assert report.statuses[0] is Classification.POSITIVE
        assert report.statuses[1] is Classification.NEGATIVE
        assert report.statuses[2] is Classification.UNDETERMINED

    def test_report_index_lists(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.1), PerfectTest())
        post.update([0], True)
        post.update([1], False)
        post.update([2], False)
        report = post.classify()
        assert report.positives() == [0]
        assert report.negatives() == [1, 2]
        assert report.all_classified

    def test_invalid_thresholds(self):
        post = Posterior.from_prior(PriorSpec.uniform(2, 0.1), PerfectTest())
        with pytest.raises(ValueError):
            post.classify(0.5, 0.6)

    def test_n_classified(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.3), PerfectTest())
        report = post.classify()
        assert report.n_classified == 0
        assert not report.all_classified


class TestEvidence:
    def test_log_predictive_of_certain_outcome(self):
        # Pool of all with perfect test: P(negative) = prod(1 - risk)
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), PerfectTest())
        rec = post.update([0, 1, 2, 3], False)
        assert rec.log_predictive == pytest.approx(4 * math.log(0.9), abs=1e-9)

    def test_log_evidence_accumulates(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.2), BinaryErrorModel())
        post.update([0], False)
        post.update([1], False)
        assert post.log.log_evidence == pytest.approx(
            sum(r.log_predictive for r in post.log.records)
        )

    def test_entropy_tracking(self):
        post = Posterior.from_prior(
            PriorSpec.uniform(3, 0.2), PerfectTest(), track_entropy=True
        )
        rec = post.update([0, 1, 2], False)
        assert rec.entropy_before is not None
        assert rec.entropy_after is not None
        assert rec.information_gain > 0

    def test_entropy_not_tracked_by_default(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.2), PerfectTest())
        rec = post.update([0], False)
        assert rec.entropy_before is None
        assert rec.information_gain is None

    def test_prune_keeps_marginals_close(self):
        post = Posterior.from_prior(PriorSpec.uniform(8, 0.05), BinaryErrorModel())
        post.update([0, 1, 2, 3], False)
        before = post.marginals()
        post.prune(1e-6)
        assert np.allclose(post.marginals(), before, atol=1e-4)

    def test_stage_counter(self):
        post = Posterior.from_prior(PriorSpec.uniform(2, 0.1), PerfectTest())
        assert post.begin_stage() == 1
        post.update([0], False)
        assert post.log.records[-1].stage == 1
