"""Prevalence estimation from pooled outcomes."""

import numpy as np
import pytest

from repro.bayes.dilution import (
    BinaryErrorModel,
    DilutionErrorModel,
    LogNormalViralLoadModel,
    PerfectTest,
)
from repro.bayes.prevalence import (
    estimate_prevalence,
    pool_positive_prob,
)


class TestPoolPositiveProb:
    def test_zero_prevalence_is_false_positive_rate(self):
        model = BinaryErrorModel(0.95, 0.98)
        p = pool_positive_prob(np.array([0.0]), 8, model)
        assert p[0] == pytest.approx(0.02, abs=1e-6)

    def test_full_prevalence_is_sensitivity(self):
        model = BinaryErrorModel(0.95, 0.98)
        p = pool_positive_prob(np.array([1.0]), 8, model)
        assert p[0] == pytest.approx(0.95, abs=1e-6)

    def test_monotone_in_prevalence(self):
        model = DilutionErrorModel(0.98, 0.99, 0.4)
        grid = np.linspace(0, 1, 50)
        p = pool_positive_prob(grid, 10, model)
        assert np.all(np.diff(p) >= -1e-9)

    def test_perfect_test_closed_form(self):
        grid = np.array([0.05, 0.2])
        p = pool_positive_prob(grid, 6, PerfectTest())
        assert np.allclose(p, 1 - (1 - grid) ** 6, atol=1e-9)

    def test_continuous_model_rejected(self):
        with pytest.raises(ValueError):
            pool_positive_prob(np.array([0.1]), 4, LogNormalViralLoadModel())


class TestEstimatePrevalence:
    def _simulate_outcomes(self, theta, pool_size, n_pools, model, seed=0):
        rng = np.random.default_rng(seed)
        outcomes = []
        for _ in range(n_pools):
            k = int(rng.binomial(pool_size, theta))
            outcomes.append((pool_size, model.sample(k, pool_size, rng)))
        return outcomes

    def test_recovers_true_prevalence(self):
        # Average over several independent seeds: any single draw's pool
        # positive rate fluctuates ~±2% and a 95% CI misses 1 in 20.
        model = BinaryErrorModel(0.98, 0.99)
        means, hits = [], 0
        for seed in range(5):
            outcomes = self._simulate_outcomes(0.08, 10, 400, model, seed=seed)
            post = estimate_prevalence(outcomes, model)
            means.append(post.mean)
            lo, hi = post.credible_interval(0.95)
            hits += lo <= 0.08 <= hi
        assert np.mean(means) == pytest.approx(0.08, abs=0.015)
        assert hits >= 4

    def test_interval_shrinks_with_data(self):
        model = BinaryErrorModel(0.98, 0.99)
        few = estimate_prevalence(self._simulate_outcomes(0.05, 8, 30, model), model)
        many = estimate_prevalence(self._simulate_outcomes(0.05, 8, 600, model), model)
        lo_f, hi_f = few.credible_interval()
        lo_m, hi_m = many.credible_interval()
        assert (hi_m - lo_m) < (hi_f - lo_f)

    def test_all_negative_pools_push_low(self):
        model = BinaryErrorModel(0.99, 0.995)
        post = estimate_prevalence([(10, False)] * 100, model)
        assert post.mean < 0.01

    def test_dilution_aware(self):
        # Same outcome data interpreted under dilution implies *higher*
        # prevalence than under a no-dilution model (pooled negatives
        # are weaker evidence when the assay dilutes).
        outcomes = [(10, False)] * 30 + [(10, True)] * 10
        diluted = estimate_prevalence(outcomes, DilutionErrorModel(0.98, 0.99, 1.0))
        flat = estimate_prevalence(outcomes, BinaryErrorModel(0.98, 0.99))
        assert diluted.mean > flat.mean

    def test_prob_above_alarm(self):
        model = BinaryErrorModel(0.98, 0.99)
        quiet = estimate_prevalence([(10, False)] * 80, model)
        loud = estimate_prevalence(
            self._simulate_outcomes(0.25, 10, 80, model, seed=3), model
        )
        assert quiet.prob_above(0.05) < 0.05
        assert loud.prob_above(0.05) > 0.95

    def test_mode_and_mean_consistent(self):
        model = BinaryErrorModel(0.98, 0.99)
        post = estimate_prevalence(self._simulate_outcomes(0.1, 8, 300, model), model)
        assert post.mode == pytest.approx(post.mean, abs=0.03)

    def test_validation(self):
        model = BinaryErrorModel(0.98, 0.99)
        with pytest.raises(ValueError):
            estimate_prevalence([], model)
        with pytest.raises(ValueError):
            estimate_prevalence([(5, True)], model, prior_a=0.0)
        post = estimate_prevalence([(5, True)], model)
        with pytest.raises(ValueError):
            post.credible_interval(1.5)

    def test_consumes_evidence_log_shapes(self):
        # The estimator plugs straight into screen evidence records.
        from repro.bayes.posterior import Posterior
        from repro.bayes.priors import PriorSpec

        model = BinaryErrorModel(0.98, 0.99)
        post = Posterior.from_prior(PriorSpec.uniform(8, 0.05), model)
        post.update([0, 1, 2, 3], False)
        post.update([4, 5], False)
        outcomes = [(r.pool_size, r.outcome) for r in post.log.records]
        prev = estimate_prevalence(outcomes, model)
        assert 0.0 < prev.mean < 0.05
