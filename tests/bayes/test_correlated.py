"""Household (correlated) priors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayes.correlated import HouseholdPrior, pairwise_correlation
from repro.bayes.dilution import PerfectTest
from repro.bayes.posterior import Posterior
from repro.lattice.ops import marginals


@pytest.fixture
def prior():
    return HouseholdPrior([3, 2, 4], intro_prob=0.08, attack_rate=0.6)


class TestConstruction:
    def test_n_items(self, prior):
        assert prior.n_items == 9

    def test_households_layout(self, prior):
        assert prior.households() == [(0, 3), (3, 2), (5, 4)]

    def test_household_mask(self, prior):
        assert prior.household_mask(0) == 0b000000111
        assert prior.household_mask(1) == 0b000011000
        assert prior.household_mask(2) == 0b111100000

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            HouseholdPrior([14, 14])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HouseholdPrior([])

    @pytest.mark.parametrize("kwargs", [
        {"intro_prob": 0.0}, {"intro_prob": 1.0},
        {"attack_rate": 0.0}, {"attack_rate": 1.0},
    ])
    def test_degenerate_probabilities_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HouseholdPrior([2, 2], **{"intro_prob": 0.1, "attack_rate": 0.5, **kwargs})


class TestDistribution:
    def test_normalized(self, prior):
        assert prior.build_dense().is_normalized()

    def test_marginals_equal_qr(self, prior):
        space = prior.build_dense()
        assert np.allclose(marginals(space), prior.marginal_risk(), atol=1e-10)

    def test_within_household_positive_correlation(self, prior):
        space = prior.build_dense()
        assert pairwise_correlation(space, 0, 1) > 0.3
        assert pairwise_correlation(space, 5, 8) > 0.3

    def test_across_household_independence(self, prior):
        space = prior.build_dense()
        assert pairwise_correlation(space, 0, 3) == pytest.approx(0.0, abs=1e-9)
        assert pairwise_correlation(space, 4, 5) == pytest.approx(0.0, abs=1e-9)

    def test_higher_attack_rate_more_correlation(self):
        low = HouseholdPrior([3], intro_prob=0.1, attack_rate=0.3)
        high = HouseholdPrior([3], intro_prob=0.1, attack_rate=0.9)
        c_low = pairwise_correlation(low.build_dense(), 0, 1)
        c_high = pairwise_correlation(high.build_dense(), 0, 1)
        assert c_high > c_low

    def test_correlation_same_individual_rejected(self, prior):
        with pytest.raises(ValueError):
            pairwise_correlation(prior.build_dense(), 2, 2)

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 4), min_size=1, max_size=4),
        q=st.floats(0.02, 0.5),
        r=st.floats(0.1, 0.9),
    )
    def test_marginal_formula_property(self, sizes, q, r):
        if sum(sizes) > 12:
            return
        prior = HouseholdPrior(sizes, intro_prob=q, attack_rate=r)
        space = prior.build_dense()
        assert np.allclose(marginals(space), q * r, atol=1e-9)


class TestTruthAndInference:
    def test_draw_truth_deterministic(self, prior):
        assert prior.draw_truth(5) == prior.draw_truth(5)

    def test_truth_frequency_matches_marginal(self, prior):
        rng = np.random.default_rng(0)
        hits = sum(
            bin(prior.draw_truth(rng)).count("1") for _ in range(2000)
        )
        rate = hits / (2000 * prior.n_items)
        assert rate == pytest.approx(prior.marginal_risk(), abs=0.01)

    def test_one_positive_raises_household_marginals(self, prior):
        # The lattice-exclusive behaviour: a positive member implicates
        # their housemates, not the rest of the cohort.
        space = prior.build_dense()
        post = Posterior(space, PerfectTest())
        post.update([0], True)
        m = post.marginals()
        assert m[0] == pytest.approx(1.0)
        assert m[1] > prior.marginal_risk() * 3  # housemates implicated
        assert m[3] == pytest.approx(prior.marginal_risk(), abs=1e-9)  # others not

    def test_negative_household_pool_clears_household(self, prior):
        space = prior.build_dense()
        post = Posterior(space, PerfectTest())
        post.update(prior.household_mask(1), False)
        m = post.marginals()
        assert np.allclose(m[3:5], 0.0, atol=1e-12)
        assert np.allclose(m[:3], prior.marginal_risk(), atol=1e-9)
