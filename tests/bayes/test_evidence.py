"""EvidenceLog bookkeeping."""

import dataclasses

import pytest

from repro.bayes.evidence import EvidenceLog, TestRecord


def make_record(stage=1, log_pred=-0.5, ent_before=None, ent_after=None):
    return TestRecord(
        stage=stage,
        pool_mask=0b11,
        pool_size=2,
        outcome=True,
        log_predictive=log_pred,
        entropy_before=ent_before,
        entropy_after=ent_after,
    )


class TestTestRecord:
    def test_information_gain(self):
        rec = make_record(ent_before=2.0, ent_after=1.2)
        assert rec.information_gain == pytest.approx(0.8)

    def test_information_gain_untracked(self):
        assert make_record().information_gain is None

    def test_frozen(self):
        rec = make_record()
        with pytest.raises(dataclasses.FrozenInstanceError):
            rec.stage = 5


class TestEvidenceLog:
    def test_counts(self):
        log = EvidenceLog()
        log.append(make_record(stage=1))
        log.append(make_record(stage=1))
        log.append(make_record(stage=2))
        assert log.num_tests == 3
        assert log.num_stages == 2

    def test_log_evidence_sum(self):
        log = EvidenceLog()
        log.append(make_record(log_pred=-1.0))
        log.append(make_record(log_pred=-0.25))
        assert log.log_evidence == pytest.approx(-1.25)

    def test_tests_per_stage(self):
        log = EvidenceLog()
        for stage in (1, 1, 2, 3, 3, 3):
            log.append(make_record(stage=stage))
        assert log.tests_per_stage() == [(1, 2), (2, 1), (3, 3)]

    def test_total_information_gain_skips_untracked(self):
        log = EvidenceLog()
        log.append(make_record(ent_before=2.0, ent_after=1.0))
        log.append(make_record())  # untracked
        assert log.total_information_gain() == pytest.approx(1.0)

    def test_empty_log(self):
        log = EvidenceLog()
        assert log.num_tests == 0
        assert log.num_stages == 0
        assert log.log_evidence == 0.0
