"""PriorSpec constructors and lattice builders."""

import numpy as np
import pytest

from repro.bayes.priors import PriorSpec


class TestConstructors:
    def test_uniform(self):
        prior = PriorSpec.uniform(5, 0.1)
        assert prior.n_items == 5
        assert np.allclose(prior.risks, 0.1)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            PriorSpec.uniform(0, 0.1)
        with pytest.raises(ValueError):
            PriorSpec.uniform(5, 1.5)

    def test_from_tiers(self):
        prior = PriorSpec.from_tiers([(3, 0.01), (2, 0.3)])
        assert prior.n_items == 5
        assert np.allclose(prior.risks[:3], 0.01)
        assert np.allclose(prior.risks[3:], 0.3)

    def test_from_tiers_empty_raises(self):
        with pytest.raises(ValueError):
            PriorSpec.from_tiers([])

    def test_sampled_mean_roughly_matches(self):
        prior = PriorSpec.sampled(5000, 0.1, dispersion=10.0, rng=0)
        assert prior.risks.mean() == pytest.approx(0.1, abs=0.01)

    def test_sampled_deterministic(self):
        a = PriorSpec.sampled(10, 0.1, rng=7)
        b = PriorSpec.sampled(10, 0.1, rng=7)
        assert np.array_equal(a.risks, b.risks)

    def test_sampled_invalid_dispersion(self):
        with pytest.raises(ValueError):
            PriorSpec.sampled(5, 0.1, dispersion=0.0)

    def test_extreme_risks_clipped_into_open_interval(self):
        prior = PriorSpec(np.array([0.0, 1.0]))
        assert prior.risks[0] > 0.0
        assert prior.risks[1] < 1.0

    def test_invalid_risks_rejected(self):
        with pytest.raises(ValueError):
            PriorSpec(np.array([0.1, np.nan]))
        with pytest.raises(ValueError):
            PriorSpec(np.array([[0.1]]))


class TestDerived:
    def test_expected_positives(self):
        prior = PriorSpec.uniform(10, 0.2)
        assert prior.expected_positives == pytest.approx(2.0)

    def test_subset(self):
        prior = PriorSpec(np.array([0.1, 0.2, 0.3]))
        sub = prior.subset([2, 0])
        assert np.allclose(sub.risks, [0.3, 0.1])

    def test_subset_empty_raises(self):
        with pytest.raises(ValueError):
            PriorSpec.uniform(3, 0.1).subset([])

    def test_sorted_by_risk(self):
        prior = PriorSpec(np.array([0.1, 0.5, 0.3]))
        ordered, perm = prior.sorted_by_risk()
        assert np.allclose(ordered.risks, [0.5, 0.3, 0.1])
        assert np.array_equal(prior.risks[perm], ordered.risks)

    def test_build_dense_marginals(self):
        prior = PriorSpec(np.array([0.05, 0.4]))
        space = prior.build_dense()
        assert np.allclose(space.marginals(), prior.risks, atol=1e-10)

    def test_build_restricted(self):
        prior = PriorSpec.uniform(10, 0.03)
        space, log_disc = prior.build_restricted(2)
        assert space.size == 1 + 10 + 45
        assert log_disc < np.log(0.01)  # tail beyond 2 positives is tiny
