"""Property-based agreement: vectorised posterior vs the dict oracle.

Random risk vectors, random pooled-test sequences, three response
models — the two independent implementations of the same math must
agree on marginals after every update.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baseline.pydict import PyDictPosterior
from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec

common = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

risk_lists = st.lists(st.floats(0.02, 0.6), min_size=2, max_size=6)


@st.composite
def screen_sequences(draw):
    """A cohort plus 1–5 random (pool, outcome) observations."""
    risks = draw(risk_lists)
    n = len(risks)
    n_tests = draw(st.integers(1, 5))
    seq = []
    for _ in range(n_tests):
        pool = draw(st.integers(1, (1 << n) - 1))
        outcome = draw(st.booleans())
        seq.append((pool, outcome))
    return risks, seq


@common
@given(data=screen_sequences())
def test_binary_model_agreement(data):
    risks, seq = data
    model = BinaryErrorModel(0.93, 0.97)
    fast = Posterior.from_prior(PriorSpec(np.array(risks)), model)
    oracle = PyDictPosterior(risks, model)
    for pool, outcome in seq:
        fast.update(pool, outcome)
        oracle.update(pool, outcome)
    assert np.allclose(fast.marginals(), oracle.marginals(), atol=1e-8)


@common
@given(data=screen_sequences(), delta=st.floats(0.0, 1.5))
def test_dilution_model_agreement(data, delta):
    risks, seq = data
    model = DilutionErrorModel(0.96, 0.99, delta)
    fast = Posterior.from_prior(PriorSpec(np.array(risks)), model)
    oracle = PyDictPosterior(risks, model)
    for pool, outcome in seq:
        fast.update(pool, outcome)
        oracle.update(pool, outcome)
    assert np.allclose(fast.marginals(), oracle.marginals(), atol=1e-8)


@common
@given(data=screen_sequences())
def test_posterior_always_normalized(data):
    risks, seq = data
    model = BinaryErrorModel(0.9, 0.95)
    post = Posterior.from_prior(PriorSpec(np.array(risks)), model)
    for pool, outcome in seq:
        post.update(pool, outcome)
        assert post.space.is_normalized(atol=1e-8)
        m = post.marginals()
        assert np.all(m >= -1e-12) and np.all(m <= 1 + 1e-12)


@common
@given(data=screen_sequences())
def test_entropy_never_negative(data):
    risks, seq = data
    model = BinaryErrorModel(0.9, 0.95)
    post = Posterior.from_prior(PriorSpec(np.array(risks)), model)
    for pool, outcome in seq:
        post.update(pool, outcome)
        assert post.entropy() >= -1e-12


@common
@given(data=screen_sequences())
def test_evidence_additivity(data):
    """Total log evidence equals the log joint of the outcome sequence."""
    risks, seq = data
    model = BinaryErrorModel(0.9, 0.95)
    post = Posterior.from_prior(PriorSpec(np.array(risks)), model)
    for pool, outcome in seq:
        post.update(pool, outcome)
    # Recompute the joint directly on the dict oracle: product over the
    # sequence of predictive probabilities.
    oracle = PyDictPosterior(risks, model)
    log_joint = 0.0
    import math

    for pool, outcome in seq:
        pool_size = bin(pool).count("1")
        lik = [math.exp(v) for v in model.log_likelihood_by_count(outcome, pool_size)]
        pred = 0.0
        for state, p in oracle.lattice.probs.items():
            k = bin(state & pool).count("1")
            pred += p * lik[k]
        log_joint += math.log(pred)
        oracle.update(pool, outcome)
    assert post.log.log_evidence == pytest.approx(log_joint, abs=1e-8)
