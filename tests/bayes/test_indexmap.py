"""CohortIndexMap and serial Posterior contraction."""

import numpy as np
import pytest

from repro.bayes.dilution import PerfectTest
from repro.bayes.indexmap import CohortIndexMap
from repro.bayes.posterior import Posterior
from repro.bayes.priors import PriorSpec


class TestCohortIndexMap:
    def test_initially_all_live(self):
        m = CohortIndexMap(4)
        assert m.live == [0, 1, 2, 3]
        assert not m.any_settled

    def test_settle_returns_compact_position(self):
        m = CohortIndexMap(5)
        assert m.settle(2, True) == 2
        # 3 and 4 shifted down
        assert m.compact_position(3) == 2
        assert m.compact_position(4) == 3

    def test_sequential_settles_track_shifts(self):
        m = CohortIndexMap(5)
        m.settle(1, False)
        assert m.settle(3, True) == 2  # 3 sits at compact position 2 now
        assert m.live == [0, 2, 4]

    def test_double_settle_rejected(self):
        m = CohortIndexMap(3)
        m.settle(0, True)
        with pytest.raises(ValueError):
            m.settle(0, False)

    def test_unknown_individual_rejected(self):
        with pytest.raises(ValueError):
            CohortIndexMap(3).settle(7, True)

    def test_mask_round_trip(self):
        m = CohortIndexMap(6)
        m.settle(2, False)
        original = 0b101011  # individuals 0,1,3,5 (none settled)
        compact = m.to_compact_mask(original)
        assert m.to_original_mask(compact) == original

    def test_compact_mask_identity_when_nothing_settled(self):
        m = CohortIndexMap(4)
        assert m.to_compact_mask(0b1010) == 0b1010

    def test_settled_pool_member_rejected(self):
        m = CohortIndexMap(4)
        m.settle(1, True)
        with pytest.raises(ValueError):
            m.to_compact_mask(0b0010)

    def test_settled_positive_mask(self):
        m = CohortIndexMap(4)
        m.settle(1, True)
        m.settle(3, False)
        assert m.settled_positive_mask() == 0b0010

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            CohortIndexMap(0)


class TestPosteriorContraction:
    def test_settle_fixes_marginal(self):
        post = Posterior.from_prior(PriorSpec.uniform(5, 0.1), PerfectTest())
        post.settle(2, True)
        m = post.marginals()
        assert m[2] == 1.0
        assert len(m) == 5
        assert post.num_live == 4
        assert post.space.n_items == 4

    def test_update_in_original_indices(self):
        post = Posterior.from_prior(PriorSpec.uniform(5, 0.1), PerfectTest())
        post.settle(0, False)
        post.update([3, 4], False)
        m = post.marginals()
        assert np.allclose(m[[0, 3, 4]], 0.0, atol=1e-12)
        assert np.allclose(m[[1, 2]], 0.1, atol=1e-10)

    def test_pool_with_settled_rejected(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), PerfectTest())
        post.settle(1, False)
        with pytest.raises(ValueError):
            post.update([1, 2], False)

    def test_map_state_includes_settled_positive(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.1), PerfectTest())
        post.settle(3, True)
        assert post.map_state() & 0b1000

    def test_down_set_mass_translated(self):
        post = Posterior.from_prior(PriorSpec.uniform(4, 0.2), PerfectTest())
        before = post.down_set_mass([2, 3])
        post.settle(0, False)
        after = post.down_set_mass([2, 3])
        assert after == pytest.approx(before, abs=1e-10)  # independent prior

    def test_classify_reports_settled(self):
        post = Posterior.from_prior(PriorSpec.uniform(3, 0.2), PerfectTest())
        post.settle(1, True)
        report = post.classify()
        from repro.bayes.posterior import Classification

        assert report.statuses[1] is Classification.POSITIVE

    def test_parity_with_sbgt_session(self, ctx):
        """Serial and distributed contraction agree step for step."""
        from repro.sbgt.config import SBGTConfig
        from repro.sbgt.session import SBGTSession

        prior = PriorSpec.sampled(7, 0.1, rng=2)
        model = PerfectTest()
        post = Posterior.from_prior(prior, model)
        session = SBGTSession(ctx, prior, model, SBGTConfig())
        moves = [
            ("update", ([0, 1, 2], False)),
            ("settle", (0, False)),
            ("update", ([3, 4], True)),
            ("settle", (5, False)),
            ("update", ([3], True)),
        ]
        for op, args in moves:
            getattr(post, op)(*args)
            getattr(session, op)(*args)
            assert np.allclose(post.marginals(), session.marginals(), atol=1e-9)
        session.close()
