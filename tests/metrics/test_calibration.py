"""Calibration diagnostics."""

import numpy as np
import pytest

from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.metrics.calibration import (
    calibration_report,
    collect_screen_calibration,
)
from repro.workflows.classify import run_screen


class TestCalibrationReport:
    def test_perfectly_calibrated_synthetic(self):
        rng = np.random.default_rng(0)
        p = rng.uniform(0, 1, size=20000)
        y = rng.uniform(0, 1, size=20000) < p
        report = calibration_report(p, y)
        assert report.expected_calibration_error < 0.02
        for b in report.bins:
            if b.count > 500:
                assert abs(b.gap) < 0.05

    def test_overconfident_detected(self):
        # Predictions say 0.9 / 0.1, reality is 0.6 / 0.4.
        rng = np.random.default_rng(1)
        p = np.where(rng.random(5000) < 0.5, 0.9, 0.1)
        y = np.where(p > 0.5, rng.random(5000) < 0.6, rng.random(5000) < 0.4)
        report = calibration_report(p, y)
        assert report.expected_calibration_error > 0.2

    def test_brier_score_extremes(self):
        perfect = calibration_report([1.0, 0.0], [True, False])
        assert perfect.brier_score == 0.0
        worst = calibration_report([1.0, 0.0], [False, True])
        assert worst.brier_score == 1.0

    def test_bin_structure(self):
        report = calibration_report([0.05, 0.95], [False, True], num_bins=10)
        assert len(report.bins) == 10
        assert report.bins[0].count == 1
        assert report.bins[-1].count == 1

    def test_table_renders(self):
        report = calibration_report([0.2, 0.8, 0.5], [False, True, True])
        out = report.to_table()
        assert "Brier" in out and "empirical" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            calibration_report([], [])
        with pytest.raises(ValueError):
            calibration_report([1.5], [True])
        with pytest.raises(ValueError):
            calibration_report([0.5], [True], num_bins=0)
        with pytest.raises(ValueError):
            calibration_report([0.5, 0.1], [True])


class TestScreenCalibration:
    def _screens(self, model, n=40):
        prior = PriorSpec.uniform(8, 0.1)
        return [
            run_screen(prior, model, BHAPolicy(), rng=seed, max_stages=6)
            for seed in range(n)
        ]

    def test_collect_pairs_shape(self):
        screens = self._screens(BinaryErrorModel(0.95, 0.98), n=5)
        p, y = collect_screen_calibration(screens)
        assert p.shape == y.shape == (40,)

    def test_well_specified_model_roughly_calibrated(self):
        # Truncated screens (max_stages=6) leave informative mid-range
        # marginals; with the true model they should not be wildly off.
        screens = self._screens(BinaryErrorModel(0.95, 0.98))
        p, y = collect_screen_calibration(screens)
        report = calibration_report(p, y, num_bins=5)
        assert report.expected_calibration_error < 0.12

    def test_misspecified_model_worse(self):
        # Simulate with strong dilution but *infer* assuming none: the
        # posterior becomes overconfident about cleared pools.
        prior = PriorSpec.uniform(8, 0.15)
        true_model = DilutionErrorModel(0.98, 0.99, 1.2)
        wrong_model = BinaryErrorModel(0.98, 0.99)
        from repro.simulate.population import make_cohort
        from repro.simulate.testing import TestLab
        from repro.bayes.posterior import Posterior

        preds, truths = [], []
        for seed in range(60):
            cohort = make_cohort(prior, rng=seed)
            lab = TestLab(true_model, cohort.truth_mask, rng=seed)
            post = Posterior.from_prior(prior, wrong_model)
            post.update([0, 1, 2, 3, 4, 5, 6, 7], lab.run(0xFF))
            for i, m in enumerate(post.marginals()):
                preds.append(m)
                truths.append(cohort.is_positive(i))
        wrong = calibration_report(np.array(preds), np.array(truths), num_bins=5)
        # The well-specified counterpart on identical data:
        preds2, truths2 = [], []
        for seed in range(60):
            cohort = make_cohort(prior, rng=seed)
            lab = TestLab(true_model, cohort.truth_mask, rng=seed)
            post = Posterior.from_prior(prior, true_model)
            post.update([0, 1, 2, 3, 4, 5, 6, 7], lab.run(0xFF))
            for i, m in enumerate(post.marginals()):
                preds2.append(m)
                truths2.append(cohort.is_positive(i))
        right = calibration_report(np.array(preds2), np.array(truths2), num_bins=5)
        assert wrong.expected_calibration_error > right.expected_calibration_error
