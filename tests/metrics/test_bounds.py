"""Information-theoretic lower bounds."""


import numpy as np
import pytest

from repro.bayes.correlated import HouseholdPrior
from repro.bayes.dilution import PerfectTest
from repro.bayes.priors import PriorSpec
from repro.halving.policy import BHAPolicy
from repro.metrics.bounds import (
    halving_optimality_ratio,
    prior_entropy_bits,
)
from repro.workflows.classify import run_screen


class TestPriorEntropyBits:
    def test_fair_coin_per_person(self):
        assert prior_entropy_bits(PriorSpec.uniform(4, 0.5)) == pytest.approx(4.0)

    def test_matches_lattice_entropy(self):
        prior = PriorSpec(np.array([0.1, 0.3, 0.05]))
        direct = prior_entropy_bits(prior)
        via_space = prior_entropy_bits(prior.build_dense())
        assert direct == pytest.approx(via_space, abs=1e-9)

    def test_low_risk_low_entropy(self):
        assert prior_entropy_bits(PriorSpec.uniform(10, 0.01)) < 1.0

    def test_household_prior_below_independent(self):
        # Correlation removes uncertainty: the household prior must have
        # lower entropy than the marginal-matched independence prior.
        hp = HouseholdPrior([4, 4], intro_prob=0.1, attack_rate=0.6)
        dependent = prior_entropy_bits(hp.build_dense())
        independent = prior_entropy_bits(PriorSpec.uniform(8, hp.marginal_risk()))
        assert dependent < independent

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            prior_entropy_bits([0.1, 0.2])


class TestOptimalityRatio:
    def test_bha_near_shannon_floor(self):
        # Noiseless assay: BHA should land within ~2.5x of the floor even
        # with the cheap prefix candidate set.
        prior = PriorSpec.uniform(12, 0.05)
        total_tests = 0
        for seed in range(8):
            total_tests += run_screen(
                prior, PerfectTest(), BHAPolicy(), rng=seed
            ).efficiency.num_tests
        ratio = halving_optimality_ratio(prior, total_tests / 8)
        assert 1.0 <= ratio < 2.5

    def test_individual_testing_far_from_floor(self):
        from repro.halving.policy import IndividualTestingPolicy

        prior = PriorSpec.uniform(12, 0.02)
        res = run_screen(prior, PerfectTest(), IndividualTestingPolicy(), rng=0)
        ratio = halving_optimality_ratio(prior, res.efficiency.num_tests)
        assert ratio > 4.0  # 12 tests vs an entropy floor well under 2 bits

    def test_validation(self):
        prior = PriorSpec.uniform(3, 0.1)
        with pytest.raises(ValueError):
            halving_optimality_ratio(prior, -1.0)
