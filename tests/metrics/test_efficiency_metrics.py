"""Efficiency reports."""

import pytest

from repro.metrics.efficiency import efficiency_report


class TestEfficiencyReport:
    def test_tests_per_individual(self):
        rep = efficiency_report(n_items=10, num_tests=4, num_stages=3, num_samples_used=20)
        assert rep.tests_per_individual == pytest.approx(0.4)

    def test_savings(self):
        rep = efficiency_report(10, 4, 3, 20)
        assert rep.savings_vs_individual == pytest.approx(0.6)

    def test_negative_savings_possible(self):
        rep = efficiency_report(4, 10, 5, 12)
        assert rep.savings_vs_individual < 0

    def test_samples_per_individual(self):
        rep = efficiency_report(10, 4, 3, 25)
        assert rep.samples_per_individual == pytest.approx(2.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            efficiency_report(0, 1, 1, 1)
        with pytest.raises(ValueError):
            efficiency_report(5, -1, 1, 1)
