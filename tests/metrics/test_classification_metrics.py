"""Confusion counts against ground truth."""

import numpy as np
import pytest

from repro.bayes.posterior import Classification, ClassificationReport
from repro.metrics.classification import ConfusionCounts, evaluate_classification

P, N, U = Classification.POSITIVE, Classification.NEGATIVE, Classification.UNDETERMINED


def report_of(statuses):
    return ClassificationReport(marginals=np.zeros(len(statuses)), statuses=tuple(statuses))


class TestEvaluateClassification:
    def test_all_correct(self):
        out = evaluate_classification(report_of([P, N, N]), truth_mask=0b001)
        assert (out.true_positive, out.true_negative) == (1, 2)
        assert out.false_positive == out.false_negative == out.undetermined == 0

    def test_false_positive(self):
        out = evaluate_classification(report_of([P]), truth_mask=0)
        assert out.false_positive == 1

    def test_false_negative(self):
        out = evaluate_classification(report_of([N]), truth_mask=0b1)
        assert out.false_negative == 1

    def test_undetermined_counted(self):
        out = evaluate_classification(report_of([U, U]), truth_mask=0b01)
        assert out.undetermined == 2


class TestConfusionCounts:
    def test_accuracy_counts_undetermined_as_error(self):
        counts = ConfusionCounts(2, 0, 6, 0, 2)
        assert counts.accuracy == pytest.approx(8 / 10)

    def test_sensitivity_specificity(self):
        counts = ConfusionCounts(8, 1, 89, 2, 0)
        assert counts.sensitivity == pytest.approx(0.8)
        assert counts.specificity == pytest.approx(89 / 90)

    def test_degenerate_denominators(self):
        counts = ConfusionCounts(0, 0, 0, 0, 0)
        assert counts.sensitivity == 1.0
        assert counts.specificity == 1.0
        assert counts.accuracy == 1.0

    def test_determined_fraction(self):
        counts = ConfusionCounts(1, 0, 2, 0, 1)
        assert counts.determined_fraction == pytest.approx(0.75)

    def test_n_items(self):
        counts = ConfusionCounts(1, 2, 3, 4, 5)
        assert counts.n_items == 15
