"""ASCII table formatting."""

import pytest

from repro.metrics.reporting import format_speedup_table, format_table


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in out and "b" in out
        assert "3" in out and "4" in out

    def test_title_first_line(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment_consistent(self):
        out = format_table(["col"], [["short"], ["much longer cell"]])
        lines = out.splitlines()
        assert len(set(len(l) for l in lines[-2:])) == 1

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456], [12345.6]])
        assert "0.123" in out
        assert "1.23e+04" in out or "12345" in out


class TestMarkdownTable:
    def test_structure(self):
        from repro.metrics.reporting import format_markdown_table

        out = format_markdown_table(["a", "b"], [[1, 2.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "**T**"
        assert lines[2].startswith("| a")
        assert set(lines[3]) <= {"|", "-"}
        assert "2.500" in lines[4]

    def test_no_title(self):
        from repro.metrics.reporting import format_markdown_table

        out = format_markdown_table(["x"], [[1]])
        assert out.splitlines()[0].startswith("| x")

    def test_width_mismatch(self):
        from repro.metrics.reporting import format_markdown_table

        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        import csv
        import io

        from repro.metrics.reporting import format_csv

        out = format_csv(["name", "value"], [["alpha, beta", 1], ["g", 2.25]])
        rows = list(csv.reader(io.StringIO(out)))
        assert rows[0] == ["name", "value"]
        assert rows[1] == ["alpha, beta", "1"]
        assert rows[2] == ["g", "2.250"]

    def test_width_mismatch(self):
        from repro.metrics.reporting import format_csv

        with pytest.raises(ValueError):
            format_csv(["a", "b"], [[1]])


class TestSpeedupTable:
    def test_speedup_column(self):
        out = format_speedup_table([10], [2.0], [0.5])
        assert "4.0x" in out

    def test_infinite_speedup_guard(self):
        out = format_speedup_table([1], [1.0], [0.0])
        assert "inf" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_speedup_table([1, 2], [1.0], [1.0])
