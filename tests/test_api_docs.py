"""The public surface matches ``docs/api.md``.

Walks every table in the curated API reference and resolves each
backticked name from the first column against the section's module (or
against objects already resolved in the same row, for method-style
entries like ``optimal_for``).  A doc row naming something that no
longer imports fails here; so does deleting this page's anchor modules.
"""

import importlib
import re
import types
from pathlib import Path

import pytest

import repro

API_MD = Path(__file__).resolve().parent.parent / "docs" / "api.md"

_SECTION_RE = re.compile(r"^##\s+.*?`(repro[\w.]*)`")
_BACKTICK_RE = re.compile(r"`([^`]+)`")


def _clean(token):
    """Doc token -> dotted name, or None for non-name tokens."""
    name = token.split("(")[0].strip()
    if not name or not all(p.isidentifier() for p in name.split(".")):
        return None
    return name


def _rows():
    """Yield (section_module_name, row_tokens) per doc-table row."""
    section = "repro"
    for line in API_MD.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            m = _SECTION_RE.match(line)
            section = m.group(1) if m else "repro"
            continue
        if not line.startswith("|"):
            continue
        first_cell = line.split("|")[1]
        if "---" in first_cell or first_cell.strip() in ("Object",):
            continue
        tokens = [_clean(t) for t in _BACKTICK_RE.findall(first_cell)]
        tokens = [t for t in tokens if t]
        if tokens:
            yield section, tokens


def _resolve_from(base, parts):
    obj = base
    for part in parts:
        if hasattr(obj, part):
            obj = getattr(obj, part)
        elif isinstance(obj, types.ModuleType):
            try:
                obj = importlib.import_module(f"{obj.__name__}.{part}")
            except ImportError:
                return None
        else:
            return None
    return obj


def _resolve(name, section_mod, row_objects):
    parts = name.split(".")
    for base in [section_mod, repro, *row_objects]:
        obj = _resolve_from(base, parts)
        if obj is not None:
            return obj
    return None


def _collect_cases():
    cases = []
    for section, tokens in _rows():
        cases.append(pytest.param(section, tokens, id=f"{section}:{tokens[0]}"))
    return cases


@pytest.mark.parametrize("section, tokens", _collect_cases())
def test_documented_names_resolve(section, tokens):
    section_mod = importlib.import_module(section)
    resolved = []
    for name in tokens:
        obj = _resolve(name, section_mod, resolved)
        assert obj is not None, (
            f"docs/api.md names {name!r} under {section} but it does not resolve"
        )
        resolved.append(obj)


def test_doc_walker_found_tables():
    sections = {s for s, _ in _rows()}
    # The walker must actually be parsing the page, not silently matching
    # nothing; these anchor sections all carry tables.
    for expected in ("repro.engine", "repro.obs", "repro.sbgt", "repro.halving"):
        assert expected in sections


def test_top_level_all_imports_clean():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"repro.{name} missing"


def test_new_surface_reexported_at_top_level():
    for name in ("EngineListener", "EventBus", "RecordingListener",
                 "Tracer", "trace_phase", "ScreenOptions"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
