"""Shared fixtures: engine contexts and canonical model objects."""

from __future__ import annotations

import pathlib
import sys

# Bare `pytest` does not put the repo root on sys.path (only
# `python -m pytest` does); the harness tests import the benchmarks
# package, which lives at the root.
_ROOT = str(pathlib.Path(__file__).resolve().parents[1])
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

import pytest

from repro.bayes.dilution import BinaryErrorModel, DilutionErrorModel, PerfectTest
from repro.bayes.priors import PriorSpec
from repro.engine import Context


@pytest.fixture(scope="session")
def ctx():
    """Thread-mode context shared by the whole run (cheap, zero-copy)."""
    with Context(mode="threads", parallelism=4) as c:
        yield c


@pytest.fixture(scope="session")
def serial_ctx():
    """Serial context for determinism-sensitive engine tests."""
    with Context(mode="serial") as c:
        yield c


@pytest.fixture(scope="session")
def process_ctx():
    """Process-mode context (forked workers); used sparingly — slower."""
    with Context(mode="processes", parallelism=2) as c:
        yield c


@pytest.fixture
def uniform_prior() -> PriorSpec:
    return PriorSpec.uniform(8, 0.05)


@pytest.fixture
def tiered_prior() -> PriorSpec:
    return PriorSpec.from_tiers([(6, 0.02), (2, 0.20)])


@pytest.fixture
def perfect_model() -> PerfectTest:
    return PerfectTest()


@pytest.fixture
def noisy_model() -> BinaryErrorModel:
    return BinaryErrorModel(sensitivity=0.95, specificity=0.98)


@pytest.fixture
def dilution_model() -> DilutionErrorModel:
    return DilutionErrorModel(sensitivity=0.98, specificity=0.99, dilution_exponent=0.4)
