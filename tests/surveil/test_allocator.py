"""Budget allocators: Thompson sampling and its baselines."""

import numpy as np
import pytest

from repro.surveil.allocator import (
    GreedyAllocator,
    ThompsonAllocator,
    UniformAllocator,
    make_allocator,
)

HOT_COLD = [(20.0, 80.0), (1.0, 99.0), (1.0, 99.0), (1.0, 99.0)]


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestContract:
    @pytest.mark.parametrize("name", ["thompson", "uniform", "greedy"])
    def test_sums_to_budget(self, name):
        alloc = make_allocator(name)
        counts = alloc.allocate(HOT_COLD, 7, _rng())
        assert sum(counts) == 7
        assert len(counts) == 4
        assert all(c >= 0 for c in counts)

    @pytest.mark.parametrize("name", ["thompson", "uniform", "greedy"])
    def test_zero_budget(self, name):
        assert make_allocator(name).allocate(HOT_COLD, 0, _rng()) == [0, 0, 0, 0]

    @pytest.mark.parametrize("name", ["thompson", "greedy"])
    def test_deterministic_given_rng(self, name):
        a = make_allocator(name).allocate(HOT_COLD, 9, _rng(4))
        b = make_allocator(name).allocate(HOT_COLD, 9, _rng(4))
        assert a == b

    def test_rejects_bad_inputs(self):
        alloc = ThompsonAllocator()
        with pytest.raises(ValueError):
            alloc.allocate([], 3, _rng())
        with pytest.raises(ValueError):
            alloc.allocate(HOT_COLD, -1, _rng())
        with pytest.raises(ValueError):
            alloc.allocate([(1.0, 0.0)], 3, _rng())


class TestThompson:
    def test_concentrates_on_hot_site(self):
        # Posteriors tight enough that site 0 (20% mean vs 1%) should win
        # the overwhelming share of slots.
        counts = ThompsonAllocator().allocate(HOT_COLD, 100, _rng(1))
        assert counts[0] > 80

    def test_flat_posteriors_explore(self):
        flat = [(1.0, 1.0)] * 5
        counts = ThompsonAllocator().allocate(flat, 200, _rng(2))
        assert sum(1 for c in counts if c > 0) == 5  # every site gets slots


class TestUniform:
    def test_even_split(self):
        assert UniformAllocator().allocate(HOT_COLD, 8, _rng()) == [2, 2, 2, 2]

    def test_remainder_rotates_across_rounds(self):
        alloc = UniformAllocator()
        first = alloc.allocate(HOT_COLD, 5, _rng())
        second = alloc.allocate(HOT_COLD, 5, _rng())
        assert first == [2, 1, 1, 1]
        assert second == [1, 2, 1, 1]

    def test_reset_restores_rotation(self):
        alloc = UniformAllocator()
        alloc.allocate(HOT_COLD, 5, _rng())
        alloc.reset()
        assert alloc.allocate(HOT_COLD, 5, _rng()) == [2, 1, 1, 1]


class TestGreedy:
    def test_pure_exploitation_at_epsilon_zero(self):
        counts = GreedyAllocator(epsilon=0.0).allocate(HOT_COLD, 6, _rng())
        assert counts == [6, 0, 0, 0]

    def test_epsilon_one_is_uniform_exploration(self):
        counts = GreedyAllocator(epsilon=1.0).allocate(HOT_COLD, 400, _rng(3))
        assert all(c > 0 for c in counts)
        assert max(counts) < 200  # nowhere near pure exploitation

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            GreedyAllocator(epsilon=1.5)


class TestFactory:
    def test_spellings(self):
        assert make_allocator("thompson").name == "thompson"
        assert make_allocator("uniform").name == "uniform"
        assert make_allocator("greedy").name == "greedy"

    def test_greedy_epsilon_spec(self):
        alloc = make_allocator("greedy-25")
        assert isinstance(alloc, GreedyAllocator)
        assert alloc.epsilon == pytest.approx(0.25)

    def test_unknown_and_malformed(self):
        with pytest.raises(ValueError):
            make_allocator("ucb")
        with pytest.raises(ValueError):
            make_allocator("greedy-lots")
