"""The campaign round loop: determinism, events, engine parity, backends."""

import numpy as np
import pytest

from repro.engine import Context
from repro.engine.listener import EventBus
from repro.obs.flight import FlightRecorder
from repro.surveil import (
    Campaign,
    CampaignConfig,
    SiteScreenJob,
    heterogeneous_fleet,
    make_fleet,
    run_site_screen,
    site_screen_seed,
)


def small_campaign(allocator="thompson", backend="dense", rounds=3, bus=None, ctx=None):
    fleet = heterogeneous_fleet(4, cohort_size=6, seed=2)
    config = CampaignConfig(rounds=rounds, budget=3, allocator=allocator,
                            backend=backend, max_stages=30, seed=5)
    return Campaign(fleet, config, ctx=ctx, bus=bus)


class TestSeeding:
    def test_seed_helper_is_deterministic_and_distinct(self):
        seeds = {
            site_screen_seed(0, r, k, j)
            for r in range(4) for k in range(4) for j in range(3)
        }
        assert len(seeds) == 48  # no collisions across rounds/sites/draws
        assert site_screen_seed(0, 1, 2, 0) == site_screen_seed(0, 1, 2, 0)
        assert site_screen_seed(0, 1, 2, 0) != site_screen_seed(1, 1, 2, 0)

    def test_run_site_screen_replays_from_job(self):
        spec = heterogeneous_fleet(3, cohort_size=6, seed=0)[1]
        job = SiteScreenJob(spec=spec, round_index=2, site_index=1, draw=0,
                            seed=site_screen_seed(9, 2, 1, 0), max_stages=30)
        a, b = run_site_screen(job), run_site_screen(job)
        assert a == b
        assert a.n_screened == 6
        assert 0 <= a.cases_found <= a.true_positives <= 6


class TestRoundLoop:
    def test_rounds_accumulate_and_finish(self):
        campaign = small_campaign(rounds=2)
        assert not campaign.finished and campaign.round_index == 0
        first = campaign.run_round()
        assert first.index == 0 and sum(first.allocations) == 3
        campaign.run_round()
        assert campaign.finished
        with pytest.raises(RuntimeError):
            campaign.run_round()

    def test_run_is_deterministic(self):
        a = small_campaign().run()
        b = small_campaign().run()
        assert a.summary() == b.summary()
        assert a.round_rows() == b.round_rows()
        assert a.sites == b.sites

    @pytest.mark.parametrize("allocator", ["uniform", "greedy"])
    def test_baseline_allocators_run(self, allocator):
        result = small_campaign(allocator=allocator).run()
        assert result.total_screens == 9

    def test_beliefs_fold_into_sites(self):
        campaign = small_campaign()
        result = campaign.run()
        assert sum(s["screens"] for s in result.sites) == result.total_screens
        assert sum(s["cases"] for s in result.sites) == result.total_cases
        screened = sum(st.belief.screened for st in campaign.states)
        assert screened == 6 * result.total_screens

    def test_hyperprior_learns_once_enough_sites_observed(self):
        campaign = small_campaign(rounds=4)
        default = campaign.hyperprior
        campaign.run()
        assert campaign.hyperprior != default

    def test_learn_hyperprior_can_be_disabled(self):
        fleet = heterogeneous_fleet(4, cohort_size=6, seed=2)
        config = CampaignConfig(rounds=3, budget=3, seed=5, max_stages=30,
                                learn_hyperprior=False)
        campaign = Campaign(fleet, config)
        default = campaign.hyperprior
        campaign.run()
        assert campaign.hyperprior == default

    def test_snapshot_shape(self):
        campaign = small_campaign()
        campaign.run_round()
        doc = campaign.snapshot()
        assert doc["next_round"] == 1 and not doc["finished"]
        assert len(doc["rounds"]) == 1
        assert "wall_s" not in doc["rounds"][0]
        assert {s["name"] for s in doc["sites"]} == {f"site-{k:02d}" for k in range(4)}

    def test_household_fleet_requires_dense(self):
        fleet = make_fleet("household", 2, cohort_size=6)
        with pytest.raises(ValueError):
            Campaign(fleet, CampaignConfig(backend="sparse"))
        Campaign(fleet, CampaignConfig())  # dense is fine


class TestEngineParity:
    def test_parallel_matches_serial(self):
        serial = small_campaign().run()
        with Context(mode="threads", parallelism=3) as ctx:
            parallel = small_campaign(ctx=ctx).run()
        assert parallel.summary() == serial.summary()
        assert parallel.round_rows() == serial.round_rows()
        assert parallel.sites == serial.sites


class TestBackends:
    @pytest.mark.parametrize("backend", ["sparse", "particle"])
    def test_approximate_backends_run(self, backend):
        result = small_campaign(backend=backend, rounds=2).run()
        assert result.total_screens == 6
        assert result.summary()["backend"] == backend

    def test_household_campaign_runs_dense(self):
        fleet = make_fleet("household", 2, cohort_size=6)
        config = CampaignConfig(rounds=2, budget=2, seed=1, max_stages=30)
        result = Campaign(fleet, config).run()
        assert result.total_screens == 4


class TestEvents:
    def test_round_posts_full_event_sequence(self):
        bus = EventBus()
        recorder = bus.register(FlightRecorder())
        campaign = small_campaign(bus=bus)
        campaign.run_round()
        kinds = [e["kind"] for e in recorder.events()]
        assert kinds[0] == "surveil_round_start"
        assert kinds[1] == "surveil_budget_allocated"
        assert kinds[-1] == "surveil_round_end"
        assert kinds.count("surveil_site_screened") == 3

    def test_events_carry_trace_and_phase(self):
        bus = EventBus()
        recorder = bus.register(FlightRecorder())
        small_campaign(bus=bus, rounds=2).run()
        events = recorder.events()
        assert events
        assert all(e["trace_id"] for e in events)
        assert all(e["span_id"] for e in events)
        assert all(e["phase"] == "surveil" for e in events)
        # run() wraps every round in one campaign-wide trace scope
        assert len({e["trace_id"] for e in events}) == 1
        starts = [e for e in events if e["kind"] == "surveil_round_start"]
        assert [e["round_index"] for e in starts] == [0, 1]

    def test_engine_context_bus_receives_campaign_events(self):
        with Context(mode="serial", parallelism=2) as ctx:
            small_campaign(ctx=ctx, rounds=2).run()
            recorder = ctx.flight_recorder
            kinds = {e["kind"] for e in recorder.events(limit=recorder.capacity)}
        assert "surveil_round_start" in kinds
        assert "job_start" in kinds  # screens really ran through the engine

    def test_chrome_export_renders_surveil_events(self):
        from repro.obs import chrome_trace, validate_chrome_trace

        bus = EventBus()
        recorder = bus.register(FlightRecorder())
        small_campaign(bus=bus).run()
        doc = chrome_trace(recorder.events(limit=recorder.capacity))
        validate_chrome_trace(doc)
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(name.startswith("surveil round") for name in names)
        assert any(name.startswith("allocate[thompson]") for name in names)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["name"].startswith("surveil round")]
        assert len(slices) == 3


class TestBanditLearning:
    def test_thompson_shifts_budget_toward_hot_sites(self):
        # Two extreme sites: after several rounds the hot one should hold
        # most of the cumulative budget.
        fleet = (
            heterogeneous_fleet(1, cohort_size=8, seed=0, low=0.18, high=0.18)
            + heterogeneous_fleet(1, cohort_size=8, seed=0, low=0.001, high=0.001)
        )
        config = CampaignConfig(rounds=8, budget=4, seed=3, max_stages=30)
        campaign = Campaign(fleet, config)
        campaign.run()
        hot, cold = campaign.states[0], campaign.states[1]
        assert hot.screens > cold.screens
        assert hot.belief.mean(campaign.hyperprior) > cold.belief.mean(campaign.hyperprior)
