"""Site beliefs and the learned Beta hyperprior."""

import pytest

from repro.surveil.beliefs import BetaHyperprior, SiteBelief, learn_hyperprior


class TestBetaHyperprior:
    def test_mean_and_pseudo_count(self):
        h = BetaHyperprior(alpha=2.0, beta=18.0)
        assert h.mean == pytest.approx(0.1)
        assert h.pseudo_count == pytest.approx(20.0)

    def test_default_is_low_prevalence(self):
        h = BetaHyperprior()
        assert 0.0 < h.mean < 0.1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BetaHyperprior(alpha=0.0)
        with pytest.raises(ValueError):
            BetaHyperprior(beta=-1.0)


class TestSiteBelief:
    def test_posterior_is_conjugate_update(self):
        b = SiteBelief()
        b.observe(cases=3, screened=10)
        hyper = BetaHyperprior(alpha=1.0, beta=30.0)
        alpha, beta = b.posterior(hyper)
        assert alpha == pytest.approx(1.0 + 3)
        assert beta == pytest.approx(30.0 + 7)

    def test_observations_accumulate(self):
        b = SiteBelief()
        b.observe(1, 10)
        b.observe(2, 10)
        assert (b.cases, b.screened) == (3, 20)

    def test_mean_moves_toward_evidence(self):
        hyper = BetaHyperprior()
        hot, cold = SiteBelief(), SiteBelief()
        hot.observe(8, 20)
        cold.observe(0, 20)
        assert hot.mean(hyper) > hyper.mean > cold.mean(hyper)

    def test_rejects_invalid_outcomes(self):
        b = SiteBelief()
        with pytest.raises(ValueError):
            b.observe(cases=5, screened=3)
        with pytest.raises(ValueError):
            b.observe(cases=1, screened=-1)


class TestLearnHyperprior:
    def test_fewer_than_two_observed_sites_keeps_default(self):
        default = BetaHyperprior(alpha=2.0, beta=40.0)
        one = SiteBelief()
        one.observe(1, 10)
        assert learn_hyperprior([one, SiteBelief()], default) is default
        assert learn_hyperprior([], default) is default

    def test_fit_tracks_fleet_mean(self):
        beliefs = []
        for cases in (0, 1, 2, 4, 6):
            b = SiteBelief()
            b.observe(cases, 40)
            beliefs.append(b)
        fitted = learn_hyperprior(beliefs)
        rates = [(b.cases + 0.5) / (b.screened + 1.0) for b in beliefs]
        assert fitted.mean == pytest.approx(sum(rates) / len(rates), rel=1e-6)

    def test_heterogeneous_fleet_learns_diffuse_prior(self):
        homogeneous, heterogeneous = [], []
        for cases in (2, 2, 3, 2, 3):
            b = SiteBelief()
            b.observe(cases, 50)
            homogeneous.append(b)
        for cases in (0, 0, 1, 6, 14):
            b = SiteBelief()
            b.observe(cases, 50)
            heterogeneous.append(b)
        assert (
            learn_hyperprior(homogeneous).pseudo_count
            > learn_hyperprior(heterogeneous).pseudo_count
        )

    def test_pseudo_count_clamped(self):
        near_identical = []
        for cases in (3, 3, 3, 3, 4):
            b = SiteBelief()
            b.observe(cases, 1000)
            near_identical.append(b)
        fitted = learn_hyperprior(near_identical, max_pseudo=200.0)
        assert fitted.pseudo_count == pytest.approx(200.0)

    def test_degenerate_variance_keeps_default(self):
        default = BetaHyperprior()
        same = []
        for _ in range(4):
            b = SiteBelief()
            b.observe(2, 40)
            same.append(b)
        assert learn_hyperprior(same, default) is default
