"""Site specs and fleet generators."""

import numpy as np
import pytest

from repro.bayes.priors import PriorSpec
from repro.lattice.states import StateSpace
from repro.surveil.sites import (
    SiteSpec,
    epidemic_fleet,
    heterogeneous_fleet,
    household_fleet,
    make_fleet,
)


class TestSiteSpec:
    def test_uniform_day_is_stationary(self):
        spec = SiteSpec(name="s", cohort_size=8, prevalence=0.05)
        assert spec.day_prevalence(0) == spec.day_prevalence(11) == pytest.approx(0.05)

    def test_epidemic_prevalence_moves_with_rounds(self):
        spec = SiteSpec(name="s", cohort_size=8, kind="epidemic",
                        sir_beta=0.4, sir_gamma=0.05, sir_i0=0.01)
        early, late = spec.day_prevalence(0), spec.day_prevalence(40)
        assert late > early  # pre-peak the wave is rising

    def test_phase_advances_the_wave(self):
        base = dict(name="s", cohort_size=8, kind="epidemic",
                    sir_beta=0.4, sir_gamma=0.05, sir_i0=0.01)
        assert (SiteSpec(phase=30, **base).day_prevalence(0)
                == pytest.approx(SiteSpec(phase=0, **base).day_prevalence(30)))

    def test_household_prevalence_is_intro_times_attack(self):
        spec = SiteSpec(name="s", cohort_size=6, kind="household",
                        households=(3, 3), intro_prob=0.2, attack_rate=0.5)
        assert spec.day_prevalence(3) == pytest.approx(0.1)

    def test_build_day_uniform(self):
        spec = SiteSpec(name="s", cohort_size=8, prevalence=0.05)
        prior, model, correlated = spec.build_day(0, np.random.default_rng(0))
        assert isinstance(prior, PriorSpec) and prior.n_items == 8
        assert not correlated

    def test_build_day_household_is_correlated_space(self):
        spec = SiteSpec(name="s", cohort_size=6, kind="household",
                        households=(3, 3), intro_prob=0.1)
        space, model, correlated = spec.build_day(0, np.random.default_rng(0))
        assert isinstance(space, StateSpace)
        assert correlated

    def test_build_day_seeded_determinism(self):
        spec = SiteSpec(name="s", cohort_size=8, prevalence=0.05, dispersion=6.0)
        a, _, _ = spec.build_day(2, np.random.default_rng(7))
        b, _, _ = spec.build_day(2, np.random.default_rng(7))
        assert np.array_equal(a.risks, b.risks)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteSpec(name="s", cohort_size=8, kind="nope")
        with pytest.raises(ValueError):
            SiteSpec(name="s", cohort_size=8, kind="household")  # no households
        with pytest.raises(ValueError):
            SiteSpec(name="s", cohort_size=8, kind="household", households=(3, 3))


class TestFleets:
    def test_heterogeneous_spans_prevalence_range(self):
        fleet = heterogeneous_fleet(8, seed=1, low=0.005, high=0.12)
        prevs = sorted(s.prevalence for s in fleet)
        assert prevs[0] == pytest.approx(0.005)
        assert prevs[-1] == pytest.approx(0.12)
        assert len(fleet) == 8

    def test_heterogeneous_seeded_shuffle(self):
        assert heterogeneous_fleet(6, seed=3) == heterogeneous_fleet(6, seed=3)
        a = [s.prevalence for s in heterogeneous_fleet(6, seed=3)]
        b = [s.prevalence for s in heterogeneous_fleet(6, seed=4)]
        assert sorted(a) == pytest.approx(sorted(b))
        assert a != b  # different placement of the same prevalences

    def test_epidemic_staggers_phases(self):
        fleet = epidemic_fleet(4, stagger_days=10, seed=0)
        assert [s.phase for s in fleet] == [0, 10, 20, 30]
        assert all(s.kind == "epidemic" for s in fleet)

    def test_household_fleet_shapes(self):
        fleet = household_fleet(3, cohort_size=6, household_size=3)
        assert all(s.households == (3, 3) for s in fleet)
        with pytest.raises(ValueError):
            household_fleet(3, cohort_size=7, household_size=3)

    def test_make_fleet_dispatch(self):
        assert make_fleet("heterogeneous", 3)[0].kind == "uniform"
        assert make_fleet("epidemic", 3)[0].kind == "epidemic"
        assert make_fleet("household", 3, cohort_size=6)[0].kind == "household"
        with pytest.raises(ValueError):
            make_fleet("flotilla", 3)
