#!/usr/bin/env python3
"""The pooling calculator: should this lab pool, and how much is saved?

Reproduces the decision support of the Biostatistics'22 web calculator:
for a grid of prevalence levels, Monte-Carlo the expected tests per
individual, the stage count (turnaround time proxy), their variability,
and accuracy — then print the pool/don't-pool verdict per level.

    python examples/pooling_calculator.py
"""

from repro import BHAPolicy, BinaryErrorModel
from repro.workflows.calculator import format_calculator_table, pooling_calculator


def main() -> None:
    model = BinaryErrorModel(sensitivity=0.99, specificity=0.995)
    entries = pooling_calculator(
        model,
        BHAPolicy,
        prevalences=[0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30],
        cohort_size=12,
        replications=15,
        rng=0,
    )
    print(format_calculator_table(entries))
    print()
    for e in entries:
        if not e.pooling_recommended:
            print(f"pooling stops paying off near {e.prevalence:.0%} prevalence "
                  f"({e.mean_tests_per_individual:.2f} tests/individual).")
            break
    else:
        print("pooling saves tests at every level tested.")


if __name__ == "__main__":
    main()
