#!/usr/bin/env python3
"""Model checking: is the inference model matched to the assay?

Two diagnostics a surveillance program should run continuously, both
needing nothing but screening data:

1. **Bayes-factor model comparison** — replay the observed test trail
   under candidate response models; the marginal likelihood picks out
   the dilution law actually generating the outcomes.
2. **Calibration** — bin final posterior marginals against (simulated)
   truth; a mismatched model shows up as systematic over/under-confidence
   long before raw accuracy collapses.

Here the lab's assay secretly dilutes (δ = 1.0) while one of the two
analysis pipelines assumes it doesn't.

    python examples/model_checking.py
"""

import numpy as np

from repro import BinaryErrorModel, DilutionErrorModel, Posterior, PriorSpec
from repro.bayes.model_selection import compare_models, format_comparison
from repro.metrics.calibration import calibration_report
from repro.simulate.population import make_cohort
from repro.simulate.testing import TestLab

TRUE_MODEL = DilutionErrorModel(sensitivity=0.98, specificity=0.99, dilution_exponent=1.0)
CANDIDATES = {
    "no-dilution": BinaryErrorModel(0.98, 0.99),
    "mild-dilution (δ=0.3)": DilutionErrorModel(0.98, 0.99, 0.3),
    "true law (δ=1.0)": DilutionErrorModel(0.98, 0.99, 1.0),
}
POOLS = [0b00001111, 0b11110000, 0b00111100, 0b01010101, 0b11111111, 0b00000110]


def main() -> None:
    prior = PriorSpec.uniform(8, 0.2)

    # ---- 1. model comparison on pooled trails ------------------------
    # Ten cohorts' worth of pooled outcomes; evidence accumulates per
    # cohort (each gets a fresh prior).
    from repro.bayes.model_selection import ModelEvidence, replay_log_evidence

    totals = {name: 0.0 for name in CANDIDATES}
    for seed in range(10):
        cohort = make_cohort(prior, rng=seed)
        lab = TestLab(TRUE_MODEL, cohort.truth_mask, rng=seed)
        piece = [(pool, lab.run(pool)) for pool in POOLS]
        for name, model in CANDIDATES.items():
            totals[name] += replay_log_evidence(prior, model, piece)

    scored = sorted(
        (ModelEvidence(n, ev) for n, ev in totals.items()),
        key=lambda m: -m.log_evidence,
    )
    print(format_comparison(scored))
    print(f"\n→ the data prefer '{scored[0].name}' "
          f"(log BF {scored[0].log_evidence - scored[1].log_evidence:+.1f} over runner-up)\n")

    # ---- 2. calibration of the two pipelines -------------------------
    for label, infer_model in (
        ("assuming no dilution", CANDIDATES["no-dilution"]),
        ("using the true law", CANDIDATES["true law (δ=1.0)"]),
    ):
        preds, truths = [], []
        for seed in range(120):
            cohort = make_cohort(prior, rng=1000 + seed)
            lab = TestLab(TRUE_MODEL, cohort.truth_mask, rng=seed)
            post = Posterior.from_prior(prior, infer_model)
            for pool in POOLS[:3]:
                post.update(pool, lab.run(pool))
            preds.extend(post.marginals())
            truths.extend(cohort.is_positive(i) for i in range(8))
        report = calibration_report(np.array(preds), np.array(truths), num_bins=5)
        print(f"pipeline {label}:")
        print(report.to_table())
        print()


if __name__ == "__main__":
    main()
