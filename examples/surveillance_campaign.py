#!/usr/bin/env python3
"""A 30-day surveillance campaign over an epidemic wave.

Screens a fresh community cohort every day while SIR dynamics move
prevalence from 0.5% up through a wave; shows how pooled-testing cost
tracks prevalence (cheap while the community is clean, converging toward
individual testing near the peak) — the operating regime the paper's
disease-surveillance framing targets.

    python examples/surveillance_campaign.py
"""

import numpy as np

from repro import BHAPolicy, DilutionErrorModel
from repro.metrics.reporting import format_table
from repro.simulate.epidemic import sir_prevalence
from repro.workflows.surveillance import run_surveillance


def sparkline(values: np.ndarray, width: int = 40) -> str:
    """Cheap terminal plot: one block character per bucket."""
    blocks = " ▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    idx = np.linspace(0, len(values) - 1, width).round().astype(int)
    sampled = values[idx]
    top = sampled.max() or 1.0
    return "".join(blocks[int(v / top * (len(blocks) - 1))] for v in sampled)


def main() -> None:
    days = 30
    prevalence = sir_prevalence(days, beta=0.45, gamma=0.12, i0=0.005)
    model = DilutionErrorModel(sensitivity=0.98, specificity=0.995, dilution_exponent=0.25)

    campaign = run_surveillance(
        model,
        BHAPolicy,
        days=days,
        cohort_size=12,
        rng=42,
        prevalence=prevalence,
        max_stages=60,
    )

    print("prevalence      :", sparkline(campaign.prevalence_series()))
    print("tests/individual:", sparkline(campaign.tests_per_individual_series()))

    # The campaign's own pooled outcomes double as a prevalence sensor:
    # estimate the epidemic curve from testing traffic alone.
    posteriors = campaign.estimated_prevalence_series(model, window=3)
    estimated = np.array([p.mean if p else 0.0 for p in posteriors])
    print("estimated prev  :", sparkline(estimated))
    print()

    rows = []
    for d in campaign.days[::5]:
        rows.append(
            [
                d.day,
                f"{d.prevalence:.1%}",
                d.result.cohort.n_positive,
                d.result.efficiency.num_tests,
                f"{d.result.tests_per_individual:.2f}",
                f"{d.result.accuracy:.0%}",
            ]
        )
    print(format_table(
        ["day", "prevalence", "true +", "tests", "tests/ind", "accuracy"],
        rows,
        title="Campaign snapshots (every 5th day)",
    ))

    print(f"\ncampaign totals: {campaign.total_tests} tests for "
          f"{campaign.total_individuals} individuals "
          f"({campaign.overall_tests_per_individual:.2f} tests/individual)")
    print(f"positives found: {campaign.detected_positives()} of "
          f"{campaign.true_positives_present()} present")


if __name__ == "__main__":
    main()
