#!/usr/bin/env python3
"""A city-scale testing program: 600 people, engine-parallel cohorts.

Stratifies a heterogeneous population into risk-sorted cohorts of 12,
screens every cohort as an independent engine task (the across-cohort
scalability axis; within-lattice distribution is the other), and prints
the program-level numbers a public-health team reports: total tests,
turnaround (slowest cohort's stage count), detection.

    python examples/population_program.py
"""

import numpy as np

from repro import BHAPolicy, BinaryErrorModel, Context
from repro.metrics.reporting import format_table
from repro.workflows.population import screen_population, split_into_cohorts


def main() -> None:
    rng = np.random.default_rng(2026)
    # A mixed population: mostly background risk, a tail of recent contacts.
    risks = np.concatenate([
        rng.beta(1.2, 60, size=540),   # community background (~2%)
        rng.beta(4, 12, size=60),      # exposed contacts (~25%)
    ])
    priors = split_into_cohorts(risks, cohort_size=12)
    model = BinaryErrorModel(sensitivity=0.99, specificity=0.995)

    with Context(mode="threads", parallelism=4) as ctx:
        result = screen_population(
            ctx, priors, model, BHAPolicy, rng=7, negative_threshold=0.002
        )

    print(f"population        : {result.total_individuals} people "
          f"in {len(result.screens)} cohorts of ≤12")
    print(f"tests used        : {result.total_tests} "
          f"({result.tests_per_individual:.2f} per individual)")
    print(f"saved vs individual: {1 - result.tests_per_individual:.0%}")
    print(f"turnaround        : {result.max_stages} stages (slowest cohort)")
    print(f"accuracy          : {result.overall_accuracy:.2%}")
    print(f"positives found   : {len(result.found_positives())}")

    # Cost concentrates in the high-risk cohorts — show the gradient.
    rows = []
    for idx in (0, len(result.screens) // 2, len(result.screens) - 1):
        s = result.screens[idx]
        rows.append([
            idx,
            f"{s.cohort.prior.risks.mean():.1%}",
            s.efficiency.num_tests,
            f"{s.tests_per_individual:.2f}",
            s.stages_used,
        ])
    print()
    print(format_table(
        ["cohort", "mean risk", "tests", "tests/ind", "stages"],
        rows,
        title="Cost gradient across risk strata (first / middle / last cohort)",
    ))


if __name__ == "__main__":
    main()
