#!/usr/bin/env python3
"""Outbreak contact tracing: heterogeneous risk and policy comparison.

The scenario the Bayesian framework is built for: a cluster of exposed
contacts (25% prior risk) embedded in a routine cohort (1%).  Classical
designs (Dorfman grids) can't use that information; the Bayesian Halving
Algorithm pools the low-risk majority aggressively and isolates the
exposed tier quickly.

Compares BHA, 2-step look-ahead, Dorfman, and individual testing on the
*same* ground truth, and prints the evidence trail of the BHA run.

    python examples/outbreak_contact_tracing.py
"""

import numpy as np

from repro import (
    BHAPolicy,
    Context,
    DorfmanPolicy,
    IndividualTestingPolicy,
    LookaheadPolicy,
    SBGTConfig,
    SBGTSession,
    get_scenario,
    make_cohort,
)
from repro.metrics.reporting import format_table


def main() -> None:
    scenario = get_scenario("outbreak")
    prior, model = scenario.build(12, rng=7)
    print(scenario.description)
    print(f"risk tiers: {sorted(set(np.round(prior.risks, 3)))}\n")

    # One shared ground truth so the comparison is apples-to-apples.
    cohort = make_cohort(prior, rng=99)
    print(f"hidden truth: individuals {cohort.positives()} are infected\n")

    policies = [
        BHAPolicy(),
        LookaheadPolicy(2),
        DorfmanPolicy(4),
        IndividualTestingPolicy(),
    ]

    rows = []
    evidence_trail = None
    with Context(mode="threads", parallelism=4) as ctx:
        for policy in policies:
            session = SBGTSession(ctx, prior, model, SBGTConfig(max_stages=60))
            result = session.run_screen(policy, rng=1234, cohort=cohort)
            rows.append(
                [
                    policy.name,
                    result.efficiency.num_tests,
                    result.stages_used,
                    f"{result.accuracy:.1%}",
                    f"{result.confusion.sensitivity:.1%}",
                    result.report.positives(),
                ]
            )
            if isinstance(policy, BHAPolicy):
                evidence_trail = list(session.log.records)
            session.close()

    print(format_table(
        ["policy", "tests", "stages", "accuracy", "sensitivity", "called positive"],
        rows,
        title="Policy comparison (same cohort, same assay)",
    ))

    print("\nBHA evidence trail (stage: pool -> outcome):")
    for rec in evidence_trail:
        members = [i for i in range(12) if (rec.pool_mask >> i) & 1]
        call = "POS" if rec.outcome else "neg"
        print(f"  stage {rec.stage:2d}: pool {members} -> {call} "
              f"(log-predictive {rec.log_predictive:+.3f})")


if __name__ == "__main__":
    main()
