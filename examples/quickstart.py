#!/usr/bin/env python3
"""Quickstart: screen one cohort with distributed Bayesian group testing.

Runs a 16-person cohort at 2% prevalence through an SBGT session with the
Bayesian Halving Algorithm, on a diluting assay, and prints what a lab
would care about: who is positive, how many tests and stages it took, and
how that compares with testing everyone individually.

    python examples/quickstart.py
"""

from repro import (
    BHAPolicy,
    Context,
    DilutionErrorModel,
    PriorSpec,
    SBGTConfig,
    SBGTSession,
)


def main() -> None:
    # 16 individuals, each with a 2% prior infection probability.
    prior = PriorSpec.uniform(16, 0.02)

    # A realistic assay: 98% sensitive undiluted, losing sensitivity as
    # positives are diluted in larger pools; 99.5% specific.
    model = DilutionErrorModel(sensitivity=0.98, specificity=0.995, dilution_exponent=0.3)

    # Under dilution a single negative pooled test is weak evidence, so
    # demand a marginal below 0.2% (a decade under the prior) before
    # clearing anyone — this is the knob the calculator example sweeps.
    config = SBGTConfig(negative_threshold=0.002)

    with Context(mode="threads", parallelism=4) as ctx:
        session = SBGTSession(ctx, prior, model, config)
        result = session.run_screen(BHAPolicy(), rng=2024)

        print(f"cohort size          : {result.cohort.n_items}")
        print(f"truly infected       : {result.cohort.positives()}")
        print(f"classified positive  : {result.report.positives()}")
        print(f"classified negative  : {len(result.report.negatives())} individuals")
        print(f"tests used           : {result.efficiency.num_tests} "
              f"({result.tests_per_individual:.2f} per individual)")
        print(f"stages (lab rounds)  : {result.stages_used}")
        print(f"accuracy vs truth    : {result.accuracy:.1%}")
        print(f"saved vs individual  : {result.efficiency.savings_vs_individual:.1%} of tests")
        session.close()


if __name__ == "__main__":
    main()
