#!/usr/bin/env python3
"""Interruptible screening: checkpoint a session, restore it, finish.

Lab reality: stage 1 results come back in the evening, stage 2 the next
morning, and the analysis process does not stay up in between.  The
session checkpoints to a single ``.npz`` (belief state + full evidence
trail) and resumes bit-identically — including the JSON audit log.

    python examples/resume_session.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BHAPolicy,
    Context,
    DilutionErrorModel,
    PriorSpec,
    SBGTSession,
)
from repro.simulate import TestLab, make_cohort


def main() -> None:
    prior = PriorSpec.sampled(12, 0.06, rng=8)
    model = DilutionErrorModel(0.98, 0.995, 0.25)
    cohort = make_cohort(prior, rng=9)
    lab = TestLab(model, cohort.truth_mask, rng=10)
    ckpt = Path(tempfile.gettempdir()) / "sbgt_session.npz"

    # ---- evening: run two stages, then the process goes away ---------
    with Context(mode="threads", parallelism=4) as ctx:
        session = SBGTSession(ctx, prior, model)
        policy = BHAPolicy()
        for _ in range(2):
            report = session.classify()
            pools = session.select_pools(policy, report.undetermined_mask())
            session.begin_stage()
            for pool in pools:
                session.update(pool, lab.run(pool))
        session.save(ckpt)
        before = session.marginals().copy()
        print(f"evening : {session.num_tests} tests across "
              f"{session.log.num_stages} stages, checkpointed to {ckpt.name}")
        session.close()

    # ---- next morning: new process, new context, same belief ---------
    with Context(mode="threads", parallelism=4) as ctx:
        session = SBGTSession.load(ctx, ckpt, prior, model)
        assert np.allclose(session.marginals(), before, atol=1e-10)
        print(f"morning : restored {session.num_tests} tests, "
              f"log evidence {session.log.log_evidence:+.3f}")

        policy = BHAPolicy()
        report = session.classify()
        while not report.all_classified and session.log.num_stages < 40:
            pools = session.select_pools(policy, report.undetermined_mask())
            session.begin_stage()
            for pool in pools:
                session.update(pool, lab.run(pool))
            report = session.classify()

        print(f"finished: {session.num_tests} tests total; "
              f"positives {report.positives()} "
              f"(truth {cohort.positives()})")

        audit = json.loads(session.log.to_json())
        print(f"audit log: {audit['num_tests']} entries, "
              f"stages {audit['num_stages']}, spans the checkpoint boundary")
        session.close()
    ckpt.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
