#!/usr/bin/env python3
"""A tour of the dataflow engine SBGT runs on.

SBGT's substrate is a from-scratch Spark-like engine; this example uses
it directly — word count, a join, broadcast + accumulator, and a look at
the stage/task metrics the scheduler records.  Useful when porting SBGT
to a different backend or debugging a screen's execution profile.

    python examples/engine_tour.py
"""

from repro.engine import Context


def main() -> None:
    with Context(mode="threads", parallelism=4) as ctx:
        # --- classic word count (shuffle + map-side combine) ----------
        lines = [
            "bayesian group testing scales",
            "group testing saves tests",
            "bayesian halving selects tests",
        ]
        counts = (
            ctx.parallelize(lines, 3)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .sort_by(lambda kv: -kv[1])
            .collect()
        )
        print("word count:", counts[:4])

        # --- join across two keyed datasets ---------------------------
        risks = ctx.parallelize([("alice", 0.02), ("bob", 0.30), ("carol", 0.05)], 2)
        results = ctx.parallelize([("alice", "neg"), ("bob", "pos")], 2)
        print("join      :", sorted(risks.join(results).collect()))

        # --- broadcast + accumulator ----------------------------------
        threshold = ctx.broadcast(0.1)
        flagged = ctx.accumulator(0)

        def flag(kv):
            if kv[1] > threshold.value:
                flagged.add(1)

        risks.foreach(flag)
        print("flagged   :", flagged.value, "high-risk individuals")

        # --- scheduler metrics ----------------------------------------
        job = ctx.metrics.last()
        print(f"last job  : {len(job.stages)} stage(s), {job.num_tasks} tasks, "
              f"{job.wall_s * 1e3:.1f} ms wall, "
              f"{job.scheduling_overhead_s * 1e3:.2f} ms scheduling overhead")

        # --- the same lineage, skipped stages on re-run ---------------
        wc = (
            ctx.parallelize(lines, 3)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        wc.count()
        first_run_stages = len(ctx.metrics.last().stages)
        wc.count()  # shuffle output is reused: map stage skipped
        second_run_stages = len(ctx.metrics.last().stages)
        print(f"stage reuse: first run {first_run_stages} stages, "
              f"re-run {second_run_stages} stage (shuffle reused)")


if __name__ == "__main__":
    main()
