#!/usr/bin/env python3
"""Household screening: correlated priors, a lattice-model exclusive.

Transmission clusters: when one household member is infected, the rest
probably are too.  Product-Bernoulli designs cannot encode that; the
lattice carries an arbitrary state distribution, so here the prior is a
household model (community introduction × within-household attack rate),
and the Bayesian Halving Algorithm discovers household-shaped pools on
its own — then one positive member's test resolves whole households.

Compares the same screen with (a) the true household prior and (b) an
independence prior with matched marginals, on identical ground truths.

    python examples/household_screening.py
"""

import numpy as np

from repro import BHAPolicy, BinaryErrorModel, Context, PriorSpec
from repro.bayes.correlated import HouseholdPrior, pairwise_correlation
from repro.bayes.posterior import Posterior
from repro.metrics.classification import evaluate_classification
from repro.metrics.reporting import format_table
from repro.simulate.testing import TestLab


def run_with_space(space, model, truth_mask, rng, max_stages=60):
    """Screen driven directly from an arbitrary prior state space."""
    posterior = Posterior(space.copy(), model)
    lab = TestLab(model, truth_mask, rng)
    policy = BHAPolicy()
    stages = 0
    report = posterior.classify(0.99, 0.01)
    while not report.all_classified and stages < max_stages:
        pools = policy.select(posterior, report.undetermined_mask())
        posterior.begin_stage()
        stages += 1
        for pool in pools:
            posterior.update(pool, lab.run(pool))
        report = posterior.classify(0.99, 0.01)
    return report, lab.stats.num_tests, stages


def main() -> None:
    households = [4, 3, 4, 3]  # 14 individuals in 4 households
    hp = HouseholdPrior(households, intro_prob=0.10, attack_rate=0.65)
    household_space = hp.build_dense()
    print(f"cohort: {hp.n_items} people in households of {households}")
    print(f"marginal risk      : {hp.marginal_risk():.3f}")
    print(f"within-household ρ : {pairwise_correlation(household_space, 0, 1):.2f}")
    print(f"across-household ρ : {pairwise_correlation(household_space, 0, 5):.2f}\n")

    # Independence prior with the same per-person marginal risk.
    indep_space = PriorSpec.uniform(hp.n_items, hp.marginal_risk()).build_dense()
    model = BinaryErrorModel(sensitivity=0.99, specificity=0.995)

    rows = []
    totals = {"household": [0, 0, 0], "independent": [0, 0, 0]}
    rng = np.random.default_rng(11)
    for trial in range(6):
        truth = hp.draw_truth(rng=100 + trial)  # truth follows the household law
        for label, space in (("household", household_space), ("independent", indep_space)):
            report, tests, stages = run_with_space(space, model, truth, np.random.default_rng(7))
            conf = evaluate_classification(report, truth)
            totals[label][0] += tests
            totals[label][1] += stages
            totals[label][2] += conf.accuracy
            if trial < 3:
                rows.append(
                    [trial, label, bin(truth).count("1"), tests, stages, f"{conf.accuracy:.0%}"]
                )

    print(format_table(
        ["trial", "prior", "true +", "tests", "stages", "accuracy"],
        rows,
        title="First three trials",
    ))
    print("\n6-trial totals:")
    for label, (tests, stages, acc) in totals.items():
        print(f"  {label:12s}: {tests:3d} tests, {stages:3d} stages, "
              f"mean accuracy {acc / 6:.1%}")
    saved = totals["independent"][0] - totals["household"][0]
    print(f"\nmodelling the household structure saved {saved} tests "
          f"({saved / max(totals['independent'][0], 1):.0%}) on identical cohorts.")


if __name__ == "__main__":
    main()
