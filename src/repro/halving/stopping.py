"""Decision-theoretic stopping: when is another stage worth running?

Threshold stopping (classify at 0.99/0.01) treats every residual doubt
alike.  A testing program actually faces *costs*: a missed infection
(false negative), a needless isolation (false positive), and the price
of one more assay.  The Bayes-optimal terminal action for individual
``i`` with marginal ``m_i`` is whichever call has lower expected loss —
``min(m_i · c_fn, (1 − m_i) · c_fp)`` — so the cohort's expected
terminal loss is the sum of those minima.  Testing is worth continuing
while that residual risk exceeds the cost of the tests a stage would
consume.

This is the lightweight per-stage version of the framework's loss-based
sequential analysis; it plugs into ``run_screen`` /
``SBGTSession.run_screen`` as ``stopping_rule``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["LossBasedStopping", "terminal_loss"]


def terminal_loss(
    marginals: Sequence[float], fp_cost: float, fn_cost: float
) -> Tuple[float, List[bool]]:
    """Expected loss of classifying *now*, plus the optimal calls.

    Returns ``(expected_loss, calls)`` where ``calls[i]`` is True for a
    positive call (chosen when ``m_i · c_fn > (1 − m_i) · c_fp``).
    """
    m = np.asarray(marginals, dtype=np.float64)
    if np.any(m < -1e-12) or np.any(m > 1 + 1e-12):
        raise ValueError("marginals must be probabilities")
    loss_if_neg = m * fn_cost  # calling negative risks a false negative
    loss_if_pos = (1.0 - m) * fp_cost
    calls = loss_if_pos < loss_if_neg
    return float(np.minimum(loss_if_neg, loss_if_pos).sum()), calls.tolist()


@dataclass(frozen=True)
class LossBasedStopping:
    """Stop when residual risk no longer justifies another test.

    Parameters
    ----------
    fp_cost, fn_cost:
        Loss of a false positive / false negative call, in the same
        units as ``test_cost``.  Surveillance programs typically set
        ``fn_cost ≫ fp_cost``.
    test_cost:
        Cost of one assay.
    """

    fp_cost: float = 1.0
    fn_cost: float = 10.0
    test_cost: float = 0.1

    def __post_init__(self) -> None:
        if min(self.fp_cost, self.fn_cost, self.test_cost) <= 0:
            raise ValueError("all costs must be positive")

    def should_stop(self, marginals: Sequence[float]) -> bool:
        """True when classifying now beats paying for one more test."""
        loss, _ = terminal_loss(marginals, self.fp_cost, self.fn_cost)
        return loss <= self.test_cost

    def decision_threshold(self) -> float:
        """The marginal above which a positive call is loss-optimal."""
        return self.fp_cost / (self.fp_cost + self.fn_cost)

    def classify_now(self, marginals: Sequence[float]) -> List[bool]:
        """Loss-optimal terminal calls (True = positive)."""
        _, calls = terminal_loss(marginals, self.fp_cost, self.fn_cost)
        return calls
