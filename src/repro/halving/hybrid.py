"""Hybrid selection: non-adaptive first round, Bayesian refinement after.

Labs like non-adaptive first rounds — all stage-1 pools are known before
any result returns, so plates can be prepared in advance.  Full
sequential halving is maximally test-efficient but serial.  The hybrid
runs an optimally-sized Dorfman grid as stage 1 (non-adaptive,
plate-friendly), then lets the Bayesian Halving Algorithm refine the
posterior those pools produced — usually recovering most of pure BHA's
test savings at a fraction of its stage count.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.halving.candidates import CandidateGenerator
from repro.halving.policy import BHAPolicy, DorfmanPolicy, SelectionPolicy

__all__ = ["HybridPolicy"]


class HybridPolicy(SelectionPolicy):
    """Dorfman stage 1, Bayesian halving afterwards.

    Parameters
    ----------
    pool_size:
        Stage-1 Dorfman pool size; ``None`` sizes it optimally from the
        cohort's mean prior risk at selection time (the 1/√p rule).
    candidates:
        Candidate generator for the BHA refinement stages.
    """

    def __init__(
        self,
        pool_size: Optional[int] = None,
        candidates: Optional[CandidateGenerator] = None,
    ) -> None:
        self.pool_size = pool_size
        self._bha = BHAPolicy(candidates)
        self._stage = 0
        self.name = f"hybrid-{pool_size if pool_size else 'auto'}"

    def reset(self) -> None:
        self._stage = 0

    def _stage_one(self, posterior, eligible_mask: int) -> List[int]:
        if self.pool_size is not None:
            dorfman = DorfmanPolicy(self.pool_size)
        else:
            marginals = np.asarray(posterior.marginals(), dtype=np.float64)
            members = [i for i in range(len(marginals)) if (eligible_mask >> i) & 1]
            mean_risk = float(np.clip(marginals[members].mean(), 1e-6, 1 - 1e-6))
            dorfman = DorfmanPolicy.optimal_for(mean_risk, max_pool_size=len(members))
        return dorfman.select(posterior, eligible_mask)

    def select(self, posterior, eligible_mask: int) -> List[int]:
        self._stage += 1
        if self._stage == 1:
            return self._stage_one(posterior, eligible_mask)
        return self._bha.select(posterior, eligible_mask)
