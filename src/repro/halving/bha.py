"""The Bayesian Halving Algorithm (single-pool selection).

For a candidate pool ``A``, the lattice splits into the down-set
``D_A = {states with no positive in A}`` and its complementary up-set.
A (noiseless) pooled test of ``A`` resolves exactly this dichotomy, so
the most informative pool is the one whose down-set posterior mass is
nearest one half — the halving rule.  The Biostatistics'22 analysis
proves this rule optimally convergent for lattice classification even
under strong dilution, which is why SBGT's "test selection" operation
class is precisely a massively-parallel arg-min of this objective.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.lattice.partition import LatticeBlock, block_down_set_partial
from repro.lattice.states import StateSpace
from repro.util.bits import popcount64

__all__ = ["down_set_masses", "halving_objective", "select_halving_pool"]


def down_set_masses(space: StateSpace, pool_masks: np.ndarray) -> np.ndarray:
    """Normalised down-set mass of every candidate pool (vectorised).

    Weights are exponentiated against the running maximum so the result
    is stable for unnormalised log-probabilities too.
    """
    pools = np.asarray(pool_masks, dtype=np.uint64)
    shift = float(space.log_probs.max())
    w = np.exp(space.log_probs - shift)
    block = LatticeBlock(space.n_items, space.masks, space.log_probs - shift)
    partial = block_down_set_partial(block, pools)
    return partial / w.sum()


def halving_objective(masses: np.ndarray) -> np.ndarray:
    """Distance of each down-set mass from the ideal half split."""
    return np.abs(np.asarray(masses, dtype=np.float64) - 0.5)


def select_halving_pool(
    space: StateSpace, pool_masks: np.ndarray
) -> Tuple[int, float, float]:
    """Pick the candidate minimising the halving objective.

    Ties break toward smaller pools (fewer samples consumed), then lower
    mask value, making selection deterministic for reproducible runs.

    Returns ``(pool_mask, down_set_mass, objective_gap)``.
    """
    pools = np.asarray(pool_masks, dtype=np.uint64)
    if pools.size == 0:
        raise ValueError("no candidate pools supplied")
    masses = down_set_masses(space, pools)
    gaps = halving_objective(masses)
    sizes = popcount64(pools)
    # Lexicographic arg-min over (gap, pool size, mask value).
    order = np.lexsort((pools, sizes, gaps))
    best = int(order[0])
    return int(pools[best]), float(masses[best]), float(gaps[best])
