"""Look-ahead rules: selecting several pooled tests per stage.

Sequential halving needs a lab round-trip per test.  The look-ahead
generalisation picks ``s`` pools *before* seeing any of their outcomes so
they run in one stage.  The s pools jointly partition the lattice into
``2^s`` cells (each state is clean/dirty for each pool); the ideal batch
gives every cell mass ``2^-s`` — the s-fold generalisation of halving.
We select greedily: each added pool minimises the deviation of the
refined cell masses from uniform, which reduces to classic halving at
``s = 1`` and is the standard tractable surrogate for the exponential
joint search.

The trade-off the experiments quantify: fewer stages, slightly more
tests (later pools in a batch are chosen with less information).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.lattice.states import StateSpace
from repro.util.bits import popcount64

__all__ = ["cell_masses", "batch_balance_objective", "select_lookahead_pools"]


def _cell_index(masks: np.ndarray, pools: Sequence[int]) -> np.ndarray:
    """Cell id of each state: bit j set iff state is dirty for pool j."""
    idx = np.zeros(masks.size, dtype=np.int64)
    for j, pool in enumerate(pools):
        dirty = (masks & np.uint64(int(pool))) != np.uint64(0)
        idx |= dirty.astype(np.int64) << j
    return idx


def cell_masses(space: StateSpace, pools: Sequence[int]) -> np.ndarray:
    """Posterior mass of each of the ``2^s`` cells induced by *pools*."""
    if len(pools) > 20:
        raise ValueError("too many pools for explicit cell enumeration")
    p = space.probs()
    idx = _cell_index(space.masks, pools)
    return np.bincount(idx, weights=p, minlength=1 << len(pools))


def batch_balance_objective(masses: np.ndarray) -> float:
    """Total-variation distance of the cell masses from uniform."""
    m = np.asarray(masses, dtype=np.float64)
    uniform = 1.0 / m.size
    return float(0.5 * np.abs(m - uniform).sum())


def select_lookahead_pools(
    space: StateSpace, candidate_masks: np.ndarray, s: int
) -> Tuple[List[int], float]:
    """Greedy s-pool batch minimising cell-mass imbalance.

    Returns ``(pools, final_objective)``.  Pool ``j+1`` is chosen given
    pools ``1..j`` by refining every existing cell into clean/dirty
    halves and scoring the refined partition's distance from uniform.
    ``s = 1`` coincides with :func:`repro.halving.bha.select_halving_pool`
    up to tie-breaking.
    """
    if s < 1:
        raise ValueError("s must be >= 1")
    candidates = np.asarray(candidate_masks, dtype=np.uint64)
    if candidates.size == 0:
        raise ValueError("no candidate pools supplied")

    p = space.probs()
    chosen: List[int] = []
    # cell id per state for the pools chosen so far (refined as we go).
    cell_idx = np.zeros(space.size, dtype=np.int64)
    best_obj = np.inf

    sizes = popcount64(candidates)
    for j in range(min(s, candidates.size)):
        n_cells = 1 << (j + 1)
        best = None
        for c_i in np.lexsort((candidates, sizes)):  # deterministic scan order
            pool = candidates[c_i]
            if int(pool) in chosen:
                continue
            dirty = (space.masks & pool) != np.uint64(0)
            refined = cell_idx | (dirty.astype(np.int64) << j)
            masses = np.bincount(refined, weights=p, minlength=n_cells)
            obj = batch_balance_objective(masses)
            if best is None or obj < best[0] - 1e-15:
                best = (obj, int(pool), refined)
        if best is None:
            break
        best_obj, pool, cell_idx = best
        chosen.append(pool)
    return chosen, float(best_obj)
