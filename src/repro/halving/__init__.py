"""Sequential pooled-test selection: the Bayesian Halving Algorithm family.

Candidate-pool generation strategies, the halving objective itself,
look-ahead (multi-pool per stage) generalisations, and the policy
interface shared by the Bayesian rules and the non-Bayesian baselines
(individual testing, Dorfman).
"""

from repro.halving.candidates import (
    CandidateGenerator,
    PrefixCandidates,
    ExhaustiveCandidates,
    RandomCandidates,
    SlidingWindowCandidates,
)
from repro.halving.bha import down_set_masses, halving_objective, select_halving_pool
from repro.halving.lookahead import select_lookahead_pools, cell_masses
from repro.halving.policy import (
    SelectionPolicy,
    BHAPolicy,
    LookaheadPolicy,
    InformationGainPolicy,
    IndividualTestingPolicy,
    DorfmanPolicy,
    ArrayTestingPolicy,
)
from repro.halving.stopping import LossBasedStopping, terminal_loss
from repro.halving.hybrid import HybridPolicy

__all__ = [
    "CandidateGenerator",
    "PrefixCandidates",
    "ExhaustiveCandidates",
    "RandomCandidates",
    "SlidingWindowCandidates",
    "down_set_masses",
    "halving_objective",
    "select_halving_pool",
    "select_lookahead_pools",
    "cell_masses",
    "SelectionPolicy",
    "BHAPolicy",
    "LookaheadPolicy",
    "InformationGainPolicy",
    "IndividualTestingPolicy",
    "DorfmanPolicy",
    "ArrayTestingPolicy",
    "HybridPolicy",
    "LossBasedStopping",
    "terminal_loss",
]
