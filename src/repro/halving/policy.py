"""Selection policies: the pluggable "which pools next?" strategies.

A policy proposes one *stage* of pooled tests given the current posterior
and the set of still-undetermined individuals.  Bayesian rules (halving,
look-ahead, information gain) read the lattice; the classical baselines
(individual testing, Dorfman) ignore it — they exist so the efficiency
experiments can reproduce the paper's comparisons.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.halving.bha import select_halving_pool
from repro.halving.candidates import CandidateGenerator, PrefixCandidates
from repro.halving.lookahead import select_lookahead_pools
from repro.lattice.ops import pool_count_distribution
from repro.util.validation import check_positive_int

__all__ = [
    "SelectionPolicy",
    "BHAPolicy",
    "LookaheadPolicy",
    "InformationGainPolicy",
    "IndividualTestingPolicy",
    "DorfmanPolicy",
    "ArrayTestingPolicy",
]


def _eligible_indices(eligible_mask: int) -> List[int]:
    out = []
    mask = int(eligible_mask)
    pos = 0
    while mask:
        if mask & 1:
            out.append(pos)
        mask >>= 1
        pos += 1
    return out


class SelectionPolicy:
    """Proposes the pooled tests of the next stage."""

    #: Human-readable name used in experiment tables.
    name: str = "policy"

    def reset(self) -> None:
        """Forget any per-screen state (called once per session)."""

    def select(self, posterior, eligible_mask: int) -> List[int]:
        """Return pool masks (non-empty subsets of *eligible_mask*)."""
        raise NotImplementedError


class BHAPolicy(SelectionPolicy):
    """One halving-optimal pool per stage (the core sequential rule)."""

    name = "bha"

    def __init__(self, candidates: Optional[CandidateGenerator] = None) -> None:
        self.candidates = candidates or PrefixCandidates()

    def select(self, posterior, eligible_mask: int) -> List[int]:
        pools = self.candidates.generate(posterior.marginals(), eligible_mask)
        pool, _mass, _gap = select_halving_pool(posterior.space, pools)
        return [pool]


class LookaheadPolicy(SelectionPolicy):
    """``depth`` pools per stage via greedy generalized halving.

    Cuts the number of sequential stages roughly by ``depth`` at the cost
    of slightly more tests — the trade-off experiment R6 measures.
    """

    def __init__(
        self, depth: int = 2, candidates: Optional[CandidateGenerator] = None
    ) -> None:
        self.depth = check_positive_int(depth, "depth")
        self.candidates = candidates or PrefixCandidates()
        self.name = f"lookahead-{self.depth}"

    def select(self, posterior, eligible_mask: int) -> List[int]:
        pools = self.candidates.generate(posterior.marginals(), eligible_mask)
        chosen, _obj = select_lookahead_pools(posterior.space, pools, self.depth)
        return chosen


class InformationGainPolicy(SelectionPolicy):
    """Pick the pool maximising mutual information with its outcome.

    For binary response models the expected information of testing pool
    ``A`` is ``I(Y; S) = H(Y) − Σ_k P(k) H(Y | k)`` with ``P(k)`` the
    posterior distribution of positives inside the pool.  Halving is the
    noiseless special case; this rule additionally discounts pools whose
    outcome the dilution noise would blur.
    """

    name = "infogain"

    def __init__(self, candidates: Optional[CandidateGenerator] = None) -> None:
        self.candidates = candidates or PrefixCandidates()

    @staticmethod
    def _binary_entropy(p: np.ndarray) -> np.ndarray:
        p = np.clip(p, 1e-12, 1 - 1e-12)
        return -(p * np.log(p) + (1 - p) * np.log1p(-p))

    def select(self, posterior, eligible_mask: int) -> List[int]:
        model = posterior.model
        if not getattr(model, "binary", False):
            raise ValueError("InformationGainPolicy requires a binary response model")
        pools = self.candidates.generate(posterior.marginals(), eligible_mask)
        best_pool, best_info = None, -np.inf
        for pool in pools:
            pool = int(pool)
            pool_size = bin(pool).count("1")
            pk = pool_count_distribution(posterior.space, pool)
            p_pos_given_k = model.positive_prob_by_count(pool_size)
            p_pos = float(pk @ p_pos_given_k)
            h_y = float(self._binary_entropy(np.array([p_pos]))[0])
            h_y_given_k = float(pk @ self._binary_entropy(p_pos_given_k))
            info = h_y - h_y_given_k
            if info > best_info + 1e-15:
                best_pool, best_info = pool, info
        assert best_pool is not None
        return [best_pool]


class IndividualTestingPolicy(SelectionPolicy):
    """No pooling: one singleton test per undetermined individual/stage.

    The universal baseline — its cost is exactly one test per person
    (repeated only when assay noise leaves someone undetermined).
    """

    name = "individual"

    def select(self, posterior, eligible_mask: int) -> List[int]:
        return [1 << i for i in _eligible_indices(eligible_mask)]


class DorfmanPolicy(SelectionPolicy):
    """Classic two-stage Dorfman pooling.

    Stage 1 pools the cohort into fixed-size groups; every member of a
    positive group is then tested individually.  Implemented on top of
    the Bayesian machinery: after stage 1 the posterior has already
    driven members of negative groups below the negative threshold, so
    "retest the positives" is simply "test whoever is still eligible".
    """

    def __init__(self, pool_size: int = 8) -> None:
        self.pool_size = check_positive_int(pool_size, "pool_size")
        self.name = f"dorfman-{self.pool_size}"
        self._stage = 0

    @classmethod
    def optimal_for(cls, prevalence: float, max_pool_size: int = 32) -> "DorfmanPolicy":
        """Dorfman with the cost-minimising pool size for *prevalence*.

        Minimises the classic expected-tests-per-individual of two-stage
        pooling, ``1/m + 1 - (1-p)^m``, by scanning m (the optimum is
        ``≈ 1/√p + 1`` but the exact argmin is cheap).  Above p ≈ 0.3
        no pool size beats individual testing; the smallest pool (2) is
        returned and the caller should compare against individual cost.
        """
        if not 0.0 < prevalence < 1.0:
            raise ValueError("prevalence must be in (0, 1)")
        best_m, best_cost = 2, float("inf")
        for m in range(2, max(3, max_pool_size + 1)):
            cost = 1.0 / m + 1.0 - (1.0 - prevalence) ** m
            if cost < best_cost:
                best_m, best_cost = m, cost
        return cls(best_m)

    def reset(self) -> None:
        self._stage = 0

    def select(self, posterior, eligible_mask: int) -> List[int]:
        self._stage += 1
        idx = _eligible_indices(eligible_mask)
        if self._stage == 1:
            pools = []
            for lo in range(0, len(idx), self.pool_size):
                chunk = idx[lo : lo + self.pool_size]
                mask = 0
                for i in chunk:
                    mask |= 1 << i
                pools.append(mask)
            return pools
        return [1 << i for i in idx]


class ArrayTestingPolicy(SelectionPolicy):
    """Two-dimensional array (grid) testing.

    The cohort is laid out on an ``rows × cols`` grid; stage 1 assays
    every row pool and every column pool simultaneously, so each
    individual appears in exactly two pools.  A single positive lights
    up one row and one column, localising it to their intersection; any
    individual still undetermined after the grid round (intersections of
    positive lines, assay ambiguity) is tested individually.

    The classic non-adaptive middle ground between Dorfman (fewer pools,
    more confirmation tests) and fully sequential Bayesian selection —
    included as the second literature baseline of experiment R5.
    """

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = check_positive_int(rows, "rows")
        self.cols = check_positive_int(cols, "cols")
        self.name = f"array-{self.rows}x{self.cols}"
        self._stage = 0

    def reset(self) -> None:
        self._stage = 0

    def _grid(self, idx: List[int]) -> List[List[int]]:
        """Row-major layout of the eligible individuals (ragged tail)."""
        return [idx[r * self.cols : (r + 1) * self.cols] for r in range(self.rows)]

    def select(self, posterior, eligible_mask: int) -> List[int]:
        self._stage += 1
        idx = _eligible_indices(eligible_mask)
        if self._stage > 1:
            return [1 << i for i in idx]
        capacity = self.rows * self.cols
        pools: List[int] = []
        for lo in range(0, len(idx), capacity):
            sheet = idx[lo : lo + capacity]
            grid = self._grid(sheet)
            for row in grid:
                mask = 0
                for i in row:
                    mask |= 1 << i
                if mask:
                    pools.append(mask)
            for c in range(self.cols):
                mask = 0
                for row in grid:
                    if c < len(row):
                        mask |= 1 << row[c]
                if mask:
                    pools.append(mask)
        return pools
