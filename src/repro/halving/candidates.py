"""Candidate pool generation.

The halving objective is evaluated over a *candidate set* of pools; the
quality/cost trade-off of selection is almost entirely decided here.  The
Biostatistics'22 analysis shows order-respecting pools — prefixes of the
cohort sorted by marginal infection probability — contain near-optimal
halving pools, which keeps the candidate set linear in cohort size
instead of exponential.

All generators produce ``uint64`` pool-mask arrays restricted to the
*eligible* (still-undetermined) individuals, deduplicated, never empty.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional

import numpy as np

from repro.util.bits import as_mask_array
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive_int

__all__ = [
    "CandidateGenerator",
    "PrefixCandidates",
    "ExhaustiveCandidates",
    "RandomCandidates",
    "SlidingWindowCandidates",
]


def _eligible_indices(eligible_mask: int) -> List[int]:
    out = []
    mask = int(eligible_mask)
    pos = 0
    while mask:
        if mask & 1:
            out.append(pos)
        mask >>= 1
        pos += 1
    return out


class CandidateGenerator:
    """Produces candidate pool masks for one selection step."""

    def generate(self, marginals: np.ndarray, eligible_mask: int) -> np.ndarray:
        """Return a uint64 array of pool masks (non-empty, deduplicated).

        Parameters
        ----------
        marginals:
            Current posterior marginal infection probability per
            individual (length = cohort size).
        eligible_mask:
            Bit mask of individuals still in play; pools must be subsets.
        """
        raise NotImplementedError

    @staticmethod
    def _finalize(masks: List[int]) -> np.ndarray:
        uniq = sorted({int(m) for m in masks if int(m) != 0})
        if not uniq:
            raise ValueError("candidate generator produced no pools")
        # uint64 for cohorts the lattice kernels can vectorise; object
        # (Python-int) masks for the >64-individual backends.
        return as_mask_array(uniq)


class PrefixCandidates(CandidateGenerator):
    """Prefixes of the eligible cohort in marginal order.

    Ascending order groups the *least* likely positives: the pool whose
    probability of being all-negative is nearest 1/2 is then some prefix.
    Descending prefixes are optionally added for the late-screen regime
    where isolating likely positives halves faster.
    """

    def __init__(self, max_pool_size: int = 32, include_descending: bool = True) -> None:
        self.max_pool_size = check_positive_int(max_pool_size, "max_pool_size")
        self.include_descending = bool(include_descending)

    def generate(self, marginals: np.ndarray, eligible_mask: int) -> np.ndarray:
        idx = _eligible_indices(eligible_mask)
        if not idx:
            raise ValueError("no eligible individuals")
        marg = np.asarray(marginals, dtype=np.float64)
        ordered = sorted(idx, key=lambda i: (marg[i], i))
        masks: List[int] = []
        limit = min(self.max_pool_size, len(ordered))
        acc = 0
        for i in ordered[:limit]:
            acc |= 1 << i
            masks.append(acc)
        if self.include_descending:
            acc = 0
            for i in reversed(ordered[-limit:]):
                acc |= 1 << i
                masks.append(acc)
        return self._finalize(masks)


class ExhaustiveCandidates(CandidateGenerator):
    """Every subset of eligible individuals up to ``max_pool_size``.

    Exponential — only for small cohorts and for optimality ground truth
    in tests ("did the cheap generator find the true halving pool?").
    """

    def __init__(self, max_pool_size: int = 4) -> None:
        self.max_pool_size = check_positive_int(max_pool_size, "max_pool_size")

    def generate(self, marginals: np.ndarray, eligible_mask: int) -> np.ndarray:
        idx = _eligible_indices(eligible_mask)
        if not idx:
            raise ValueError("no eligible individuals")
        masks: List[int] = []
        for size in range(1, min(self.max_pool_size, len(idx)) + 1):
            for combo in combinations(idx, size):
                m = 0
                for i in combo:
                    m |= 1 << i
                masks.append(m)
        return self._finalize(masks)


class RandomCandidates(CandidateGenerator):
    """Uniform random pools (a control strategy for ablations)."""

    def __init__(self, count: int = 64, max_pool_size: int = 32, rng: RngLike = None) -> None:
        self.count = check_positive_int(count, "count")
        self.max_pool_size = check_positive_int(max_pool_size, "max_pool_size")
        self._rng = as_rng(rng if rng is not None else 1234)

    def generate(self, marginals: np.ndarray, eligible_mask: int) -> np.ndarray:
        idx = _eligible_indices(eligible_mask)
        if not idx:
            raise ValueError("no eligible individuals")
        masks: List[int] = []
        for _ in range(self.count):
            size = int(self._rng.integers(1, min(self.max_pool_size, len(idx)) + 1))
            chosen = self._rng.choice(len(idx), size=size, replace=False)
            m = 0
            for c in chosen:
                m |= 1 << idx[int(c)]
            masks.append(m)
        return self._finalize(masks)


class SlidingWindowCandidates(CandidateGenerator):
    """Contiguous windows over the marginal-sorted cohort.

    Covers mid-risk bands that pure prefixes straddle; linear count
    (O(n · window sizes)).
    """

    def __init__(self, window_sizes: Optional[List[int]] = None) -> None:
        self.window_sizes = window_sizes or [2, 4, 8, 16]
        if any(w <= 0 for w in self.window_sizes):
            raise ValueError("window sizes must be positive")

    def generate(self, marginals: np.ndarray, eligible_mask: int) -> np.ndarray:
        idx = _eligible_indices(eligible_mask)
        if not idx:
            raise ValueError("no eligible individuals")
        marg = np.asarray(marginals, dtype=np.float64)
        ordered = sorted(idx, key=lambda i: (marg[i], i))
        masks: List[int] = []
        for w in self.window_sizes:
            if w > len(ordered):
                continue
            for start in range(0, len(ordered) - w + 1):
                m = 0
                for i in ordered[start : start + w]:
                    m |= 1 << i
                masks.append(m)
        if not masks:  # every window bigger than the cohort: pool everyone
            m = 0
            for i in ordered:
                m |= 1 << i
            masks.append(m)
        return self._finalize(masks)
