"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest: one ``run`` with the tool's rule catalogue under
``tool.driver.rules`` and one ``result`` per finding, each carrying a
``ruleId``, a level, a message and a physical location.  The mapping is
deliberately lossless where SARIF has a slot for it:

* the finding's ``chain`` (the ``via ...`` hops of the text format) is
  appended to the message, since most viewers only render ``message.text``;
* the fix hint lands in the same place, prefixed ``fix:``;
* ``X001`` (file skipped) maps to level ``error``; every real rule maps
  to ``warning`` — lint findings gate CI through exit codes, not through
  SARIF severities.

Only stdlib ``json``; the shape follows the published 2.1.0 schema
(``$schema`` pinned below) closely enough for GitHub code scanning and
``sarif-tools`` to consume.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.lint.model import LintFinding
from repro.lint.rules import RULES

__all__ = ["format_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool identity reported in every run.
_TOOL_NAME = "repro-lint"
_TOOL_URI = "https://github.com/repro/repro"


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "help": {"text": f"Fix hint: {rule.hint}\n\nBad:\n{rule.bad}\n\nGood:\n{rule.good}"},
        "defaultConfiguration": {
            "level": "error" if rule.id.startswith("X") else "warning",
        },
    }


def _result(finding: LintFinding, rule_index: int) -> dict:
    text = finding.message
    if finding.chain:
        text += "".join(f"\nvia {hop}" for hop in finding.chain)
    if finding.hint:
        text += f"\nfix: {finding.hint}"
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index,
        "level": "error" if finding.rule.startswith("X") else "warning",
        "message": {"text": text},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.file.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; LintFinding's are 0-based.
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }


def format_sarif(findings: Sequence[LintFinding], files_checked: int) -> str:
    """Render findings as a SARIF 2.1.0 log (one run)."""
    rule_ids: List[str] = sorted({f.rule for f in findings} | set(RULES))
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    log = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _TOOL_URI,
                        "rules": [_rule_descriptor(rid) for rid in rule_ids],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f, rule_index[f.rule]) for f in findings],
                "properties": {"filesChecked": files_checked},
            }
        ],
    }
    return json.dumps(log, indent=2)
