"""Rule catalogue for :mod:`repro.lint`.

Every diagnostic the analyzer can emit is declared here, with a stable
id, a one-line summary, the rationale behind the rule, and a minimal
bad/good example pair (``python -m repro lint --explain RULE`` prints
them).  Rule ids are stable API: suppression comments
(``# repro: lint-ignore[C101]``), ``--select``/``--ignore`` and the JSON
output schema all key on them.

Families
--------
``C1xx`` — closure safety: functions shipped across the data plane
(RDD transforms, :class:`~repro.sbgt.distributed_lattice.DistributedLattice`
kernels) must not capture driver-only machinery, unpicklable handles,
or nondeterminism.

``E2xx`` — engine concurrency: ``repro.engine`` / ``repro.serve`` /
``repro.obs`` internals must respect the declared lock order
(:mod:`repro.engine.lockorder`) and never block or publish while
holding a data-plane lock.  E204/E205 extend the checks across call
boundaries via :mod:`repro.lint.callgraph`; E206 keeps the lock
registry complete.

``D3xx`` — determinism: the statistical core (``repro.sbgt``,
``repro.surveil``, ``repro.simulate``, ``repro.bayes``,
``repro.lattice``) must produce bit-identical results for a given
seed — no ambient entropy, wall clocks, or interpreter-dependent
ordering/identity.

``X0xx`` — analyzer self-diagnostics: files the linter could not
analyze are reported instead of silently skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Rule",
    "RULES",
    "CLOSURE_RULES",
    "CONCURRENCY_RULES",
    "DETERMINISM_RULES",
    "format_explain",
]


@dataclass(frozen=True)
class Rule:
    """One diagnostic the analyzer can produce."""

    id: str
    name: str
    summary: str
    rationale: str
    bad: str
    good: str
    hint: str


_RULES: Tuple[Rule, ...] = (
    Rule(
        id="C101",
        name="closure-captures-driver-object",
        summary="Task closure captures a driver-only engine object",
        rationale=(
            "Functions passed to RDD transforms run inside worker tasks. "
            "Driver machinery (Context, RDD handles, EventBus, BlockStore, "
            "ShuffleManager, executors) either refuses to pickle or ships as "
            "an inert stub: a worker Context is stopped, its bus is disabled "
            "and its stores are None, so any use fails mid-job with a "
            "confusing cross-process traceback instead of at submission."
        ),
        bad=(
            "with Context(mode='processes') as ctx:\n"
            "    data = ctx.parallelize(range(8), 4)\n"
            "    # the closure drags the whole driver context into the task\n"
            "    data.map(lambda x: ctx.parallelize([x]).count()).collect()"
        ),
        good=(
            "with Context(mode='processes') as ctx:\n"
            "    data = ctx.parallelize(range(8), 4)\n"
            "    # pure closure; nested jobs are driver-side compositions\n"
            "    counts = data.map(lambda x: 1).collect()"
        ),
        hint=(
            "close over plain data (or a Broadcast) instead; submit follow-up "
            "jobs from the driver"
        ),
    ),
    Rule(
        id="C102",
        name="closure-captures-unpicklable",
        summary="Task closure captures a value that cannot cross a process boundary",
        rationale=(
            "Process-mode tasks ship as protocol-5 pickles. Locks, open "
            "files, sockets, queues, threads and generators are unpicklable: "
            "the job dies in closure.serialize long after the defect was "
            "written, and thread mode silently *shares* the handle instead — "
            "the same code behaves differently per executor mode."
        ),
        bad=(
            "lock = threading.Lock()\n"
            "def guarded(x):\n"
            "    with lock:          # unpicklable capture\n"
            "        return x + 1\n"
            "rdd.map(guarded).collect()"
        ),
        good=(
            "def pure(x):\n"
            "    return x + 1        # tasks own their partition: no lock needed\n"
            "rdd.map(pure).collect()"
        ),
        hint=(
            "tasks own their partition exclusively — drop the handle, or open "
            "resources inside the task body"
        ),
    ),
    Rule(
        id="C103",
        name="task-writes-module-global",
        summary="Task code writes a module-level global",
        rationale=(
            "A task mutating module globals only updates the interpreter it "
            "runs in: forked workers each mutate their private copy and the "
            "driver sees nothing (silent divergence), while thread mode races "
            "on the shared one. Results then depend on executor mode and "
            "scheduling — exactly the nondeterminism that threatens "
            "reproducible accuracy numbers."
        ),
        bad=(
            "SEEN = 0\n"
            "def tally(x):\n"
            "    global SEEN\n"
            "    SEEN += 1           # lost on fork, racy on threads\n"
            "    return x\n"
            "rdd.map(tally).collect()"
        ),
        good=(
            "seen = ctx.accumulator(0)\n"
            "def tally(x):\n"
            "    seen.add(1)         # merged exactly once per successful task\n"
            "    return x\n"
            "rdd.map(tally).collect()"
        ),
        hint="use ctx.accumulator(...) for task-side counters, or return the data",
    ),
    Rule(
        id="C104",
        name="task-nondeterminism",
        summary="Task code draws unseeded randomness or reads the clock",
        rationale=(
            "Unseeded random module calls and wall-clock reads make task "
            "output depend on scheduling, retries and executor mode: a "
            "retried task re-draws different numbers, and the same screen "
            "stops reproducing bit-identically across runs — silently "
            "undermining any reported accuracy figure."
        ),
        bad=(
            "rdd.map(lambda x: x + random.random()).collect()  # differs per run/retry"
        ),
        good=(
            "def jitter(i, it):\n"
            "    rng = np.random.default_rng(seed * 1000 + i)  # per-partition stream\n"
            "    return (x + rng.random() for x in it)\n"
            "rdd.map_partitions_with_index(jitter).collect()"
        ),
        hint=(
            "derive a per-partition seed from a driver-chosen seed "
            "(map_partitions_with_index), or pass a seeded Generator"
        ),
    ),
    Rule(
        id="C105",
        name="accumulator-read-in-task",
        summary="Task code reads an accumulator's value",
        rationale=(
            "Accumulators are write-only from tasks: deltas merge at the "
            "driver once per successful task. A task-side .value read sees "
            "the worker stub's zero in process mode and a racy partial in "
            "thread mode — never the number the driver will end up with."
        ),
        bad=(
            "count = ctx.accumulator(0)\n"
            "rdd.map(lambda x: x / max(count.value, 1)).collect()  # reads 0 or a race"
        ),
        good=(
            "count = ctx.accumulator(0)\n"
            "rdd.foreach(lambda x: count.add(1))\n"
            "total = count.value      # read at the driver, after the action"
        ),
        hint="read .value at the driver after the action completes",
    ),
    Rule(
        id="E201",
        name="lock-order-violation",
        summary="Engine locks acquired against the declared order",
        rationale=(
            "repro.engine / repro.serve locks form a declared hierarchy "
            "(see docs/architecture.md). Acquiring an outer lock while "
            "holding an inner one inverts the order some other thread uses "
            "and deadlocks under load — precisely the failure mode that only "
            "reproduces on a saturated server."
        ),
        bad=(
            "with self._lock:                 # BlockStore lock (inner)\n"
            "    with self._ctx._lock:        # Context lock (outer) — inversion\n"
            "        ..."
        ),
        good=(
            "with self._ctx._lock:            # outer first\n"
            "    with self._lock:             # then inner\n"
            "        ..."
        ),
        hint="acquire locks outer-to-inner per the declared order, or split the critical section",
    ),
    Rule(
        id="E202",
        name="blocking-call-under-lock",
        summary="Blocking call while holding a data-plane lock",
        rationale=(
            "The BlockStore/ShuffleManager/scheduler-side locks sit on every "
            "task's hot path. Sleeping, waiting on futures/queues/pipes, or "
            "posting to the event bus while holding one stalls every worker "
            "and can deadlock if the blocked-on party needs the same lock "
            "(the bus delivers to arbitrary listener code)."
        ),
        bad=(
            "with self._lock:\n"
            "    block = self._blocks[key]\n"
            "    bus.post(CacheHit(*key))     # listener code runs under the lock"
        ),
        good=(
            "with self._lock:\n"
            "    block = self._blocks[key]\n"
            "bus.post(CacheHit(*key))         # publish after releasing"
        ),
        hint="collect under the lock, then block/publish after releasing it",
    ),
    Rule(
        id="E203",
        name="event-mutated-after-post",
        summary="Event object mutated after being posted to the bus",
        rationale=(
            "Engine events are plain (unfrozen) dataclasses for construction "
            "speed; listeners such as the flight recorder keep references "
            "instead of copying. Mutating an event after bus.post() "
            "retroactively rewrites recorded history and races with "
            "concurrent listener reads."
        ),
        bad=(
            "event = TaskEnd(stage, part, wall_s=0.0)\n"
            "bus.post(event)\n"
            "event.wall_s = elapsed          # recorder already holds it"
        ),
        good=(
            "event = TaskEnd(stage, part, wall_s=elapsed)  # finish it first\n"
            "bus.post(event)"
        ),
        hint="fully populate the event before posting; post a fresh event for new facts",
    ),
    Rule(
        id="E204",
        name="transitive-lock-order-violation",
        summary="Call may transitively acquire a lock against the declared order",
        rationale=(
            "E201 stops at function boundaries, but lock inversions rarely "
            "live in one function: stop() holds the Context lock and calls "
            "into an executor whose helper re-enters the server lock three "
            "frames down. The call-graph summaries (repro.lint.callgraph) "
            "propagate every function's acquired-locks set to a fixed point, "
            "so holding level L while calling anything that may acquire "
            "level <= L is flagged with the offending call path."
        ),
        bad=(
            "class Context:\n"
            "    def stop(self):\n"
            "        with self._lock:          # Context._lock (level 20)\n"
            "            self._server.refresh()  # -> acquires ReproServer._engine_lock (10)"
        ),
        good=(
            "class Context:\n"
            "    def stop(self):\n"
            "        with self._lock:\n"
            "            server = self._server\n"
            "        server.refresh()          # outer lock acquired lock-free"
        ),
        hint=(
            "hoist the call out of the critical section, or re-level the "
            "locks in repro.engine.lockorder so the callee's locks are inner"
        ),
    ),
    Rule(
        id="E205",
        name="transitive-blocking-under-lock",
        summary="Call may block while a data-plane lock is held",
        rationale=(
            "Same closure as E204 for E202: a call that looks innocent at "
            "the call site may sleep, join a pool, or publish to the event "
            "bus somewhere down its call chain — stalling every task that "
            "needs the held data-plane lock. Admission-gate locks "
            "(lockorder.ADMISSION_GATE_LOCKS) are exempt: they serialize "
            "whole operations by design."
        ),
        bad=(
            "with self._lock:                  # BlockStore._lock (level 50)\n"
            "    self._flush()                 # -> executor.stop() -> pool.shutdown(wait=True)"
        ),
        good=(
            "with self._lock:\n"
            "    dirty = self._take_dirty()\n"
            "self._flush(dirty)                # blocking work after release"
        ),
        hint=(
            "capture state under the lock and do the blocking call after "
            "releasing it"
        ),
    ),
    Rule(
        id="E206",
        name="undeclared-engine-lock",
        summary="Engine lock created without a declared level",
        rationale=(
            "The lock-order rules are only as good as the registry in "
            "repro.engine.lockorder: a raw threading.Lock() in an engine "
            "module is invisible to both the static checks and the runtime "
            "sanitizer, so the hierarchy silently erodes. Every engine/serve/"
            "obs lock must be an OrderedLock with a registered level."
        ),
        bad=(
            "class NewCache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()   # no declared level"
        ),
        good=(
            "# in repro.engine.lockorder:  (\"NewCache\", \"_lock\"): 90\n"
            "class NewCache:\n"
            "    def __init__(self):\n"
            "        self._lock = OrderedLock(\"NewCache._lock\")"
        ),
        hint=(
            "register the lock in repro.engine.lockorder.LOCK_LEVELS (or "
            "MODULE_LOCK_LEVELS) and construct it as an OrderedLock"
        ),
    ),
    Rule(
        id="D301",
        name="unseeded-rng",
        summary="Unseeded random source in deterministic statistical code",
        rationale=(
            "The SBGT pipeline's accuracy claims rest on bit-identical "
            "replays: every posterior update, pool selection and simulated "
            "fleet must derive from an explicit seed. random.random(), "
            "legacy np.random.* module calls and default_rng() without a "
            "seed read global interpreter entropy, so two runs of the same "
            "screen silently diverge."
        ),
        bad=(
            "def draw_fleet(n):\n"
            "    gen = np.random.default_rng()     # fresh entropy every call\n"
            "    return gen.poisson(2.0, size=n)"
        ),
        good=(
            "def draw_fleet(n, seed):\n"
            "    gen = np.random.default_rng(seed)  # replayable stream\n"
            "    return gen.poisson(2.0, size=n)"
        ),
        hint=(
            "thread an explicit seed (or a seeded np.random.Generator / "
            "SeedSequence spawn) through the call"
        ),
    ),
    Rule(
        id="D302",
        name="set-iteration-order",
        summary="Iteration over a set in deterministic statistical code",
        rationale=(
            "Set iteration order depends on insertion history and per-process "
            "hash randomization of str keys. Feeding it into pool selection "
            "or candidate enumeration makes the chosen pools differ between "
            "interpreters even with identical seeds — the kind of "
            "irreproducibility that survives seeding and only shows up when "
            "someone else re-runs the experiment."
        ),
        bad=(
            "for member in {p for pool in pools for p in pool}:  # hash order\n"
            "    consider(member)"
        ),
        good=(
            "for member in sorted({p for pool in pools for p in pool}):\n"
            "    consider(member)"
        ),
        hint="wrap the set in sorted(...) (or keep a list/dict, which preserve order)",
    ),
    Rule(
        id="D303",
        name="wall-clock-read",
        summary="Wall-clock read in deterministic statistical code",
        rationale=(
            "time.time() / datetime.now() inside the statistical core leaks "
            "the clock into results: timestamp-derived tie-breaks, "
            "time-bucketed keys and elapsed-time stopping rules all change "
            "between runs. Durations for *reporting* belong in the metrics "
            "layer (perf_counter is fine there); decision logic must depend "
            "only on seeds and inputs."
        ),
        bad=(
            "def pick(candidates):\n"
            "    tie_break = time.time_ns() % len(candidates)  # clock leaks in"
        ),
        good=(
            "def pick(candidates, rng):\n"
            "    tie_break = int(rng.integers(len(candidates)))  # seeded"
        ),
        hint=(
            "take the timestamp/round index as a parameter, or use the "
            "seeded rng; keep perf timing in the metrics layer"
        ),
    ),
    Rule(
        id="D304",
        name="identity-keyed-container",
        summary="id() used as a dict/set key in deterministic statistical code",
        rationale=(
            "id() is an allocation address: unstable across runs, processes "
            "and GC cycles. Containers keyed by it iterate in address order "
            "and cannot round-trip through pickling (workers re-key "
            "everything), so id()-keyed caches and groupings quietly break "
            "determinism and distributed equivalence."
        ),
        bad=(
            "scores[id(pool)] = evaluate(pool)   # address-ordered, unpicklable key"
        ),
        good=(
            "scores[pool.key] = evaluate(pool)   # stable domain key"
        ),
        hint="key by a stable domain identifier (name, index, tuple of members)",
    ),
    Rule(
        id="D305",
        name="builtin-hash",
        summary="Builtin hash() in deterministic statistical code",
        rationale=(
            "hash() of str/bytes is salted per process (PYTHONHASHSEED), so "
            "hash-derived partition choices, seeds or tie-breaks differ "
            "between interpreter invocations. The engine ships "
            "repro.engine.shuffle.stable_hash for exactly this reason — "
            "same input, same 64-bit value, every process."
        ),
        bad=(
            "seed = hash(site_name) % 2**32      # differs per interpreter"
        ),
        good=(
            "from repro.engine.shuffle import stable_hash\n"
            "seed = stable_hash(site_name) % 2**32"
        ),
        hint="use repro.engine.shuffle.stable_hash (SipHash-free, process-stable)",
    ),
    Rule(
        id="X001",
        name="file-not-analyzed",
        summary="File could not be analyzed and was skipped",
        rationale=(
            "A lint run that aborts (or silently skips) on one unparsable "
            "file hides every finding in the rest of the tree. Analyzer "
            "errors are reported per-file as findings so the run completes, "
            "and the CLI exits 2 (internal error) instead of 1 (findings) "
            "when any file was skipped."
        ),
        bad=(
            "$ repro lint src/        # traceback on src/broken.py, no report"
        ),
        good=(
            "src/broken.py:3:0: X001 [file-not-analyzed] cannot parse: invalid syntax\n"
            "...findings for every other file still reported..."
        ),
        hint="fix the syntax/read error; X001 cannot be suppressed with lint-ignore",
    ),
)

#: All rules, keyed by id.
RULES: Dict[str, Rule] = {r.id: r for r in _RULES}

CLOSURE_RULES = tuple(r.id for r in _RULES if r.id.startswith("C"))
CONCURRENCY_RULES = tuple(r.id for r in _RULES if r.id.startswith("E"))
DETERMINISM_RULES = tuple(r.id for r in _RULES if r.id.startswith("D"))


def format_explain(rule: Rule) -> str:
    """Render one rule's self-documentation (``--explain`` output)."""
    bar = "-" * max(len(rule.id) + len(rule.name) + 3, 24)
    bad = "\n".join("    " + line for line in rule.bad.splitlines())
    good = "\n".join("    " + line for line in rule.good.splitlines())
    return (
        f"{rule.id} — {rule.name}\n{bar}\n"
        f"{rule.summary}.\n\n"
        f"Why: {rule.rationale}\n\n"
        f"Bad:\n{bad}\n\n"
        f"Good:\n{good}\n\n"
        f"Fix hint: {rule.hint}\n"
        f"Suppress with: # repro: lint-ignore[{rule.id}]\n"
    )
