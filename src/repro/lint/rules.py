"""Rule catalogue for :mod:`repro.lint`.

Every diagnostic the analyzer can emit is declared here, with a stable
id, a one-line summary, the rationale behind the rule, and a minimal
bad/good example pair (``python -m repro lint --explain RULE`` prints
them).  Rule ids are stable API: suppression comments
(``# repro: lint-ignore[C101]``), ``--select``/``--ignore`` and the JSON
output schema all key on them.

Families
--------
``C1xx`` — closure safety: functions shipped across the data plane
(RDD transforms, :class:`~repro.sbgt.distributed_lattice.DistributedLattice`
kernels) must not capture driver-only machinery, unpicklable handles,
or nondeterminism.

``E2xx`` — engine concurrency: ``repro.engine`` / ``repro.serve``
internals must respect the declared lock order and never block or
publish while holding a data-plane lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "RULES", "CLOSURE_RULES", "CONCURRENCY_RULES", "format_explain"]


@dataclass(frozen=True)
class Rule:
    """One diagnostic the analyzer can produce."""

    id: str
    name: str
    summary: str
    rationale: str
    bad: str
    good: str
    hint: str


_RULES: Tuple[Rule, ...] = (
    Rule(
        id="C101",
        name="closure-captures-driver-object",
        summary="Task closure captures a driver-only engine object",
        rationale=(
            "Functions passed to RDD transforms run inside worker tasks. "
            "Driver machinery (Context, RDD handles, EventBus, BlockStore, "
            "ShuffleManager, executors) either refuses to pickle or ships as "
            "an inert stub: a worker Context is stopped, its bus is disabled "
            "and its stores are None, so any use fails mid-job with a "
            "confusing cross-process traceback instead of at submission."
        ),
        bad=(
            "with Context(mode='processes') as ctx:\n"
            "    data = ctx.parallelize(range(8), 4)\n"
            "    # the closure drags the whole driver context into the task\n"
            "    data.map(lambda x: ctx.parallelize([x]).count()).collect()"
        ),
        good=(
            "with Context(mode='processes') as ctx:\n"
            "    data = ctx.parallelize(range(8), 4)\n"
            "    # pure closure; nested jobs are driver-side compositions\n"
            "    counts = data.map(lambda x: 1).collect()"
        ),
        hint=(
            "close over plain data (or a Broadcast) instead; submit follow-up "
            "jobs from the driver"
        ),
    ),
    Rule(
        id="C102",
        name="closure-captures-unpicklable",
        summary="Task closure captures a value that cannot cross a process boundary",
        rationale=(
            "Process-mode tasks ship as protocol-5 pickles. Locks, open "
            "files, sockets, queues, threads and generators are unpicklable: "
            "the job dies in closure.serialize long after the defect was "
            "written, and thread mode silently *shares* the handle instead — "
            "the same code behaves differently per executor mode."
        ),
        bad=(
            "lock = threading.Lock()\n"
            "def guarded(x):\n"
            "    with lock:          # unpicklable capture\n"
            "        return x + 1\n"
            "rdd.map(guarded).collect()"
        ),
        good=(
            "def pure(x):\n"
            "    return x + 1        # tasks own their partition: no lock needed\n"
            "rdd.map(pure).collect()"
        ),
        hint=(
            "tasks own their partition exclusively — drop the handle, or open "
            "resources inside the task body"
        ),
    ),
    Rule(
        id="C103",
        name="task-writes-module-global",
        summary="Task code writes a module-level global",
        rationale=(
            "A task mutating module globals only updates the interpreter it "
            "runs in: forked workers each mutate their private copy and the "
            "driver sees nothing (silent divergence), while thread mode races "
            "on the shared one. Results then depend on executor mode and "
            "scheduling — exactly the nondeterminism that threatens "
            "reproducible accuracy numbers."
        ),
        bad=(
            "SEEN = 0\n"
            "def tally(x):\n"
            "    global SEEN\n"
            "    SEEN += 1           # lost on fork, racy on threads\n"
            "    return x\n"
            "rdd.map(tally).collect()"
        ),
        good=(
            "seen = ctx.accumulator(0)\n"
            "def tally(x):\n"
            "    seen.add(1)         # merged exactly once per successful task\n"
            "    return x\n"
            "rdd.map(tally).collect()"
        ),
        hint="use ctx.accumulator(...) for task-side counters, or return the data",
    ),
    Rule(
        id="C104",
        name="task-nondeterminism",
        summary="Task code draws unseeded randomness or reads the clock",
        rationale=(
            "Unseeded random module calls and wall-clock reads make task "
            "output depend on scheduling, retries and executor mode: a "
            "retried task re-draws different numbers, and the same screen "
            "stops reproducing bit-identically across runs — silently "
            "undermining any reported accuracy figure."
        ),
        bad=(
            "rdd.map(lambda x: x + random.random()).collect()  # differs per run/retry"
        ),
        good=(
            "def jitter(i, it):\n"
            "    rng = np.random.default_rng(seed * 1000 + i)  # per-partition stream\n"
            "    return (x + rng.random() for x in it)\n"
            "rdd.map_partitions_with_index(jitter).collect()"
        ),
        hint=(
            "derive a per-partition seed from a driver-chosen seed "
            "(map_partitions_with_index), or pass a seeded Generator"
        ),
    ),
    Rule(
        id="C105",
        name="accumulator-read-in-task",
        summary="Task code reads an accumulator's value",
        rationale=(
            "Accumulators are write-only from tasks: deltas merge at the "
            "driver once per successful task. A task-side .value read sees "
            "the worker stub's zero in process mode and a racy partial in "
            "thread mode — never the number the driver will end up with."
        ),
        bad=(
            "count = ctx.accumulator(0)\n"
            "rdd.map(lambda x: x / max(count.value, 1)).collect()  # reads 0 or a race"
        ),
        good=(
            "count = ctx.accumulator(0)\n"
            "rdd.foreach(lambda x: count.add(1))\n"
            "total = count.value      # read at the driver, after the action"
        ),
        hint="read .value at the driver after the action completes",
    ),
    Rule(
        id="E201",
        name="lock-order-violation",
        summary="Engine locks acquired against the declared order",
        rationale=(
            "repro.engine / repro.serve locks form a declared hierarchy "
            "(see docs/architecture.md). Acquiring an outer lock while "
            "holding an inner one inverts the order some other thread uses "
            "and deadlocks under load — precisely the failure mode that only "
            "reproduces on a saturated server."
        ),
        bad=(
            "with self._lock:                 # BlockStore lock (inner)\n"
            "    with self._ctx._lock:        # Context lock (outer) — inversion\n"
            "        ..."
        ),
        good=(
            "with self._ctx._lock:            # outer first\n"
            "    with self._lock:             # then inner\n"
            "        ..."
        ),
        hint="acquire locks outer-to-inner per the declared order, or split the critical section",
    ),
    Rule(
        id="E202",
        name="blocking-call-under-lock",
        summary="Blocking call while holding a data-plane lock",
        rationale=(
            "The BlockStore/ShuffleManager/scheduler-side locks sit on every "
            "task's hot path. Sleeping, waiting on futures/queues/pipes, or "
            "posting to the event bus while holding one stalls every worker "
            "and can deadlock if the blocked-on party needs the same lock "
            "(the bus delivers to arbitrary listener code)."
        ),
        bad=(
            "with self._lock:\n"
            "    block = self._blocks[key]\n"
            "    bus.post(CacheHit(*key))     # listener code runs under the lock"
        ),
        good=(
            "with self._lock:\n"
            "    block = self._blocks[key]\n"
            "bus.post(CacheHit(*key))         # publish after releasing"
        ),
        hint="collect under the lock, then block/publish after releasing it",
    ),
    Rule(
        id="E203",
        name="event-mutated-after-post",
        summary="Event object mutated after being posted to the bus",
        rationale=(
            "Engine events are plain (unfrozen) dataclasses for construction "
            "speed; listeners such as the flight recorder keep references "
            "instead of copying. Mutating an event after bus.post() "
            "retroactively rewrites recorded history and races with "
            "concurrent listener reads."
        ),
        bad=(
            "event = TaskEnd(stage, part, wall_s=0.0)\n"
            "bus.post(event)\n"
            "event.wall_s = elapsed          # recorder already holds it"
        ),
        good=(
            "event = TaskEnd(stage, part, wall_s=elapsed)  # finish it first\n"
            "bus.post(event)"
        ),
        hint="fully populate the event before posting; post a fresh event for new facts",
    ),
)

#: All rules, keyed by id.
RULES: Dict[str, Rule] = {r.id: r for r in _RULES}

CLOSURE_RULES = tuple(r.id for r in _RULES if r.id.startswith("C"))
CONCURRENCY_RULES = tuple(r.id for r in _RULES if r.id.startswith("E"))


def format_explain(rule: Rule) -> str:
    """Render one rule's self-documentation (``--explain`` output)."""
    bar = "-" * max(len(rule.id) + len(rule.name) + 3, 24)
    bad = "\n".join("    " + line for line in rule.bad.splitlines())
    good = "\n".join("    " + line for line in rule.good.splitlines())
    return (
        f"{rule.id} — {rule.name}\n{bar}\n"
        f"{rule.summary}.\n\n"
        f"Why: {rule.rationale}\n\n"
        f"Bad:\n{bad}\n\n"
        f"Good:\n{good}\n\n"
        f"Fix hint: {rule.hint}\n"
        f"Suppress with: # repro: lint-ignore[{rule.id}]\n"
    )
