"""Whole-program call graph + per-function lock summaries for E204/E205.

The per-function E201/E202 checks in :mod:`repro.lint.concurrency_rules`
stop at call boundaries: ``with self._lock: self._flush()`` is clean even
when ``_flush`` sleeps.  This module closes that gap cheaply: it walks
every engine module once, records each function's *direct* facts —

* locks it acquires (``with self._lock:`` resolved to a declared
  ``(class, attr)`` identity), and
* blocking calls it makes (same classifier E202 uses),

then propagates them over a syntactically-resolved call graph to a fixed
point.  The result is a :class:`CallGraph` of picklable
:class:`FunctionSummary` objects: "calling ``Context.stop`` may acquire
``Context._lock`` (level 20) and may block in ``executor.stop``", plus an
example call path for the finding's ``via`` chain.

Call resolution is deliberately conservative — a miss means a missed
finding, never a false one:

* ``self.m(...)`` -> method ``m`` of the enclosing class;
* a bare ``f(...)`` -> module-level ``f`` in the *same* file, or
  ``ClassName(...)`` -> that class's ``__init__``;
* ``ClassName.m(...)`` -> method ``m`` of a known class;
* ``recv.m(...)`` / ``self.recv.m(...)`` -> method ``m`` of the class a
  conventional receiver name maps to (:data:`RECEIVER_CLASSES`).

``RECEIVER_CLASSES`` is a *subset* of the name conventions the lock
identity resolver uses: ``pool``/``_pool`` and ``manager`` are excluded
because they routinely name stdlib objects (``ProcessExecutor._pool`` is
a ``concurrent.futures`` pool, not a ThreadExecutor) and would mis-route
calls.  Nested ``def``s and lambdas are skipped — defining a closure
acquires nothing; deferred bodies are checked on their own.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.engine.lockorder import (
    ADMISSION_GATE_LOCKS,
    DATA_PLANE_MAX_LEVEL,
    LOCK_LEVELS,
    MODULE_LOCK_LEVELS,
)
from repro.lint.model import dotted_name

__all__ = [
    "CallGraph",
    "FunctionSummary",
    "build_callgraph",
    "build_callgraph_from_tree",
    "lock_key",
    "lock_level",
    "format_lock",
    "classify_blocking",
    "is_admission_gate",
    "RECEIVER_CLASSES",
    "OWNER_NAME_CLASSES",
    "BLOCKING_SIMPLE",
]

LockKey = Tuple[Optional[str], str]

# ----------------------------------------------------------------------
# lock identity + blocking classification (shared with concurrency_rules)
# ----------------------------------------------------------------------

#: Conventional owner names -> lock-owning class, for resolving
#: ``self._ctx._lock`` / ``bus._lock`` style cross-object acquisitions.
OWNER_NAME_CLASSES: Dict[str, str] = {
    "ctx": "Context", "_ctx": "Context", "context": "Context",
    "bus": "EventBus", "_bus": "EventBus", "event_bus": "EventBus",
    "store": "BlockStore", "_store": "BlockStore",
    "block_store": "BlockStore", "blockstore": "BlockStore", "_blockstore": "BlockStore",
    "shuffle": "ShuffleManager", "_shuffle": "ShuffleManager",
    "shuffle_manager": "ShuffleManager", "manager": "ShuffleManager",
    "server": "ReproServer", "_server": "ReproServer",
    "executor": "ThreadExecutor", "_executor": "ThreadExecutor",
    "pool": "ThreadExecutor", "_pool": "ThreadExecutor",
    "recorder": "FlightRecorder", "_recorder": "FlightRecorder",
    "scheduler": "Scheduler", "_scheduler": "Scheduler",
    "acc": "Accumulator", "accumulator": "Accumulator",
}

#: Receiver names trusted for *call* routing.  Narrower than
#: OWNER_NAME_CLASSES: a wrong lock identity merely changes a level
#: lookup, a wrong call target imports a whole foreign summary.
RECEIVER_CLASSES: Dict[str, str] = {
    k: v for k, v in OWNER_NAME_CLASSES.items()
    if k not in ("pool", "_pool", "manager")
}

#: Lock attributes that name their owner unambiguously (``_engine_lock``
#: only exists on ReproServer), usable without knowing the owner object.
_UNIQUE_ATTR_CLASSES: Dict[str, Optional[str]] = {}
for (_cls, _attr) in LOCK_LEVELS:
    _UNIQUE_ATTR_CLASSES[_attr] = None if _attr in _UNIQUE_ATTR_CLASSES else _cls
_UNIQUE_ATTR_CLASSES = {a: c for a, c in _UNIQUE_ATTR_CLASSES.items() if c}

#: Call names (dotted tails) that block the calling thread.
BLOCKING_SIMPLE = frozenset({"sleep", "recv", "recv_bytes", "acquire", "result",
                             "wait", "wait_for", "shutdown"})


def _owner_class(owner: ast.AST) -> Optional[str]:
    """Class owning ``<owner>._lock``, from conventional naming."""
    name = None
    if isinstance(owner, ast.Name):
        name = owner.id
    elif isinstance(owner, ast.Attribute):
        name = owner.attr
    return OWNER_NAME_CLASSES.get(name) if name else None


def lock_key(expr: ast.AST, class_name: Optional[str],
             aliases: Mapping[str, LockKey]) -> Optional[LockKey]:
    """Resolve a with-item expression to a lock identity, if it looks like one."""
    if isinstance(expr, ast.Attribute):
        if "lock" not in expr.attr:
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return (class_name, expr.attr)
        owner = _owner_class(expr.value) or _UNIQUE_ATTR_CLASSES.get(expr.attr)
        return (owner, expr.attr)
    if isinstance(expr, ast.Name):
        if expr.id in aliases:
            return aliases[expr.id]
        if "lock" in expr.id:
            return (_UNIQUE_ATTR_CLASSES.get(expr.id), expr.id)
    return None


def lock_level(key: LockKey) -> Optional[int]:
    cls, attr = key
    if cls is not None:
        return LOCK_LEVELS.get((cls, attr))
    return MODULE_LOCK_LEVELS.get(attr)


def format_lock(key: LockKey) -> str:
    cls, attr = key
    return f"{cls}.{attr}" if cls else attr


def is_admission_gate(key: LockKey) -> bool:
    """True for locks that serialize whole operations by design (E205 skips them)."""
    return tuple(key) in ADMISSION_GATE_LOCKS


def classify_blocking(name: str) -> Optional[str]:
    """Describe why a dotted call name blocks, or None if it doesn't."""
    parts = name.split(".")
    leaf = parts[-1]
    if leaf in BLOCKING_SIMPLE:
        return f"{name}()"
    if leaf == "post" and len(parts) >= 2 and "bus" in parts[-2]:
        return f"{name}() (event-bus publish runs arbitrary listener code)"
    if leaf == "get" and len(parts) >= 2 and any(
        h in parts[-2] for h in ("queue", "pipe", "conn")
    ):
        return f"{name}()"
    if leaf == "join" and len(parts) >= 2 and any(
        h in parts[-2] for h in ("thread", "proc", "worker", "pool")
    ):
        return f"{name}()"
    return None


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
@dataclass
class FunctionSummary:
    """What calling one function may do, transitively.

    Plain strings and tuples throughout so summaries pickle cleanly into
    ``--jobs`` worker processes and hash stably into the analysis cache.
    """

    #: "Class._attr" / bare module lock -> (level, example call path).
    #: An empty path means the function acquires the lock directly.
    locks: Dict[str, Tuple[int, Tuple[str, ...]]] = field(default_factory=dict)
    #: blocking call description -> example call path to the blocking site.
    blocking: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class CallGraph:
    """Resolved call edges + fixed-point summaries for a set of modules."""

    #: qualified id ("<file>::Class.method" / "<file>::func") -> summary
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: (class name, method name) -> qualified id
    methods: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: (filename, function name) -> qualified id
    module_funcs: Dict[Tuple[str, str], str] = field(default_factory=dict)
    #: known top-level class names
    class_names: Set[str] = field(default_factory=set)

    def display(self, qid: str) -> str:
        return qid.rsplit("::", 1)[-1]

    def lookup(self, filename: str, class_name: Optional[str],
               name: str) -> Optional[str]:
        """Qualified id a dotted call name resolves to, or None."""
        parts = name.split(".")
        leaf = parts[-1]
        if len(parts) == 1:
            qid = self.module_funcs.get((filename, leaf))
            if qid is not None:
                return qid
            if leaf in self.class_names:
                return self.methods.get((leaf, "__init__"))
            return None
        recv = parts[-2]
        if recv == "self" and len(parts) == 2:
            if class_name is not None:
                return self.methods.get((class_name, leaf))
            return None
        cls = RECEIVER_CLASSES.get(recv)
        if cls is None and recv in self.class_names:
            cls = recv
        if cls is not None:
            return self.methods.get((cls, leaf))
        return None

    def summary_for_call(self, filename: str, class_name: Optional[str],
                         name: str) -> Optional[Tuple[str, FunctionSummary]]:
        """(display name, summary) for a call site, or None if unresolved."""
        qid = self.lookup(filename, class_name, name)
        if qid is None:
            return None
        summary = self.summaries.get(qid)
        if summary is None:
            return None
        return self.display(qid), summary

    def fingerprint(self) -> str:
        """Stable digest of every summary (part of the analysis-cache key)."""
        payload = {
            qid: {
                "locks": {k: [v[0], list(v[1])] for k, v in sorted(s.locks.items())},
                "blocking": {k: list(v) for k, v in sorted(s.blocking.items())},
            }
            for qid, s in sorted(self.summaries.items())
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


class _DirectFacts(ast.NodeVisitor):
    """Direct locks/blocking/call edges of one function body."""

    def __init__(self, filename: str, class_name: Optional[str]) -> None:
        self.filename = filename
        self.class_name = class_name
        self.aliases: Dict[str, LockKey] = {}
        self.locks: Dict[str, int] = {}
        self.blocking: Set[str] = set()
        self.calls: List[str] = []  # dotted call names, resolved later

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                key = lock_key(node.value, self.class_name, self.aliases)
                if key is not None:
                    self.aliases[target.id] = key
                else:
                    self.aliases.pop(target.id, None)
        self.generic_visit(node)

    def _record_lock(self, expr: ast.AST) -> None:
        key = lock_key(expr, self.class_name, self.aliases)
        if key is None:
            return
        level = lock_level(key)
        if level is not None:
            self.locks.setdefault(format_lock(key), level)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self._record_lock(item.context_expr)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            why = classify_blocking(name)
            if why is not None:
                self.blocking.add(why)
            else:
                self.calls.append(name)
        self.generic_visit(node)

    # Deferred bodies acquire nothing at call time.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def build_callgraph(trees: Mapping[str, ast.Module]) -> CallGraph:
    """Build summaries for ``{filename: parsed module}`` to a fixed point."""
    graph = CallGraph()
    facts: Dict[str, _DirectFacts] = {}

    def add_function(filename: str, fn: ast.AST, class_name: Optional[str]) -> None:
        label = f"{class_name}.{fn.name}" if class_name else fn.name
        qid = f"{filename}::{label}"
        if qid in graph.summaries:
            return
        collector = _DirectFacts(filename, class_name)
        for stmt in fn.body:
            collector.visit(stmt)
        facts[qid] = collector
        graph.summaries[qid] = FunctionSummary(
            locks={k: (lvl, ()) for k, lvl in collector.locks.items()},
            blocking={b: () for b in collector.blocking},
        )
        if class_name:
            graph.methods.setdefault((class_name, fn.name), qid)
        else:
            graph.module_funcs.setdefault((filename, fn.name), qid)

    for filename in sorted(trees):
        tree = trees[filename]
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                graph.class_names.add(node.name)
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        add_function(filename, sub, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                add_function(filename, node, None)

    # Resolve call edges once, then propagate to a fixed point.
    edges: Dict[str, List[str]] = {}
    for qid, collector in facts.items():
        filename = qid.split("::", 1)[0]
        out: List[str] = []
        for name in collector.calls:
            callee = graph.lookup(filename, collector.class_name, name)
            if callee is not None and callee != qid:
                out.append(callee)
        edges[qid] = out

    changed = True
    while changed:
        changed = False
        for qid, callees in edges.items():
            summary = graph.summaries[qid]
            for callee_qid in callees:
                callee = graph.summaries[callee_qid]
                hop = graph.display(callee_qid)
                for lk, (lvl, path) in callee.locks.items():
                    if lk not in summary.locks:
                        summary.locks[lk] = (lvl, (hop, *path))
                        changed = True
                for why, path in callee.blocking.items():
                    if why not in summary.blocking:
                        summary.blocking[why] = (hop, *path)
                        changed = True
    return graph


def build_callgraph_from_tree(tree: ast.Module, filename: str) -> CallGraph:
    """Single-module convenience used by ``analyze_source``."""
    return build_callgraph({filename: tree})
