"""Finding baselines: adopt the linter on a dirty tree without drowning CI.

``repro lint --write-baseline FILE`` records every current finding;
``repro lint --baseline FILE`` then fails only on findings *not* in the
baseline, so new rules can land (and old debt can burn down) without a
flag-day cleanup.

Findings are matched by a **fingerprint**, not by position: the SHA-256
of ``rule|normalized path|normalized message``, where every digit run in
the message is collapsed to ``#``.  Line and column are deliberately
excluded and line numbers inside messages ("acquired line 42") are
normalized away, so editing unrelated code above a known finding does
not resurrect it.  The baseline stores a *count* per fingerprint:
if a file gains a second instance of an already-baselined finding, the
extra one is new and is reported.

The file format is plain sorted JSON so diffs review cleanly:

.. code-block:: json

    {"version": 1, "fingerprints": {"<sha256>": 2, ...}}
"""

from __future__ import annotations

import hashlib
import json
import posixpath
import re
from collections import Counter
from typing import Dict, List, Sequence

from repro.lint.model import LintFinding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "write_baseline",
    "load_baseline",
    "filter_new_findings",
]

BASELINE_VERSION = 1

_DIGITS = re.compile(r"\d+")


def fingerprint(finding: LintFinding) -> str:
    """Position-independent identity of a finding."""
    path = posixpath.normpath(finding.file.replace("\\", "/"))
    message = _DIGITS.sub("#", finding.message)
    blob = f"{finding.rule}|{path}|{message}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def write_baseline(path: str, findings: Sequence[LintFinding]) -> int:
    """Write the baseline file; returns the number of findings recorded."""
    counts = Counter(fingerprint(f) for f in findings)
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": dict(sorted(counts.items())),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return sum(counts.values())


def load_baseline(path: str) -> Dict[str, int]:
    """Load fingerprint counts; raises OSError/ValueError on a bad file."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict) or "fingerprints" not in payload:
        raise ValueError(f"{path}: not a lint baseline file")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"{path}: baseline version {version!r} unsupported "
            f"(expected {BASELINE_VERSION})"
        )
    fps = payload["fingerprints"]
    if not isinstance(fps, dict):
        raise ValueError(f"{path}: malformed fingerprints table")
    return {str(k): int(v) for k, v in fps.items()}


def filter_new_findings(
    findings: Sequence[LintFinding], baseline: Dict[str, int]
) -> List[LintFinding]:
    """Findings not covered by the baseline (extras beyond a count are new)."""
    budget = dict(baseline)
    new: List[LintFinding] = []
    for f in findings:
        fp = fingerprint(f)
        remaining = budget.get(fp, 0)
        if remaining > 0:
            budget[fp] = remaining - 1
        else:
            new.append(f)
    return new
