"""Shared analysis scaffolding: findings, suppressions, scopes, type tags.

The analyzer is a plain ``ast`` walk — no imports of the analyzed code —
so it can lint broken or heavyweight modules safely.  Name resolution is
deliberately *syntactic*: a name's "type tag" is inferred from how it
was bound (``ctx = Context(...)``, ``with open(p) as fh``, an
annotation, a transform-chain call …), which is exactly the information
a reviewer uses when eyeballing a closure.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "LintFinding",
    "Suppressions",
    "ScopeInfo",
    "TRANSFORM_METHODS",
    "DRIVER_TAGS",
    "UNPICKLABLE_TAGS",
    "infer_type_tag",
    "infer_annotation_tag",
    "free_names",
    "dotted_name",
]


@dataclass(frozen=True)
class LintFinding:
    """One diagnostic: rule + location + explanation + fix hint."""

    rule: str
    file: str
    line: int
    col: int
    message: str
    #: Captured-name chain, outermost first, e.g.
    #: ``("map @ demo.py:12", "fn 'flag'", "capture 'bus' (EventBus, bound at line 4)")``.
    chain: Tuple[str, ...] = ()
    hint: str = ""
    #: Extra lines whose suppression comments also silence this finding
    #: (e.g. the ``with`` statement a blocking-call finding sits inside).
    anchor_lines: Tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """Stable JSON shape (schema locked down by tests)."""
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "chain": list(self.chain),
            "hint": self.hint,
        }


_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


class Suppressions:
    """Per-line ``# repro: lint-ignore[...]`` directives for one file.

    A directive on a line suppresses findings anchored to that line; a
    directive on an otherwise-comment-only line also covers the next
    line, so flagged expressions too long to share a line stay
    suppressible.  ``lint-ignore`` with no bracket suppresses every
    rule on the line.
    """

    def __init__(self, source: str) -> None:
        # line number -> set of rule ids ("*" = all)
        self._by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            rules = (
                {r.strip() for r in m.group(1).split(",") if r.strip()}
                if m.group(1)
                else {"*"}
            )
            self._by_line.setdefault(lineno, set()).update(rules)
            if text.lstrip().startswith("#"):  # standalone comment covers next line
                self._by_line.setdefault(lineno + 1, set()).update(rules)

    def matches(self, rule: str, lines: Iterable[int]) -> bool:
        for line in lines:
            rules = self._by_line.get(line)
            if rules and ("*" in rules or rule in rules):
                return True
        return False


#: RDD / DistributedLattice methods that ship their callable arguments
#: into tasks.  Anything here makes its function arguments "task code".
TRANSFORM_METHODS = frozenset(
    {
        "map",
        "filter",
        "flat_map",
        "glom",
        "key_by",
        "map_partitions",
        "map_partitions_with_index",
        "map_values",
        "flat_map_values",
        "reduce_by_key",
        "combine_by_key",
        "aggregate_by_key",
        "fold_by_key",
        "group_by",
        "sort_by",
        "zip_partitions",
        "foreach",
        "foreach_partition",
        "reduce",
        "fold",
        "aggregate",
        "tree_aggregate",
        "tree_reduce",
        "run_job",
    }
)

#: Inferred tags that mean "driver-side engine machinery" (rule C101).
DRIVER_TAGS = frozenset(
    {
        "Context",
        "RDD",
        "EventBus",
        "BlockStore",
        "ShuffleManager",
        "Scheduler",
        "Executor",
        "FlightRecorder",
        "SBGTSession",
        "DistributedLattice",
        "PosteriorBackend",
        "Campaign",
        "BudgetAllocator",
        "MetricsHub",
        "MetricInstrument",
        "Sampler",
    }
)

#: Inferred tags that mean "cannot cross a process boundary" (rule C102).
UNPICKLABLE_TAGS = frozenset(
    {"Lock", "File", "Socket", "Queue", "Thread", "Process", "Pipe", "Generator"}
)

# Constructor terminal-name -> tag.  ``x = Lock()`` and
# ``x = threading.Lock()`` both end in ``Lock``.
_CONSTRUCTOR_TAGS = {
    "Context": "Context",
    "EventBus": "EventBus",
    "BlockStore": "BlockStore",
    "ShuffleManager": "ShuffleManager",
    "Scheduler": "Scheduler",
    "SerialExecutor": "Executor",
    "ThreadExecutor": "Executor",
    "ProcessExecutor": "Executor",
    "FlightRecorder": "FlightRecorder",
    "SBGTSession": "SBGTSession",
    "DistributedLattice": "DistributedLattice",
    "SparsePosterior": "PosteriorBackend",
    "ParticlePosterior": "PosteriorBackend",
    "Campaign": "Campaign",
    "ThompsonAllocator": "BudgetAllocator",
    "UniformAllocator": "BudgetAllocator",
    "GreedyAllocator": "BudgetAllocator",
    "MetricsHub": "MetricsHub",
    "default_hub": "MetricsHub",
    "Sampler": "Sampler",
    "Lock": "Lock",
    "RLock": "Lock",
    "Condition": "Lock",
    "Semaphore": "Lock",
    "BoundedSemaphore": "Lock",
    "Barrier": "Lock",
    "Queue": "Queue",
    "SimpleQueue": "Queue",
    "LifoQueue": "Queue",
    "PriorityQueue": "Queue",
    "Thread": "Thread",
    "Timer": "Thread",
    "Popen": "Process",
    "socket": "Socket",
    "create_connection": "Socket",
    "open": "File",
    "TemporaryFile": "File",
    "NamedTemporaryFile": "File",
    "Pipe": "Pipe",
}

# ``x = ctx.<attr>`` where the attribute is known driver machinery.
_ATTRIBUTE_TAGS = {
    "event_bus": "EventBus",
    "block_store": "BlockStore",
    "shuffle_manager": "ShuffleManager",
    "flight_recorder": "FlightRecorder",
    "executor": "Executor",
    "metrics_hub": "MetricsHub",
}

# Hub method-call results are labelled instruments (driver-resident,
# like the hub itself).  ``histogram`` is ambiguous — RDDs have a
# ``.histogram(...)`` action returning plain arrays — so it only tags
# when the receiver is recognizably a hub.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "labels"})
_HUB_RECEIVERS = frozenset({"hub", "metrics_hub", "_hub"})

# Method-call results: ``ctx.parallelize(...)`` is an RDD, and so is any
# transform-chain tail (``.map(...)``, ``.cache()`` …).
_RDD_PRODUCERS = (
    TRANSFORM_METHODS
    | {"parallelize", "union", "cache", "checkpoint", "unpersist", "coalesce",
       "repartition", "distinct", "sample", "zip", "zip_with_index", "partition_by",
       "join", "left_outer_join", "right_outer_join", "full_outer_join", "cogroup",
       "keys", "values"}
) - {"run_job", "foreach", "foreach_partition", "reduce", "fold", "aggregate",
     "tree_aggregate", "tree_reduce"}

_ANNOTATION_TAGS = {
    "Context": "Context",
    "RDD": "RDD",
    "EventBus": "EventBus",
    "BlockStore": "BlockStore",
    "ShuffleManager": "ShuffleManager",
    "Accumulator": "Accumulator",
    "Broadcast": "Broadcast",
    "SBGTSession": "SBGTSession",
    "DistributedLattice": "DistributedLattice",
    "PosteriorBackend": "PosteriorBackend",
    "SparsePosterior": "PosteriorBackend",
    "ParticlePosterior": "PosteriorBackend",
    "Campaign": "Campaign",
    "BudgetAllocator": "BudgetAllocator",
    "ThompsonAllocator": "BudgetAllocator",
    "UniformAllocator": "BudgetAllocator",
    "GreedyAllocator": "BudgetAllocator",
    "MetricsHub": "MetricsHub",
    "Sampler": "Sampler",
    "Counter": "MetricInstrument",
    "Gauge": "MetricInstrument",
    "Histogram": "MetricInstrument",
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_call_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def infer_type_tag(value: ast.AST) -> Optional[str]:
    """Best-effort tag for the value of an assignment RHS."""
    if isinstance(value, ast.Call):
        name = _terminal_call_name(value.func)
        if name in _CONSTRUCTOR_TAGS:
            return _CONSTRUCTOR_TAGS[name]
        if name == "broadcast":
            return "Broadcast"
        if name == "accumulator":
            return "Accumulator"
        if isinstance(value.func, ast.Attribute):
            if name in _INSTRUMENT_METHODS:
                return "MetricInstrument"
            if name == "histogram":
                recv = dotted_name(value.func.value)
                if recv and recv.split(".")[-1] in _HUB_RECEIVERS:
                    return "MetricInstrument"
        if name in _RDD_PRODUCERS and isinstance(value.func, ast.Attribute):
            return "RDD"
        if name == "range" and isinstance(value.func, ast.Attribute):
            # ctx.range(...) is an RDD; builtins' range is a Name call.
            return "RDD"
        return None
    if isinstance(value, ast.Attribute) and value.attr in _ATTRIBUTE_TAGS:
        return _ATTRIBUTE_TAGS[value.attr]
    if isinstance(value, (ast.GeneratorExp,)):
        return "Generator"
    return None


def infer_annotation_tag(annotation: Optional[ast.AST]) -> Optional[str]:
    """Tag for ``x: Context`` style annotations (plain or quoted)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.split("[")[0].split(".")[-1].replace("'", "").replace('"', "").strip()
        return _ANNOTATION_TAGS.get(name)
    name = dotted_name(annotation)
    if name:
        return _ANNOTATION_TAGS.get(name.split(".")[-1])
    if isinstance(annotation, ast.Subscript):  # Optional[Context], "RDD[int]"
        return infer_annotation_tag(annotation.value)
    return None


@dataclass
class ScopeInfo:
    """One lexical scope's bindings, as seen by the module walker."""

    node: ast.AST
    is_module: bool = False
    #: name -> (type tag, binding line)
    tags: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: every name bound in this scope (assignments, defs, imports, args)
    bound: Set[str] = field(default_factory=set)
    #: name -> FunctionDef/AsyncFunctionDef node, for resolving
    #: ``rdd.map(helper)`` back to ``def helper``
    functions: Dict[str, ast.AST] = field(default_factory=dict)


def _local_bindings(body: Sequence[ast.stmt]) -> Set[str]:
    """Names one function scope binds, *not* descending into nested scopes."""
    bound: Set[str] = set()
    escaping: Set[str] = set()  # global/nonlocal declarations
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
            for default in getattr(getattr(node, "args", None), "defaults", []) or []:
                stack.append(default)  # defaults evaluate in this scope
            continue  # nested scope: its body binds nothing here
        if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            escaping.update(node.names)
        elif isinstance(node, ast.Import):
            bound.update(a.asname or a.name.split(".")[0] for a in node.names)
        elif isinstance(node, ast.ImportFrom):
            bound.update(a.asname or a.name for a in node.names)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        stack.extend(ast.iter_child_nodes(node))
    return bound - escaping


class _FreeNameCollector(ast.NodeVisitor):
    """Free variables of one function, with first-use line numbers.

    Walks the function body with a fresh local-binding set per nested
    scope; loads not bound anywhere up the (intra-function) chain
    surface as free names.  Comprehension targets bind in their own
    scope, matching Python 3 semantics closely enough for lint.
    """

    def __init__(self, bound: Set[str]) -> None:
        self.bound_stack: List[Set[str]] = [set(bound)]
        self.free: Dict[str, int] = {}

    # -- binding constructs -------------------------------------------
    def _bind(self, name: str) -> None:
        self.bound_stack[-1].add(name)

    def _is_bound(self, name: str) -> bool:
        return any(name in scope for scope in self.bound_stack)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._bind(node.id)
        elif not self._is_bound(node.id):
            self.free.setdefault(node.id, node.lineno)

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:  # a global is *not* local: reads are free
            self.free.setdefault(name, node.lineno)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        for name in node.names:
            self.free.setdefault(name, node.lineno)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._bind(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self._bind(alias.asname or alias.name)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self._bind(node.name)
        self.generic_visit(node)

    # -- nested scopes ------------------------------------------------
    def _visit_function(self, node) -> None:
        # Defaults evaluate in the *enclosing* scope.
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self.visit(default)
        args = node.args
        names = {
            a.arg
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }
        self.bound_stack.append(names)
        body = node.body if isinstance(node.body, list) else [node.body]
        # Python scoping: any name stored anywhere in the function body is
        # local for the *whole* body (unless declared global/nonlocal), so
        # hoist all local bindings before walking for loads.
        self.bound_stack[-1].update(_local_bindings(body))
        for stmt in body:
            self.visit(stmt)
        self.bound_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._bind(node.name)
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._bind(node.name)
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    def _visit_comprehension(self, node) -> None:
        self.bound_stack.append(set())
        for gen in node.generators:
            self.visit(gen.iter)
            self.visit(gen.target)  # Store context: binds in comp scope
            for cond in gen.ifs:
                self.visit(cond)
        for elt_field in ("elt", "key", "value"):
            elt = getattr(node, elt_field, None)
            if elt is not None:
                self.visit(elt)
        self.bound_stack.pop()

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def free_names(fn_node: ast.AST) -> Dict[str, int]:
    """Free variables of a Lambda/FunctionDef: name -> first-use line."""
    collector = _FreeNameCollector(set())
    collector._visit_function(fn_node)
    return collector.free
