"""Runtime bridge: map pickling failures back to lint's capture model.

When ``closure.serialize`` fails, the raw pickle error names a type
three frames deep and nothing else.  This module re-walks the payload
the way the pickler would — function closure cells (paired with
``co_freevars``), default arguments, containers, object ``__dict__`` —
and returns the *capture path* to the first offending value, tagged
with the lint rule that would have flagged it statically.

No engine imports here: the caller supplies the ``can_pickle`` probe so
``repro.engine.closure`` can depend on this module without a cycle.
"""

from __future__ import annotations

import types
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Set, Tuple

__all__ = ["CaptureIssue", "find_unpicklable", "capture_report"]

#: Type names that identify driver-side machinery (rule C101): shipping
#: these is wrong even when pickling happens to succeed via a stub.
_DRIVER_TYPE_NAMES = frozenset({
    "Context", "RDD", "EventBus", "BlockStore", "ShuffleManager",
    "Scheduler", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "FlightRecorder", "SBGTSession", "DistributedLattice",
})

#: Type-name fragments for classically unpicklable handles (rule C102).
_UNPICKLABLE_HINTS = (
    "lock", "rlock", "condition", "semaphore", "barrier",
    "socket", "queue", "thread", "popen", "generator",
    "bufferedreader", "bufferedwriter", "textiowrapper", "fileio",
    "connection", "event",
)


@dataclass(frozen=True)
class CaptureIssue:
    """Where an un-shippable value sits inside a task payload."""

    #: Human-readable hops, outermost first, e.g.
    #: ``("function 'guarded' (demo.py:12)", "closure cell 'lock'")``.
    path: Tuple[str, ...]
    value_type: str
    #: Best-matching static rule id (C101 driver object, C102 unpicklable).
    rule: str

    def describe(self) -> str:
        hops = " -> ".join(self.path) if self.path else "payload"
        return f"{hops}: {self.value_type} [rule {self.rule}]"


def _classify(value: Any) -> Optional[str]:
    name = type(value).__name__
    if name in _DRIVER_TYPE_NAMES:
        return "C101"
    lowered = name.lower()
    if isinstance(value, types.GeneratorType) or any(
        h in lowered for h in _UNPICKLABLE_HINTS
    ):
        return "C102"
    return None


def _fn_site(fn: types.FunctionType) -> str:
    code = fn.__code__
    label = fn.__name__ if fn.__name__ != "<lambda>" else "lambda"
    return f"function {label!r} ({code.co_filename}:{code.co_firstlineno})"


def find_unpicklable(
    obj: Any,
    can_pickle: Callable[[Any], bool],
    *,
    max_depth: int = 8,
) -> Optional[CaptureIssue]:
    """Depth-first search for the first value that cannot ship.

    Returns the issue for the *deepest* unpicklable leaf reachable from
    ``obj``, or None when the failure cannot be localized (e.g. a C
    extension object rejecting pickle wholesale).
    """
    seen: Set[int] = set()

    def walk(value: Any, path: Tuple[str, ...], depth: int) -> Optional[CaptureIssue]:
        if id(value) in seen or depth > max_depth:
            return None
        seen.add(id(value))

        children: List[Tuple[str, Any]] = []
        if isinstance(value, types.FunctionType):
            site = _fn_site(value)
            code = value.__code__
            if value.__closure__:
                for name, cell in zip(code.co_freevars, value.__closure__):
                    try:
                        children.append((f"{site} -> closure cell {name!r}",
                                         cell.cell_contents))
                    except ValueError:  # empty cell
                        continue
            for i, default in enumerate(value.__defaults__ or ()):
                children.append((f"{site} -> default #{i}", default))
            for name, default in (value.__kwdefaults__ or {}).items():
                children.append((f"{site} -> default {name!r}", default))
        elif isinstance(value, (tuple, list, set, frozenset)):
            children = [(f"[{i}]", item) for i, item in enumerate(value)]
        elif isinstance(value, dict):
            for k, v in value.items():
                label = repr(k) if isinstance(k, (str, int, bytes)) else type(k).__name__
                children.append((f"[{label}]", v))
        else:
            attrs = getattr(value, "__dict__", None)
            if isinstance(attrs, dict):
                children = [(f".{k}", v) for k, v in attrs.items()]

        for label, child in children:
            hop = path + (label,)
            if isinstance(child, types.FunctionType):
                issue = walk(child, hop[:-1], depth + 1)
                if issue is not None:
                    return issue
                continue
            if not can_pickle(child):
                deeper = walk(child, hop, depth + 1)
                if deeper is not None:
                    return deeper
                return CaptureIssue(
                    path=hop,
                    value_type=type(child).__name__,
                    rule=_classify(child) or "C102",
                )
        return None

    issue = walk(obj, (), 0)
    if issue is not None:
        return issue
    # The object itself may be the offender with no traversable children.
    rule = _classify(obj)
    if rule is not None and not can_pickle(obj):
        return CaptureIssue(path=(), value_type=type(obj).__name__, rule=rule)
    return None


def capture_report(obj: Any, can_pickle: Callable[[Any], bool]) -> Optional[str]:
    """One-line diagnosis for a failed serialization, or None."""
    issue = find_unpicklable(obj, can_pickle)
    if issue is None:
        return None
    return (
        f"unpicklable capture: {issue.describe()} — "
        f"run `python -m repro lint` to catch this before runtime"
    )
