"""Engine-concurrency rules (E2xx) for ``repro.engine`` / ``repro.serve``.

The engine's locks form a declared hierarchy (outer acquired first);
the table below *is* the normative order — docs/architecture.md renders
it for humans.  Identity is resolved syntactically: ``with self._lock:``
inside ``class BlockStore`` is the BlockStore lock, a module-level
``with _stage_lock:`` is keyed by module, and local aliases
(``lock = self._engine_lock``) are followed within a function.

Checks are per-function: nesting across call boundaries is out of scope
(and out of budget for an AST pass); the rules target the patterns that
have actually bitten Spark-like engines — publish/block while holding a
store lock, inverted nesting, and events rewritten after delivery.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.model import LintFinding, dotted_name
from repro.lint.rules import RULES

__all__ = ["analyze_concurrency", "LOCK_LEVELS", "MODULE_LOCK_LEVELS", "is_engine_module"]

#: Declared lock order, outer (low level) -> inner (high level), keyed by
#: ``(class name, attribute)``.  Same-level locks must never nest.
LOCK_LEVELS: Dict[Tuple[str, str], int] = {
    ("ReproServer", "_engine_lock"): 10,
    ("Context", "_lock"): 20,
    ("SerialExecutor", "_lock"): 30,
    ("ThreadExecutor", "_lock"): 30,
    ("ProcessExecutor", "_lock"): 30,
    ("ShuffleManager", "_lock"): 40,
    ("BlockStore", "_lock"): 50,
    ("AccumulatorRegistry", "_lock"): 60,
    ("Accumulator", "_lock"): 60,
    ("MetricsRegistry", "_lock"): 70,
    ("EventBus", "_lock"): 80,
    # Leaf locks: never held across engine calls.
    ("RecordingListener", "_lock"): 90,
    ("ResultCache", "_lock"): 90,
    ("SessionRegistry", "_lock"): 90,
    ("ServeMetricsListener", "_lock"): 90,
    ("LatencyHistogram", "_lock"): 90,
    ("FlightRecorder", "_lock"): 90,
}

#: Module-level lock names (id counters and the stage-id lock are leaves).
MODULE_LOCK_LEVELS: Dict[str, int] = {
    "_stage_lock": 90,
    "_ids_lock": 90,
}

#: Held-lock levels at or above the data plane: blocking under these is E202.
_DATA_PLANE_MAX_LEVEL = 50

#: Call names (dotted tails) that block the calling thread.
_BLOCKING_SIMPLE = frozenset({"sleep", "recv", "recv_bytes", "acquire", "result",
                              "wait", "wait_for", "shutdown"})


def is_engine_module(filename: str) -> bool:
    path = filename.replace("\\", "/")
    return "repro/engine/" in path or "repro/serve/" in path


#: Conventional owner names -> lock-owning class, for resolving
#: ``self._ctx._lock`` / ``bus._lock`` style cross-object acquisitions.
_OWNER_NAME_CLASSES: Dict[str, str] = {
    "ctx": "Context", "_ctx": "Context", "context": "Context",
    "bus": "EventBus", "_bus": "EventBus", "event_bus": "EventBus",
    "store": "BlockStore", "_store": "BlockStore",
    "block_store": "BlockStore", "blockstore": "BlockStore", "_blockstore": "BlockStore",
    "shuffle": "ShuffleManager", "_shuffle": "ShuffleManager",
    "shuffle_manager": "ShuffleManager", "manager": "ShuffleManager",
    "server": "ReproServer", "_server": "ReproServer",
    "executor": "ThreadExecutor", "_executor": "ThreadExecutor",
    "pool": "ThreadExecutor", "_pool": "ThreadExecutor",
    "recorder": "FlightRecorder", "_recorder": "FlightRecorder",
    "scheduler": "Scheduler", "_scheduler": "Scheduler",
}

#: Lock attributes that name their owner unambiguously (``_engine_lock``
#: only exists on ReproServer), usable without knowing the owner object.
_UNIQUE_ATTR_CLASSES: Dict[str, str] = {}
for (_cls, _attr) in LOCK_LEVELS:
    _UNIQUE_ATTR_CLASSES[_attr] = None if _attr in _UNIQUE_ATTR_CLASSES else _cls
_UNIQUE_ATTR_CLASSES = {a: c for a, c in _UNIQUE_ATTR_CLASSES.items() if c}


def _owner_class(owner: ast.AST) -> Optional[str]:
    """Class owning ``<owner>._lock``, from conventional naming."""
    name = None
    if isinstance(owner, ast.Name):
        name = owner.id
    elif isinstance(owner, ast.Attribute):
        name = owner.attr
    return _OWNER_NAME_CLASSES.get(name) if name else None


def _lock_key(expr: ast.AST, class_name: Optional[str],
              aliases: Dict[str, Tuple[Optional[str], str]]) -> Optional[Tuple[Optional[str], str]]:
    """Resolve a with-item expression to a lock identity, if it looks like one."""
    if isinstance(expr, ast.Attribute):
        if "lock" not in expr.attr:
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return (class_name, expr.attr)
        owner = _owner_class(expr.value) or _UNIQUE_ATTR_CLASSES.get(expr.attr)
        return (owner, expr.attr)
    if isinstance(expr, ast.Name):
        if expr.id in aliases:
            return aliases[expr.id]
        if "lock" in expr.id:
            return (_UNIQUE_ATTR_CLASSES.get(expr.id), expr.id)
    return None


def _lock_level(key: Tuple[Optional[str], str]) -> Optional[int]:
    cls, attr = key
    if cls is not None:
        return LOCK_LEVELS.get((cls, attr))
    return MODULE_LOCK_LEVELS.get(attr)


class _FunctionChecker(ast.NodeVisitor):
    """E201/E202/E203 over one function body."""

    def __init__(self, analyzer: "_ConcurrencyAnalyzer", class_name: Optional[str]) -> None:
        self.analyzer = analyzer
        self.class_name = class_name
        # alias name -> lock key, from `lock = self._lock` style assigns
        self.aliases: Dict[str, Tuple[Optional[str], str]] = {}
        # stack of (lock key, level, with-statement line)
        self.held: List[Tuple[Tuple[Optional[str], str], Optional[int], int]] = []
        # event name -> post line (for E203)
        self.posted: Dict[str, int] = {}

    # -- alias tracking -----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        targets = node.targets
        if len(targets) == 1 and isinstance(targets[0], (ast.Tuple, ast.List)) and isinstance(
            node.value, (ast.Tuple, ast.List)
        ) and len(targets[0].elts) == len(node.value.elts):
            pairs = list(zip(targets[0].elts, node.value.elts))
        else:
            pairs = [(t, node.value) for t in targets]
        for target, value in pairs:
            if isinstance(target, ast.Name):
                key = _lock_key(value, self.class_name, self.aliases)
                if key is not None:
                    self.aliases[target.id] = key
                else:
                    self.aliases.pop(target.id, None)
                # Assigning a Name clears any posted-event tracking on it.
                self.posted.pop(target.id, None)
        self.generic_visit(node)

    # -- E201 + E202 scaffolding --------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            self.visit(item.context_expr)
            key = _lock_key(item.context_expr, self.class_name, self.aliases)
            if key is None:
                continue
            level = _lock_level(key)
            self._check_order(key, level, node)
            self.held.append((key, level, node.lineno))
            acquired += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(acquired):
            self.held.pop()

    visit_AsyncWith = visit_With

    def _check_order(self, key, level: Optional[int], node: ast.With) -> None:
        if level is None:
            return
        for held_key, held_level, held_line in self.held:
            if held_level is None:
                continue
            if level <= held_level:
                self.analyzer.emit(
                    "E201", node,
                    f"acquires {_fmt(key)} (level {level}) while holding "
                    f"{_fmt(held_key)} (level {held_level}, line {held_line}) — "
                    "declared order is outer-to-inner, strictly descending",
                    chain=(f"holding {_fmt(held_key)} since line {held_line}",
                           f"acquiring {_fmt(key)}"),
                )

    # -- E202 + E203 --------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            self._check_blocking(name, node)
            self._track_post(name, node)
        self.generic_visit(node)

    def _innermost_data_plane_lock(self):
        for key, level, line in reversed(self.held):
            if level is not None and level <= _DATA_PLANE_MAX_LEVEL:
                return key, level, line
        return None

    def _check_blocking(self, name: str, node: ast.Call) -> None:
        held = self._innermost_data_plane_lock()
        if held is None:
            return
        parts = name.split(".")
        leaf = parts[-1]
        blocking = None
        if leaf in _BLOCKING_SIMPLE:
            blocking = f"{name}()"
        elif leaf == "post" and ("bus" in parts[-2] if len(parts) >= 2 else False):
            blocking = f"{name}() (event-bus publish runs arbitrary listener code)"
        elif leaf == "get" and len(parts) >= 2 and any(
            h in parts[-2] for h in ("queue", "pipe", "conn")
        ):
            blocking = f"{name}()"
        elif leaf == "join" and len(parts) >= 2 and any(
            h in parts[-2] for h in ("thread", "proc", "worker", "pool")
        ):
            blocking = f"{name}()"
        if blocking is None:
            return
        key, level, line = held
        self.analyzer.emit(
            "E202", node,
            f"{blocking} while holding {_fmt(key)} (acquired line {line}) — "
            "stalls every task on the data plane and risks deadlock",
            chain=(f"holding {_fmt(key)} since line {line}", f"call {name}"),
            anchor_lines=(line,),
        )

    def _track_post(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        if parts[-1] != "post" or len(parts) < 2:
            return
        if not any("bus" in p or p == "_post" for p in parts[:-1]):
            return
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self.posted.setdefault(arg.id, node.lineno)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.posted
        ):
            post_line = self.posted[node.value.id]
            self.analyzer.emit(
                "E203", node,
                f"mutates {node.value.id}.{node.attr} after posting "
                f"{node.value.id!r} to the event bus at line {post_line} — "
                "listeners hold the original object",
                chain=(f"posted {node.value.id!r} at line {post_line}",
                       f"mutated .{node.attr}"),
            )
        self.generic_visit(node)

    # nested defs get their own checker (fresh lock state)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.analyzer.check_function(node, self.class_name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.analyzer.check_function(node, self.class_name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # lambdas with lock acquisition don't exist; skip


def _fmt(key: Tuple[Optional[str], str]) -> str:
    cls, attr = key
    return f"{cls}.{attr}" if cls else attr


class _ConcurrencyAnalyzer:
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[LintFinding] = []

    def emit(self, rule: str, node: ast.AST, message: str,
             chain: Tuple[str, ...] = (), anchor_lines: Tuple[int, ...] = ()) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                file=self.filename,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                chain=chain,
                hint=RULES[rule].hint,
                anchor_lines=anchor_lines,
            )
        )

    def check_function(self, fn_node, class_name: Optional[str]) -> None:
        checker = _FunctionChecker(self, class_name)
        for stmt in fn_node.body:
            checker.visit(stmt)

    def run(self, tree: ast.Module) -> None:
        self._walk(tree.body, class_name=None)

    def _walk(self, body, class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._walk(node.body, class_name=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_function(node, class_name)


def analyze_concurrency(tree: ast.Module, filename: str) -> List[LintFinding]:
    """Run the E2xx family over one parsed engine/serve module."""
    analyzer = _ConcurrencyAnalyzer(filename)
    analyzer.run(tree)
    return analyzer.findings
