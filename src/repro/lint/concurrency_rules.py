"""Engine-concurrency rules (E2xx) for ``repro.engine``/``serve``/``obs``.

The engine's locks form a declared hierarchy (outer acquired first); the
normative table lives in :mod:`repro.engine.lockorder` — one registry
shared by this analyzer and the runtime sanitizer
(:class:`repro.engine.lockorder.OrderedLock`), so the linter and live
threads can never disagree about the order.  ``LOCK_LEVELS`` and
``MODULE_LOCK_LEVELS`` are re-exported here for compatibility.

Identity is resolved syntactically: ``with self._lock:`` inside
``class BlockStore`` is the BlockStore lock, a module-level
``with _stage_lock:`` is keyed by module, and local aliases
(``lock = self._engine_lock``) are followed within a function.

E201/E202 are per-function.  When a :class:`~repro.lint.callgraph.CallGraph`
is supplied, E204/E205 extend the same checks across call boundaries
using fixed-point per-function summaries: E204 flags a call that may
*transitively* acquire a lock out of order, E205 a call that may block
while a data-plane lock is held (admission-gate locks — see
``lockorder.ADMISSION_GATE_LOCKS`` — are exempt from E205: they
serialize whole operations by design).  E206 is the completeness
meta-check: every raw ``threading.Lock()``/``RLock()`` assignment and
every ``OrderedLock("name")`` literal in an engine module must have a
declared level.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.engine.lockorder import (
    DATA_PLANE_MAX_LEVEL as _DATA_PLANE_MAX_LEVEL,
    LOCK_LEVELS,
    MODULE_LOCK_LEVELS,
    lock_level as _declared_level,
)
from repro.lint.callgraph import (
    CallGraph,
    classify_blocking,
    format_lock as _fmt,
    is_admission_gate,
    lock_key as _lock_key,
    lock_level as _lock_level,
)
from repro.lint.model import LintFinding, dotted_name
from repro.lint.rules import RULES

__all__ = ["analyze_concurrency", "LOCK_LEVELS", "MODULE_LOCK_LEVELS", "is_engine_module"]


def is_engine_module(filename: str) -> bool:
    path = filename.replace("\\", "/")
    return any(part in path for part in ("repro/engine/", "repro/serve/", "repro/obs/"))


class _FunctionChecker(ast.NodeVisitor):
    """E201/E202/E203 (+ interprocedural E204/E205) over one function body."""

    def __init__(self, analyzer: "_ConcurrencyAnalyzer", class_name: Optional[str]) -> None:
        self.analyzer = analyzer
        self.class_name = class_name
        # alias name -> lock key, from `lock = self._lock` style assigns
        self.aliases: Dict[str, Tuple[Optional[str], str]] = {}
        # stack of (lock key, level, with-statement line)
        self.held: List[Tuple[Tuple[Optional[str], str], Optional[int], int]] = []
        # event name -> post line (for E203)
        self.posted: Dict[str, int] = {}

    # -- alias tracking -----------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        targets = node.targets
        if len(targets) == 1 and isinstance(targets[0], (ast.Tuple, ast.List)) and isinstance(
            node.value, (ast.Tuple, ast.List)
        ) and len(targets[0].elts) == len(node.value.elts):
            pairs = list(zip(targets[0].elts, node.value.elts))
        else:
            pairs = [(t, node.value) for t in targets]
        for target, value in pairs:
            if isinstance(target, ast.Name):
                key = _lock_key(value, self.class_name, self.aliases)
                if key is not None:
                    self.aliases[target.id] = key
                else:
                    self.aliases.pop(target.id, None)
                # Assigning a Name clears any posted-event tracking on it.
                self.posted.pop(target.id, None)
        self.generic_visit(node)

    # -- E201 + E202 scaffolding --------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired = 0
        for item in node.items:
            self.visit(item.context_expr)
            key = _lock_key(item.context_expr, self.class_name, self.aliases)
            if key is None:
                continue
            level = _lock_level(key)
            self._check_order(key, level, node)
            self.held.append((key, level, node.lineno))
            acquired += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(acquired):
            self.held.pop()

    visit_AsyncWith = visit_With

    def _check_order(self, key, level: Optional[int], node: ast.With) -> None:
        if level is None:
            return
        for held_key, held_level, held_line in self.held:
            if held_level is None:
                continue
            if level <= held_level:
                self.analyzer.emit(
                    "E201", node,
                    f"acquires {_fmt(key)} (level {level}) while holding "
                    f"{_fmt(held_key)} (level {held_level}, line {held_line}) — "
                    "declared order is outer-to-inner, strictly descending",
                    chain=(f"holding {_fmt(held_key)} since line {held_line}",
                           f"acquiring {_fmt(key)}"),
                )

    # -- E202 + E203 + interprocedural E204/E205 ----------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            direct_blocking = self._check_blocking(name, node)
            self._track_post(name, node)
            if not direct_blocking and self.held and self.analyzer.callgraph is not None:
                self._check_summary(name, node)
        self.generic_visit(node)

    def _innermost_data_plane_lock(self):
        for key, level, line in reversed(self.held):
            if level is not None and level <= _DATA_PLANE_MAX_LEVEL:
                return key, level, line
        return None

    def _check_blocking(self, name: str, node: ast.Call) -> bool:
        blocking = classify_blocking(name)
        if blocking is None:
            return False
        held = self._innermost_data_plane_lock()
        if held is None:
            return True  # still a direct blocking call: E205 has nothing to add
        key, level, line = held
        self.analyzer.emit(
            "E202", node,
            f"{blocking} while holding {_fmt(key)} (acquired line {line}) — "
            "stalls every task on the data plane and risks deadlock",
            chain=(f"holding {_fmt(key)} since line {line}", f"call {name}"),
            anchor_lines=(line,),
        )
        return True

    def _check_summary(self, name: str, node: ast.Call) -> None:
        """E204/E205: consult the callee's transitive lock summary."""
        resolved = self.analyzer.callgraph.summary_for_call(
            self.analyzer.filename, self.class_name, name
        )
        if resolved is None:
            return
        display, summary = resolved

        # E204: the callee may acquire a lock at or below a held level.
        for lk, (level, path) in sorted(summary.locks.items()):
            for held_key, held_level, held_line in self.held:
                if held_level is None or _fmt(held_key) == lk:
                    continue  # unknown level / reentrant re-acquisition
                if level <= held_level:
                    hops = tuple(f"which calls {hop}" for hop in path)
                    self.analyzer.emit(
                        "E204", node,
                        f"call to {display}() may acquire {lk} (level {level}) "
                        f"while holding {_fmt(held_key)} (level {held_level}, "
                        f"line {held_line}) — transitive acquisition violates "
                        "the declared order",
                        chain=(f"holding {_fmt(held_key)} since line {held_line}",
                               f"call {display}", *hops,
                               f"acquires {lk} (level {level})"),
                        anchor_lines=(held_line,),
                    )
                    break  # one finding per (call, lock) is enough

        # E205: the callee may block while we hold a data-plane lock.
        held = self._innermost_data_plane_lock()
        if held is None:
            return
        key, _level, line = held
        if is_admission_gate(key):
            return  # gate locks serialize whole operations by design
        for why, path in sorted(summary.blocking.items()):
            hops = tuple(f"which calls {hop}" for hop in path)
            self.analyzer.emit(
                "E205", node,
                f"call to {display}() may block in {why} while holding "
                f"{_fmt(key)} (acquired line {line}) — stalls every task "
                "on the data plane and risks deadlock",
                chain=(f"holding {_fmt(key)} since line {line}",
                       f"call {display}", *hops, f"blocks in {why}"),
                anchor_lines=(line,),
            )
            break  # one finding per call site

    def _track_post(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        if parts[-1] != "post" or len(parts) < 2:
            return
        if not any("bus" in p or p == "_post" for p in parts[:-1]):
            return
        for arg in node.args:
            if isinstance(arg, ast.Name):
                self.posted.setdefault(arg.id, node.lineno)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Store)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.posted
        ):
            post_line = self.posted[node.value.id]
            self.analyzer.emit(
                "E203", node,
                f"mutates {node.value.id}.{node.attr} after posting "
                f"{node.value.id!r} to the event bus at line {post_line} — "
                "listeners hold the original object",
                chain=(f"posted {node.value.id!r} at line {post_line}",
                       f"mutated .{node.attr}"),
            )
        self.generic_visit(node)

    # nested defs get their own checker (fresh lock state)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.analyzer.check_function(node, self.class_name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.analyzer.check_function(node, self.class_name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # lambdas with lock acquisition don't exist; skip


#: Raw lock constructors E206 demands a declared level for.
_RAW_LOCK_CALLS = frozenset({"threading.Lock", "threading.RLock"})


class _ConcurrencyAnalyzer:
    def __init__(self, filename: str, callgraph: Optional[CallGraph] = None) -> None:
        self.filename = filename
        self.callgraph = callgraph
        self.findings: List[LintFinding] = []

    def emit(self, rule: str, node: ast.AST, message: str,
             chain: Tuple[str, ...] = (), anchor_lines: Tuple[int, ...] = ()) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                file=self.filename,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                chain=chain,
                hint=RULES[rule].hint,
                anchor_lines=anchor_lines,
            )
        )

    def check_function(self, fn_node, class_name: Optional[str]) -> None:
        checker = _FunctionChecker(self, class_name)
        for stmt in fn_node.body:
            checker.visit(stmt)

    def run(self, tree: ast.Module) -> None:
        self._walk(tree.body, class_name=None)
        self._scan_undeclared_locks(tree)

    def _walk(self, body, class_name: Optional[str]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                self._walk(node.body, class_name=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_function(node, class_name)

    # -- E206: lock-registry completeness -----------------------------
    def _scan_undeclared_locks(self, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        self._check_lock_assign(sub, node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._check_lock_assign(node, None)

    def _check_lock_assign(self, node, class_name: Optional[str]) -> None:
        value = node.value
        if not isinstance(value, ast.Call):
            return
        ctor = dotted_name(value.func)
        if ctor is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if ctor in _RAW_LOCK_CALLS:
            for target in targets:
                owner = None
                if (class_name is not None and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    owner, declared = (class_name, target.attr), (
                        (class_name, target.attr) in LOCK_LEVELS)
                elif class_name is None and isinstance(target, ast.Name):
                    owner, declared = (None, target.id), target.id in MODULE_LOCK_LEVELS
                if owner is not None and not declared:
                    self.emit(
                        "E206", node,
                        f"{_fmt(owner)} = {ctor}() has no declared level — "
                        "every engine lock must appear in "
                        "repro.engine.lockorder and use OrderedLock",
                    )
        elif ctor.split(".")[-1] == "OrderedLock":
            args = value.args
            if (args and isinstance(args[0], ast.Constant)
                    and isinstance(args[0].value, str)
                    and _declared_level(args[0].value) is None):
                self.emit(
                    "E206", node,
                    f"OrderedLock({args[0].value!r}) is not registered in "
                    "repro.engine.lockorder — it will raise "
                    "UndeclaredLockError at construction",
                )


def analyze_concurrency(
    tree: ast.Module, filename: str, callgraph: Optional[CallGraph] = None
) -> List[LintFinding]:
    """Run the E2xx family over one parsed engine/serve/obs module.

    With *callgraph* (built over the whole file set, or at least this
    module), the interprocedural E204/E205 run too; without it only the
    per-function rules apply.
    """
    analyzer = _ConcurrencyAnalyzer(filename, callgraph)
    analyzer.run(tree)
    return analyzer.findings
