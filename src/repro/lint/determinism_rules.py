"""Determinism rules (D3xx) for the statistical core.

The paper's headline numbers are only meaningful if a screen replays
bit-identically from its seed.  These rules police the packages that
compute posteriors, choose pools and simulate fleets
(:func:`is_determinism_module`) for ambient-entropy leaks:

* D301 — unseeded random sources (``random.random()``, legacy
  ``np.random.*`` module calls, ``default_rng()`` with no seed);
* D302 — iterating a set expression (hash order feeds pool selection);
* D303 — wall-clock reads (``time.time``/``datetime.now``; durations
  for *reporting* belong in the metrics layer — ``perf_counter`` and
  ``monotonic`` are not flagged);
* D304 — ``id()`` used as a container key or sort key;
* D305 — builtin ``hash()`` (salted per process; use
  ``repro.engine.shuffle.stable_hash``).

Everything is syntactic and deliberately narrow: a miss is acceptable,
a false positive in the hot path of ``repro lint src`` is not.  D302
only fires on *literal* set expressions (displays, comprehensions,
``set(...)``/``frozenset(...)`` calls) used directly as iteration
targets and not wrapped in ``sorted()``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.lint.model import LintFinding, dotted_name
from repro.lint.rules import RULES

__all__ = ["analyze_determinism", "is_determinism_module"]

#: Packages whose results must replay bit-identically from a seed.
_DETERMINISM_PACKAGES = (
    "repro/sbgt/",
    "repro/surveil/",
    "repro/simulate/",
    "repro/bayes/",
    "repro/lattice/",
)


def is_determinism_module(filename: str) -> bool:
    path = filename.replace("\\", "/")
    return any(part in path for part in _DETERMINISM_PACKAGES)


#: Legacy global-state RNG leaves: ``random.X`` and ``np.random.X``.
_LEGACY_RNG_LEAVES = frozenset({
    "random", "rand", "randn", "randint", "random_integers", "random_sample",
    "choice", "shuffle", "permutation", "sample", "randrange", "uniform",
    "normal", "gauss", "standard_normal", "poisson", "binomial",
    "exponential", "beta", "gamma", "seed", "getrandbits",
})

#: Wall-clock reads (leaf of a ``time.``/``datetime.`` dotted name).
_WALL_CLOCK = frozenset({"time", "time_ns", "now", "utcnow", "today"})
_WALL_CLOCK_MODULES = ("time", "datetime", "date")


def _call_has_seed(node: ast.Call) -> bool:
    return bool(node.args) or any(kw.arg in ("seed", "entropy") for kw in node.keywords)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


class _DeterminismChecker(ast.NodeVisitor):
    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[LintFinding] = []

    def emit(self, rule: str, node: ast.AST, message: str,
             chain: Tuple[str, ...] = ()) -> None:
        self.findings.append(
            LintFinding(
                rule=rule,
                file=self.filename,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                chain=chain,
                hint=RULES[rule].hint,
            )
        )

    # -- D301 / D303 / D305 on calls ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            self._check_rng(name, node)
            self._check_clock(name, node)
            if name == "hash":
                self.emit(
                    "D305", node,
                    "builtin hash() is salted per process (PYTHONHASHSEED) — "
                    "derived seeds/partitions differ between interpreter runs",
                )
        self._check_id_sort_key(node)
        self.generic_visit(node)

    def _check_rng(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        leaf = parts[-1]
        if leaf == "default_rng" and not _call_has_seed(node):
            self.emit(
                "D301", node,
                f"{name}() without a seed draws fresh OS entropy — the "
                "stream cannot be replayed",
            )
        elif leaf == "Random" and len(parts) >= 2 and parts[-2] == "random" \
                and not _call_has_seed(node):
            self.emit(
                "D301", node,
                f"{name}() without a seed cannot be replayed",
            )
        elif leaf in _LEGACY_RNG_LEAVES and len(parts) >= 2 and parts[-2] == "random":
            self.emit(
                "D301", node,
                f"{name}() uses the global {'numpy ' if len(parts) > 2 else ''}"
                "random state — shared, unseeded, and order-dependent",
            )

    def _check_clock(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        if len(parts) < 2 or parts[-1] not in _WALL_CLOCK:
            return
        if parts[-2] not in _WALL_CLOCK_MODULES:
            return
        self.emit(
            "D303", node,
            f"{name}() reads the wall clock — results become "
            "run-time-dependent and stop replaying from the seed",
        )

    def _check_id_sort_key(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                    and kw.value.id == "id":
                self.emit(
                    "D304", node,
                    "sorting by id() orders by allocation address — "
                    "unstable across runs and processes",
                )

    # -- D302: set iteration ------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iter(node.iter)
        self.generic_visit(node)

    def _check_set_iter(self, target: ast.AST) -> None:
        if _is_set_expr(target):
            self.emit(
                "D302", target,
                "iterating a set — order depends on hash salt and insertion "
                "history, so downstream selections differ between runs",
            )

    # -- D304: id() as a container key --------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self.emit(
                "D304", node,
                "container keyed by id() — allocation addresses are "
                "unstable across runs, processes and pickling",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self.emit(
                    "D304", key,
                    "dict literal keyed by id() — allocation addresses are "
                    "unstable across runs, processes and pickling",
                )
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self._is_id_call(node.key):
            self.emit(
                "D304", node.key,
                "dict comprehension keyed by id() — allocation addresses "
                "are unstable across runs, processes and pickling",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_id_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "id")


def analyze_determinism(tree: ast.Module, filename: str) -> List[LintFinding]:
    """Run the D3xx family over one parsed statistical-core module."""
    checker = _DeterminismChecker(filename)
    checker.visit(tree)
    return checker.findings
