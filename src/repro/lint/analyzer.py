"""Driver for :mod:`repro.lint`: file walking, filtering, formatting.

``lint_paths`` is the single entry the CLI and CI use; ``analyze_source``
is the test-friendly core (string in, findings out).  Concurrency rules
(E2xx) only apply to ``repro/engine``, ``repro/serve`` and ``repro/obs``
modules — user code is free to lock however it likes — unless
``force_engine`` says otherwise (fixtures use it).  Determinism rules
(D3xx) likewise gate on the statistical-core packages
(:func:`repro.lint.determinism_rules.is_determinism_module`) or
``force_determinism``.

``lint_paths`` makes a whole-program prepass first: every engine module
in the file set is parsed into one :class:`~repro.lint.callgraph.CallGraph`
so the interprocedural E204/E205 see across file boundaries.  Per-file
analysis then runs serially or on a process pool (``jobs``), with an
optional mtime/size cache (``cache_path``) keyed on the analysis
configuration *and* the call-graph fingerprint — edit one engine file
and every engine file re-analyzes, as it must.

A file that cannot be read or parsed no longer aborts the run: it
becomes an ``X001`` finding and analysis continues (the CLI maps X001
to exit code 2).
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.callgraph import CallGraph, build_callgraph, build_callgraph_from_tree
from repro.lint.closure_rules import analyze_closures
from repro.lint.concurrency_rules import analyze_concurrency, is_engine_module
from repro.lint.determinism_rules import analyze_determinism, is_determinism_module
from repro.lint.model import LintFinding, Suppressions
from repro.lint.rules import RULES

__all__ = [
    "LintError",
    "analyze_source",
    "analyze_file",
    "iter_python_files",
    "lint_paths",
    "format_text",
    "format_json",
    "JSON_SCHEMA_VERSION",
]

#: Bumped only on breaking changes to the JSON output shape.
JSON_SCHEMA_VERSION = 1

#: Bumped when cached findings become incomparable across versions.
_CACHE_VERSION = 1


class LintError(Exception):
    """Usage/IO error: unknown rule id, unreadable path (CLI exit code 2)."""

    def __init__(self, message: str, line: int = 1) -> None:
        super().__init__(message)
        self.line = line


def _validate_rule_ids(ids: Optional[Iterable[str]], flag: str) -> Optional[frozenset]:
    if ids is None:
        return None
    normalized = frozenset(r.strip().upper() for r in ids if r.strip())
    unknown = sorted(normalized - set(RULES))
    if unknown:
        raise LintError(
            f"{flag}: unknown rule id(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULES))})"
        )
    return normalized


def analyze_source(
    source: str,
    filename: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
    force_determinism: bool = False,
    callgraph: Optional[CallGraph] = None,
) -> List[LintFinding]:
    """Lint one module's source text; returns surviving findings sorted.

    Without an explicit *callgraph*, engine modules get a single-module
    graph — E204/E205 still work within the file; ``lint_paths`` passes
    the whole-program one.
    """
    selected = _validate_rule_ids(select, "--select")
    ignored = _validate_rule_ids(ignore, "--ignore")
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise LintError(
            f"{filename}: cannot parse: {exc.msg} (line {exc.lineno})",
            line=exc.lineno or 1,
        ) from exc

    findings = analyze_closures(tree, filename)
    if force_engine or is_engine_module(filename):
        if callgraph is None:
            callgraph = build_callgraph_from_tree(tree, filename)
        findings.extend(analyze_concurrency(tree, filename, callgraph))
    if force_determinism or is_determinism_module(filename):
        findings.extend(analyze_determinism(tree, filename))

    suppressions = Suppressions(source)
    kept = []
    for f in findings:
        if selected is not None and f.rule not in selected:
            continue
        if ignored is not None and f.rule in ignored:
            continue
        if suppressions.matches(f.rule, (f.line, *f.anchor_lines)):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return kept


def analyze_file(
    path: Path,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
    callgraph: Optional[CallGraph] = None,
) -> List[LintFinding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return analyze_source(
        source,
        filename=str(path),
        select=select,
        ignore=ignore,
        force_engine=force_engine,
        callgraph=callgraph,
    )


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise LintError(f"no such file or directory: {raw}")
        for c in candidates:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


# ----------------------------------------------------------------------
# per-file analysis (worker-safe) + cache
# ----------------------------------------------------------------------
def _skip_finding(path_str: str, message: str, line: int) -> LintFinding:
    prefix = f"{path_str}: "
    if message.startswith(prefix):
        message = message[len(prefix):]
    return LintFinding(
        rule="X001",
        file=path_str,
        line=line,
        col=0,
        message=message,
        hint=RULES["X001"].hint,
    )


def _analyze_one(args) -> Tuple[str, List[LintFinding]]:
    """Worker entry: analyze one file's text, mapping errors to X001."""
    path_str, source, select, ignore, force_engine, callgraph = args
    try:
        return path_str, analyze_source(
            source,
            filename=path_str,
            select=select,
            ignore=ignore,
            force_engine=force_engine,
            callgraph=callgraph,
        )
    except LintError as exc:
        return path_str, [_skip_finding(path_str, str(exc), exc.line)]
    except Exception as exc:  # noqa: BLE001 - one bad file must not kill the run
        return path_str, [_skip_finding(
            path_str, f"internal analyzer error: {type(exc).__name__}: {exc}", 1
        )]


def _finding_to_cache(f: LintFinding) -> dict:
    d = f.to_dict()
    d["anchor_lines"] = list(f.anchor_lines)
    return d


def _finding_from_cache(d: dict) -> LintFinding:
    return LintFinding(
        rule=d["rule"],
        file=d["file"],
        line=d["line"],
        col=d["col"],
        message=d["message"],
        chain=tuple(d.get("chain", ())),
        hint=d.get("hint", ""),
        anchor_lines=tuple(d.get("anchor_lines", ())),
    )


def _config_digest(select, ignore, force_engine: bool, callgraph_fp: str) -> str:
    blob = json.dumps(
        {
            "cache_version": _CACHE_VERSION,
            "select": sorted(select) if select else None,
            "ignore": sorted(ignore) if ignore else None,
            "force_engine": force_engine,
            "callgraph": callgraph_fp,
            "rules": sorted(RULES),
        },
        sort_keys=True,
    ).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _load_cache(cache_path: Path, digest: str) -> Dict[str, dict]:
    try:
        payload = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if payload.get("digest") != digest:
        return {}
    entries = payload.get("entries")
    return entries if isinstance(entries, dict) else {}


def _save_cache(cache_path: Path, digest: str, entries: Dict[str, dict]) -> None:
    payload = {"version": _CACHE_VERSION, "digest": digest, "entries": entries}
    try:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text(json.dumps(payload), encoding="utf-8")
    except OSError:
        pass  # a cache that cannot be written is just a cold cache


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
    jobs: int = 1,
    cache_path: Optional[str] = None,
) -> Tuple[List[LintFinding], int]:
    """Lint every .py under ``paths``; returns (findings, files_checked).

    Unknown rule ids and missing paths still raise :class:`LintError`
    (usage errors); unreadable/unparsable *files* become X001 findings.
    """
    selected = _validate_rule_ids(select, "--select")
    ignored = _validate_rule_ids(ignore, "--ignore")
    files = iter_python_files(paths)

    # Read everything up front; collect engine sources for the callgraph.
    sources: Dict[str, str] = {}
    read_errors: Dict[str, str] = {}
    engine_trees: Dict[str, ast.Module] = {}
    for path in files:
        path_str = str(path)
        try:
            sources[path_str] = path.read_text(encoding="utf-8")
        except OSError as exc:
            read_errors[path_str] = f"cannot read: {exc}"
            continue
        if force_engine or is_engine_module(path_str):
            try:
                engine_trees[path_str] = ast.parse(sources[path_str], filename=path_str)
            except SyntaxError:
                pass  # becomes X001 in the per-file pass
    callgraph = build_callgraph(engine_trees) if engine_trees else None

    digest = _config_digest(selected, ignored, force_engine,
                            callgraph.fingerprint() if callgraph else "")
    cache_file = Path(cache_path) if cache_path else None
    cache = _load_cache(cache_file, digest) if cache_file else {}

    results: Dict[str, List[LintFinding]] = {}
    pending: List[Tuple] = []
    new_entries: Dict[str, dict] = {}
    for path in files:
        path_str = str(path)
        if path_str in read_errors:
            results[path_str] = [_skip_finding(path_str, read_errors[path_str], 1)]
            continue
        stat = None
        if cache_file is not None:
            try:
                stat = path.stat()
            except OSError:
                stat = None
        entry = cache.get(path_str)
        if (stat is not None and entry is not None
                and entry.get("mtime") == stat.st_mtime
                and entry.get("size") == stat.st_size):
            results[path_str] = [_finding_from_cache(d) for d in entry["findings"]]
            new_entries[path_str] = entry
            continue
        pending.append((path_str, sources[path_str], selected, ignored,
                        force_engine, callgraph, stat))

    def record(path_str: str, findings: List[LintFinding], stat) -> None:
        results[path_str] = findings
        if cache_file is not None and stat is not None:
            new_entries[path_str] = {
                "mtime": stat.st_mtime,
                "size": stat.st_size,
                "findings": [_finding_to_cache(f) for f in findings],
            }

    if jobs > 1 and len(pending) > 1:
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            for (args, (path_str, findings)) in zip(
                pending, pool.map(_analyze_one, (a[:6] for a in pending))
            ):
                record(path_str, findings, args[6])
    else:
        for args in pending:
            path_str, findings = _analyze_one(args[:6])
            record(path_str, findings, args[6])

    if cache_file is not None:
        _save_cache(cache_file, digest, new_entries)

    findings: List[LintFinding] = []
    for path in files:
        findings.extend(results[str(path)])
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings, len(files)


def format_text(findings: Sequence[LintFinding], files_checked: int) -> str:
    """Human-readable report: one block per finding, then a summary line."""
    lines: List[str] = []
    for f in findings:
        lines.append(f"{f.file}:{f.line}:{f.col}: {f.rule} [{RULES[f.rule].name}] {f.message}")
        for hop in f.chain:
            lines.append(f"    via {hop}")
        if f.hint:
            lines.append(f"    fix: {f.hint}")
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} finding(s) in {files_checked} {noun}.")
    else:
        lines.append(f"clean: 0 findings in {files_checked} {noun}.")
    return "\n".join(lines)


def format_json(findings: Sequence[LintFinding], files_checked: int) -> str:
    """Machine-readable report (schema locked by tests/lint)."""
    by_rule: dict = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files_checked": files_checked,
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2)
