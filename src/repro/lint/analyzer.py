"""Driver for :mod:`repro.lint`: file walking, filtering, formatting.

``lint_paths`` is the single entry the CLI and CI use; ``analyze_source``
is the test-friendly core (string in, findings out).  Concurrency rules
(E2xx) only apply to ``repro/engine`` and ``repro/serve`` modules —
user code is free to lock however it likes — unless ``force_engine``
says otherwise (fixtures use it).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.closure_rules import analyze_closures
from repro.lint.concurrency_rules import analyze_concurrency, is_engine_module
from repro.lint.model import LintFinding, Suppressions
from repro.lint.rules import RULES

__all__ = [
    "LintError",
    "analyze_source",
    "analyze_file",
    "iter_python_files",
    "lint_paths",
    "format_text",
    "format_json",
    "JSON_SCHEMA_VERSION",
]

#: Bumped only on breaking changes to the JSON output shape.
JSON_SCHEMA_VERSION = 1


class LintError(Exception):
    """Usage/IO error: unknown rule id, unreadable path (CLI exit code 2)."""


def _validate_rule_ids(ids: Optional[Iterable[str]], flag: str) -> Optional[frozenset]:
    if ids is None:
        return None
    normalized = frozenset(r.strip().upper() for r in ids if r.strip())
    unknown = sorted(normalized - set(RULES))
    if unknown:
        raise LintError(
            f"{flag}: unknown rule id(s) {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULES))})"
        )
    return normalized


def analyze_source(
    source: str,
    filename: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
) -> List[LintFinding]:
    """Lint one module's source text; returns surviving findings sorted."""
    selected = _validate_rule_ids(select, "--select")
    ignored = _validate_rule_ids(ignore, "--ignore")
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise LintError(f"{filename}: cannot parse: {exc.msg} (line {exc.lineno})") from exc

    findings = analyze_closures(tree, filename)
    if force_engine or is_engine_module(filename):
        findings.extend(analyze_concurrency(tree, filename))

    suppressions = Suppressions(source)
    kept = []
    for f in findings:
        if selected is not None and f.rule not in selected:
            continue
        if ignored is not None and f.rule in ignored:
            continue
        if suppressions.matches(f.rule, (f.line, *f.anchor_lines)):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return kept


def analyze_file(
    path: Path,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
) -> List[LintFinding]:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return analyze_source(
        source,
        filename=str(path),
        select=select,
        ignore=ignore,
        force_engine=force_engine,
    )


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: List[Path] = []
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise LintError(f"no such file or directory: {raw}")
        for c in candidates:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    force_engine: bool = False,
) -> Tuple[List[LintFinding], int]:
    """Lint every .py under ``paths``; returns (findings, files_checked)."""
    files = iter_python_files(paths)
    findings: List[LintFinding] = []
    for path in files:
        findings.extend(
            analyze_file(
                path, select=select, ignore=ignore, force_engine=force_engine
            )
        )
    return findings, len(files)


def format_text(findings: Sequence[LintFinding], files_checked: int) -> str:
    """Human-readable report: one block per finding, then a summary line."""
    lines: List[str] = []
    for f in findings:
        lines.append(f"{f.file}:{f.line}:{f.col}: {f.rule} [{RULES[f.rule].name}] {f.message}")
        for hop in f.chain:
            lines.append(f"    via {hop}")
        if f.hint:
            lines.append(f"    fix: {f.hint}")
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append("")
        lines.append(f"{len(findings)} finding(s) in {files_checked} {noun}.")
    else:
        lines.append(f"clean: 0 findings in {files_checked} {noun}.")
    return "\n".join(lines)


def format_json(findings: Sequence[LintFinding], files_checked: int) -> str:
    """Machine-readable report (schema locked by tests/lint)."""
    by_rule: dict = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "summary": {
            "files_checked": files_checked,
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    return json.dumps(payload, indent=2)
