"""repro.lint: static closure-safety and engine-concurrency analysis.

Two rule families over plain ``ast`` (no imports of analyzed code):

* ``C1xx`` closure safety — every function handed to an RDD transform or
  lattice kernel is checked for captures that cannot (or must not) cross
  the data plane: driver machinery, unpicklable handles, module-global
  writes, unseeded randomness, task-side accumulator reads.
* ``E2xx`` engine concurrency — ``repro.engine`` / ``repro.serve`` /
  ``repro.obs`` internals are checked against the declared lock order
  (shared with the runtime sanitizer in :mod:`repro.engine.lockorder`),
  for blocking calls under data-plane locks, and for events mutated
  after posting.  E204/E205 extend both checks across call boundaries
  via whole-program summaries (:mod:`repro.lint.callgraph`).
* ``D3xx`` determinism — the statistical core must replay bit-identically
  from its seed: no ambient RNG, wall clocks, set-order or id()/hash()
  dependence.

CLI: ``python -m repro lint [paths] [--format text|json|sarif]
[--select ..] [--ignore ..] [--explain RULE] [--jobs N] [--cache FILE]
[--baseline FILE | --write-baseline FILE]``.  Suppress a finding in
place with ``# repro: lint-ignore[RULE]``.
"""

from repro.engine.lockorder import LOCK_LEVELS, MODULE_LOCK_LEVELS
from repro.lint.analyzer import (
    JSON_SCHEMA_VERSION,
    LintError,
    analyze_file,
    analyze_source,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
)
from repro.lint.baseline import filter_new_findings, load_baseline, write_baseline
from repro.lint.bridge import CaptureIssue, capture_report, find_unpicklable
from repro.lint.callgraph import CallGraph, build_callgraph
from repro.lint.model import LintFinding, Suppressions
from repro.lint.rules import (
    CLOSURE_RULES,
    CONCURRENCY_RULES,
    DETERMINISM_RULES,
    RULES,
    Rule,
    format_explain,
)
from repro.lint.sarif import format_sarif

__all__ = [
    "JSON_SCHEMA_VERSION",
    "LintError",
    "LintFinding",
    "Suppressions",
    "Rule",
    "RULES",
    "CLOSURE_RULES",
    "CONCURRENCY_RULES",
    "DETERMINISM_RULES",
    "LOCK_LEVELS",
    "MODULE_LOCK_LEVELS",
    "CallGraph",
    "CaptureIssue",
    "analyze_file",
    "analyze_source",
    "build_callgraph",
    "capture_report",
    "filter_new_findings",
    "find_unpicklable",
    "format_explain",
    "format_json",
    "format_sarif",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "write_baseline",
]
