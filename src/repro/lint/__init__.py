"""repro.lint: static closure-safety and engine-concurrency analysis.

Two rule families over plain ``ast`` (no imports of analyzed code):

* ``C1xx`` closure safety — every function handed to an RDD transform or
  lattice kernel is checked for captures that cannot (or must not) cross
  the data plane: driver machinery, unpicklable handles, module-global
  writes, unseeded randomness, task-side accumulator reads.
* ``E2xx`` engine concurrency — ``repro.engine`` / ``repro.serve``
  internals are checked against the declared lock order, for blocking
  calls under data-plane locks, and for events mutated after posting.

CLI: ``python -m repro lint [paths] [--format text|json] [--select ..]
[--ignore ..] [--explain RULE]``.  Suppress a finding in place with
``# repro: lint-ignore[RULE]``.
"""

from repro.lint.analyzer import (
    JSON_SCHEMA_VERSION,
    LintError,
    analyze_file,
    analyze_source,
    format_json,
    format_text,
    iter_python_files,
    lint_paths,
)
from repro.lint.bridge import CaptureIssue, capture_report, find_unpicklable
from repro.lint.concurrency_rules import LOCK_LEVELS, MODULE_LOCK_LEVELS
from repro.lint.model import LintFinding, Suppressions
from repro.lint.rules import CLOSURE_RULES, CONCURRENCY_RULES, RULES, Rule, format_explain

__all__ = [
    "JSON_SCHEMA_VERSION",
    "LintError",
    "LintFinding",
    "Suppressions",
    "Rule",
    "RULES",
    "CLOSURE_RULES",
    "CONCURRENCY_RULES",
    "LOCK_LEVELS",
    "MODULE_LOCK_LEVELS",
    "CaptureIssue",
    "analyze_file",
    "analyze_source",
    "capture_report",
    "find_unpicklable",
    "format_explain",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
]
