"""Closure-safety rules (C1xx): static ClosureCleaner for the data plane.

The walker tracks lexical scopes and a syntactic type environment, finds
every callable argument of an RDD-transform / lattice-kernel call, and
analyzes that function as *task code*: captured names are resolved
against the enclosing scopes and checked against the driver-only and
unpicklable tag sets; the task body itself is scanned for global
writes, unseeded randomness and accumulator reads.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.model import (
    DRIVER_TAGS,
    TRANSFORM_METHODS,
    UNPICKLABLE_TAGS,
    LintFinding,
    ScopeInfo,
    dotted_name,
    free_names,
    infer_annotation_tag,
    infer_type_tag,
)
from repro.lint.rules import RULES

__all__ = ["analyze_closures"]

#: ``random.<fn>`` calls that are deterministic and safe in task code.
_SAFE_RANDOM_ATTRS = frozenset({"Random", "SystemRandom", "seed", "getstate", "setstate"})
#: ``np.random.<fn>`` that construct seedable generators (fine if seeded).
_SAFE_NP_RANDOM_ATTRS = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64",
                                   "Philox", "SFC64", "MT19937", "RandomState"})
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})
#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
})


def _fn_label(node: ast.AST) -> str:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return f"function {node.name!r}"
    return "lambda"


class _TaskBodyScanner(ast.NodeVisitor):
    """Scan one task function's body for C103/C104/C105 defects.

    ``free`` is the set of names captured from enclosing scopes;
    ``tag_of`` resolves a name to its inferred type tag;
    ``module_level`` says whether a free name is bound at module scope.
    """

    def __init__(
        self,
        analyzer: "_ClosureAnalyzer",
        free: Set[str],
        tag_of,
        module_level,
    ) -> None:
        self.analyzer = analyzer
        self.free = free
        self.tag_of = tag_of
        self.module_level = module_level

    # -- C103: writes to module globals -------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.analyzer.emit(
                "C103",
                node,
                f"task code declares `global {name}` — each fork mutates its own "
                "copy, the driver never sees the write",
                chain=(f"global {name!r}",),
            )

    def _flag_store_target(self, target: ast.AST) -> None:
        # CACHE[k] = v / STATE.field = v where the base is a module global.
        # A bare-Name store is either a local (hoisted, not free) or already
        # covered by its `global` declaration — only flag stores *through*.
        if isinstance(target, ast.Name):
            return
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.free and self.module_level(base.id):
            tag = self.tag_of(base.id)
            if tag in ("Accumulator", "Broadcast"):
                return
            self.analyzer.emit(
                "C103",
                target,
                f"task code writes through module global {base.id!r} — "
                "invisible to the driver in process mode, racy in thread mode",
                chain=(f"capture {base.id!r} (module global)",),
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_store_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_store_target(node.target)
        self.generic_visit(node)

    # -- C104 / C105 / mutator-call C103 ------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            self._check_call_name(name, node)
        self.generic_visit(node)

    def _check_call_name(self, name: str, node: ast.Call) -> None:
        parts = name.split(".")
        root, leaf = parts[0], parts[-1]
        # random.random(), random.shuffle(), ...
        if root == "random" and len(parts) == 2 and leaf not in _SAFE_RANDOM_ATTRS:
            self.analyzer.emit(
                "C104", node,
                f"unseeded `{name}()` in task code — output differs per run, "
                "retry and executor mode",
            )
            return
        # np.random.<legacy global RNG>
        if len(parts) >= 3 and parts[-2] == "random" and leaf not in _SAFE_NP_RANDOM_ATTRS:
            self.analyzer.emit(
                "C104", node,
                f"`{name}()` uses the process-global NumPy RNG in task code — "
                "draws depend on scheduling and fork timing",
            )
            return
        # default_rng() with no seed argument
        if leaf == "default_rng" and not node.args and not node.keywords:
            self.analyzer.emit(
                "C104", node,
                "`default_rng()` without a seed in task code — entropy differs "
                "per worker and per retry",
            )
            return
        if name in _CLOCK_CALLS:
            self.analyzer.emit(
                "C104", node,
                f"`{name}()` in task code — wall-clock reads make task output "
                "scheduling-dependent",
            )
            return
        # C103 via mutator method on a captured module global
        if (
            len(parts) == 2
            and leaf in _MUTATOR_METHODS
            and root in self.free
            and self.module_level(root)
            and self.tag_of(root) not in ("Accumulator", "Broadcast")
        ):
            self.analyzer.emit(
                "C103", node,
                f"task code mutates module global {root!r} via .{leaf}() — "
                "invisible to the driver in process mode, racy in thread mode",
                chain=(f"capture {root!r} (module global)",),
            )

    # -- C105: accumulator .value reads -------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr == "value"
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in self.free
            and self.tag_of(node.value.id) == "Accumulator"
        ):
            self.analyzer.emit(
                "C105", node,
                f"task code reads accumulator {node.value.id!r}.value — tasks "
                "see a zeroed stub (processes) or a racy partial (threads)",
                chain=(f"capture {node.value.id!r} (Accumulator)",),
            )
        self.generic_visit(node)

    # Nested defs/lambdas inside the task body are still task code: keep
    # walking (free-name analysis already crossed them).


class _ClosureAnalyzer(ast.NodeVisitor):
    """Module walker: scope/type tracking + transform-call detection."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.scopes: List[ScopeInfo] = []
        self.findings: List[LintFinding] = []
        self._analyzed: Set[Tuple[int, int]] = set()  # (fn lineno, col) de-dup
        self._current_transform: Optional[str] = None

    # -- finding plumbing ---------------------------------------------
    def emit(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        chain: Tuple[str, ...] = (),
        anchor_lines: Tuple[int, ...] = (),
    ) -> None:
        prefix: Tuple[str, ...] = ()
        if self._current_transform:
            prefix = (self._current_transform,)
        self.findings.append(
            LintFinding(
                rule=rule,
                file=self.filename,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
                chain=prefix + chain,
                hint=RULES[rule].hint,
                anchor_lines=anchor_lines,
            )
        )

    # -- scope bookkeeping --------------------------------------------
    def _bind(self, name: str, tag: Optional[str], line: int) -> None:
        scope = self.scopes[-1]
        scope.bound.add(name)
        if tag:
            scope.tags[name] = (tag, line)
        else:
            scope.tags.pop(name, None)

    def _lookup_tag(self, name: str) -> Optional[Tuple[str, int]]:
        for scope in reversed(self.scopes):
            if name in scope.tags:
                return scope.tags[name]
            if name in scope.bound:
                return None  # bound, but to nothing we track
        return None

    def _is_module_level(self, name: str) -> bool:
        for scope in reversed(self.scopes):
            if name in scope.bound:
                return scope.is_module
        return False

    def _lookup_function(self, name: str) -> Optional[ast.AST]:
        for scope in reversed(self.scopes):
            if name in scope.functions:
                return scope.functions[name]
            if name in scope.bound:
                return None
        return None

    # -- module / function traversal ----------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self.scopes.append(ScopeInfo(node, is_module=True))
        self.generic_visit(node)
        self.scopes.pop()

    def _enter_function(self, node) -> None:
        scope = ScopeInfo(node)
        args = node.args
        for a in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            scope.bound.add(a.arg)
            tag = infer_annotation_tag(a.annotation)
            if tag:
                scope.tags[a.arg] = (tag, a.lineno)
        self.scopes.append(scope)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_funcdef(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_funcdef(node)

    def _handle_funcdef(self, node) -> None:
        scope = self.scopes[-1]
        scope.bound.add(node.name)
        scope.functions[node.name] = node
        ret_tag = infer_annotation_tag(node.returns)
        if ret_tag:
            scope.tags.setdefault(node.name, (f"callable->{ret_tag}", node.lineno))
        self._enter_function(node)
        for stmt in node.body:
            self.visit(stmt)
        self.scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scopes[-1].bound.add(node.name)
        self.scopes.append(ScopeInfo(node))
        self.generic_visit(node)
        self.scopes.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_function(node)
        self.visit(node.body)
        self.scopes.pop()

    # -- binding forms ------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        tag = infer_type_tag(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if isinstance(node.value, ast.Lambda):
                    self.scopes[-1].functions[target.id] = node.value
                self._bind(target.id, tag, target.lineno)
            elif isinstance(target, (ast.Tuple, ast.List)):
                elt_values: List[Optional[ast.AST]] = [None] * len(target.elts)
                if isinstance(node.value, (ast.Tuple, ast.List)) and len(
                    node.value.elts
                ) == len(target.elts):
                    elt_values = list(node.value.elts)
                for elt, value in zip(target.elts, elt_values):
                    if isinstance(elt, ast.Name):
                        self._bind(
                            elt.id,
                            infer_type_tag(value) if value is not None else None,
                            elt.lineno,
                        )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self.visit(node.value)
        if isinstance(node.target, ast.Name):
            tag = infer_type_tag(node.value) if node.value is not None else None
            tag = tag or infer_annotation_tag(node.annotation)
            self._bind(node.target.id, tag, node.target.lineno)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            self.visit(item.context_expr)
            if isinstance(item.optional_vars, ast.Name):
                self._bind(
                    item.optional_vars.id,
                    infer_type_tag(item.context_expr),
                    item.optional_vars.lineno,
                )
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncWith = visit_With

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        for name_node in ast.walk(node.target):
            if isinstance(name_node, ast.Name):
                self.scopes[-1].bound.add(name_node.id)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.scopes[-1].bound.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.scopes[-1].bound.add(alias.asname or alias.name)

    # -- the heart: transform calls -----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in TRANSFORM_METHODS:
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            fn_node = self._resolve_callable(arg)
            if fn_node is not None:
                self._analyze_task_function(fn_node, node)

    def _resolve_callable(self, arg: ast.AST) -> Optional[ast.AST]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            return self._lookup_function(arg.id)
        return None

    def _analyze_task_function(self, fn_node: ast.AST, call: ast.Call) -> None:
        key = (getattr(fn_node, "lineno", 0), getattr(fn_node, "col_offset", 0))
        transform = (
            f"{call.func.attr} @ line {call.lineno}"  # type: ignore[union-attr]
        )
        first_analysis = key not in self._analyzed
        self._analyzed.add(key)
        self._current_transform = f"{transform} -> {_fn_label(fn_node)}"
        try:
            free = free_names(fn_node)
            if first_analysis:
                default_names = self._default_name_ids(fn_node)
                # Let a lint-ignore on the def line (or any decorator line,
                # so decorated task functions stay suppressible) cover
                # capture findings anchored deep in the body.
                fn_anchor = [ln for ln in (getattr(fn_node, "lineno", 0),) if ln]
                fn_anchor.extend(
                    d.lineno for d in getattr(fn_node, "decorator_list", ())
                )
                self._check_captures(
                    fn_node, free, skip=default_names,
                    anchor_lines=tuple(fn_anchor),
                )
                scanner = _TaskBodyScanner(
                    self,
                    set(free),
                    lambda n: (self._lookup_tag(n) or (None, 0))[0],
                    self._is_module_level,
                )
                body = fn_node.body if isinstance(fn_node.body, list) else [fn_node.body]
                for stmt in body:
                    scanner.visit(stmt)
                self._check_defaults(fn_node)
        finally:
            self._current_transform = None

    @staticmethod
    def _default_name_ids(fn_node: ast.AST) -> Set[str]:
        """Names used as default values (reported by _check_defaults instead)."""
        args = getattr(fn_node, "args", None)
        if args is None:
            return set()
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        return {d.id for d in defaults if isinstance(d, ast.Name)}

    def _check_captures(
        self,
        fn_node: ast.AST,
        free: Dict[str, int],
        skip: Optional[Set[str]] = None,
        anchor_lines: Tuple[int, ...] = (),
    ) -> None:
        for name, use_line in sorted(free.items(), key=lambda kv: kv[1]):
            if skip and name in skip:
                continue
            resolved = self._lookup_tag(name)
            if resolved is None:
                continue
            tag, bind_line = resolved
            where = "module global" if self._is_module_level(name) else "enclosing scope"
            chain = (f"capture {name!r} ({tag}, bound at line {bind_line}, {where})",)
            node = _Loc(use_line, 0)
            if tag in DRIVER_TAGS:
                self.emit(
                    "C101", node,
                    f"captures {name!r}, a driver-only {tag} — workers get a "
                    "stopped/inert stub, so any use fails mid-job",
                    chain=chain,
                    anchor_lines=anchor_lines,
                )
            elif tag in UNPICKLABLE_TAGS:
                self.emit(
                    "C102", node,
                    f"captures {name!r} ({tag}) — unpicklable, the job dies in "
                    "closure.serialize under the processes executor",
                    chain=chain,
                    anchor_lines=anchor_lines,
                )

    def _check_defaults(self, fn_node: ast.AST) -> None:
        """Driver objects smuggled through default argument values."""
        args = getattr(fn_node, "args", None)
        if args is None:
            return
        pos_params = args.posonlyargs + args.args
        defaults = args.defaults
        pairs = list(zip(pos_params[len(pos_params) - len(defaults):], defaults))
        pairs += [
            (p, d) for p, d in zip(args.kwonlyargs, args.kw_defaults) if d is not None
        ]
        for param, default in pairs:
            if not isinstance(default, ast.Name):
                continue
            resolved = self._lookup_tag(default.id)
            if resolved is None:
                continue
            tag, bind_line = resolved
            chain = (
                f"default of parameter {param.arg!r}",
                f"capture {default.id!r} ({tag}, bound at line {bind_line})",
            )
            if tag in DRIVER_TAGS:
                self.emit(
                    "C101", default,
                    f"default argument {param.arg}={default.id} smuggles a "
                    f"driver-only {tag} into task code",
                    chain=chain,
                )
            elif tag in UNPICKLABLE_TAGS:
                self.emit(
                    "C102", default,
                    f"default argument {param.arg}={default.id} captures an "
                    f"unpicklable {tag}",
                    chain=chain,
                )


class _Loc:
    """Minimal lineno/col carrier for synthesized finding locations."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def analyze_closures(tree: ast.Module, filename: str) -> List[LintFinding]:
    """Run the C1xx family over one parsed module."""
    analyzer = _ClosureAnalyzer(filename)
    analyzer.visit(tree)
    return analyzer.findings
