"""Posterior calibration: do the marginals mean what they say?

A Bayesian screen reports each individual's infection probability.  If
those numbers are *calibrated*, then among all individuals ever assigned
~20 % they should be infected ~20 % of the time.  This module bins
(final marginal, truth) pairs across many simulated screens into a
reliability table — the standard posterior-quality diagnostic, and the
check that would catch a response-model mismatch (e.g. assuming no
dilution when the assay dilutes) long before accuracy collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.metrics.reporting import format_table

__all__ = ["CalibrationBin", "CalibrationReport", "calibration_report"]


@dataclass(frozen=True)
class CalibrationBin:
    """One probability band of the reliability table."""

    lo: float
    hi: float
    count: int
    mean_predicted: float
    empirical_rate: float

    @property
    def gap(self) -> float:
        """Empirical minus predicted — signed miscalibration."""
        return self.empirical_rate - self.mean_predicted


@dataclass
class CalibrationReport:
    """Reliability table plus the summary scores."""

    bins: List[CalibrationBin]
    brier_score: float
    expected_calibration_error: float

    def to_table(self) -> str:
        rows = [
            [
                f"[{b.lo:.2f}, {b.hi:.2f})",
                b.count,
                b.mean_predicted,
                b.empirical_rate,
                f"{b.gap:+.3f}",
            ]
            for b in self.bins
            if b.count
        ]
        return format_table(
            ["band", "n", "predicted", "empirical", "gap"],
            rows,
            title=(
                f"Calibration (Brier {self.brier_score:.4f}, "
                f"ECE {self.expected_calibration_error:.4f})"
            ),
        )


def calibration_report(
    predictions: Sequence[float],
    outcomes: Sequence[bool],
    num_bins: int = 10,
) -> CalibrationReport:
    """Build a reliability table from (marginal, truly-infected) pairs.

    ``expected_calibration_error`` is the count-weighted mean |gap|;
    ``brier_score`` is the mean squared error of the probabilities.
    """
    p = np.asarray(predictions, dtype=np.float64)
    y = np.asarray(outcomes, dtype=np.float64)
    if p.shape != y.shape or p.ndim != 1:
        raise ValueError("predictions and outcomes must be equal-length 1-D")
    if p.size == 0:
        raise ValueError("no predictions supplied")
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("predictions must be probabilities")
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    idx = np.clip(np.searchsorted(edges, p, side="right") - 1, 0, num_bins - 1)
    bins: List[CalibrationBin] = []
    ece = 0.0
    for b in range(num_bins):
        mask = idx == b
        count = int(mask.sum())
        if count:
            mean_pred = float(p[mask].mean())
            rate = float(y[mask].mean())
            ece += count * abs(rate - mean_pred)
        else:
            mean_pred = float((edges[b] + edges[b + 1]) / 2)
            rate = float("nan")
        bins.append(
            CalibrationBin(
                lo=float(edges[b]),
                hi=float(edges[b + 1]),
                count=count,
                mean_predicted=mean_pred,
                empirical_rate=rate,
            )
        )
    return CalibrationReport(
        bins=bins,
        brier_score=float(np.mean((p - y) ** 2)),
        expected_calibration_error=float(ece / p.size),
    )


def collect_screen_calibration(
    screens: Sequence,
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract (final marginal, truth) pairs from finished ScreenResults."""
    preds: List[float] = []
    truths: List[bool] = []
    for s in screens:
        truth_mask = int(s.cohort.truth_mask)
        for i, m in enumerate(s.report.marginals):
            preds.append(float(m))
            truths.append(bool((truth_mask >> i) & 1))
    return np.asarray(preds), np.asarray(truths)
