"""Plain-text tables for the benchmark harness.

The benches print the same row/series structure the paper's tables carry;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["format_table", "format_markdown_table", "format_csv", "format_speedup_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render a GitHub-flavored Markdown table (EXPERIMENTS.md format)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines: List[str] = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in cells:
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render rows as CSV (quoting only where needed)."""
    import csv
    import io

    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_fmt(v) for v in row])
    return buf.getvalue().rstrip("\n")


def format_speedup_table(
    labels: Sequence[Any],
    baseline_s: Sequence[float],
    system_s: Sequence[float],
    label_header: str = "n",
    baseline_header: str = "baseline (s)",
    system_header: str = "sbgt (s)",
    title: str = "",
) -> str:
    """Two timing columns plus the derived speedup column."""
    if not (len(labels) == len(baseline_s) == len(system_s)):
        raise ValueError("column lengths differ")
    rows = []
    for lab, b, s in zip(labels, baseline_s, system_s):
        speedup = b / s if s > 0 else float("inf")
        rows.append([lab, b, s, f"{speedup:.1f}x"])
    return format_table(
        [label_header, baseline_header, system_header, "speedup"], rows, title=title
    )
