"""Information-theoretic bounds on group-testing cost.

Every binary test outcome carries at most one bit, so classifying a
cohort whose infection state has Shannon entropy ``H`` bits needs at
least ``H`` expected tests (the counting/Shannon lower bound, valid for
*any* adaptive noiseless strategy).  The experiments use this floor to
report how close the Bayesian Halving Algorithm gets to optimal — a
stronger statement than beating Dorfman.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.lattice.ops import entropy as space_entropy
from repro.lattice.states import StateSpace

__all__ = [
    "prior_entropy_bits",
    "min_expected_tests",
    "halving_optimality_ratio",
]

_LN2 = math.log(2.0)


def prior_entropy_bits(prior: Union[PriorSpec, StateSpace]) -> float:
    """Shannon entropy (bits) of the cohort's infection state.

    For a :class:`PriorSpec` the independence structure gives the closed
    form ``Σ h(p_i)`` without building the lattice; a raw
    :class:`StateSpace` (e.g. a household prior) is evaluated directly.
    """
    if isinstance(prior, PriorSpec):
        p = np.clip(prior.risks, 1e-15, 1 - 1e-15)
        h_nats = -(p * np.log(p) + (1 - p) * np.log1p(-p)).sum()
        return float(h_nats / _LN2)
    if isinstance(prior, StateSpace):
        return float(space_entropy(prior) / _LN2)
    raise TypeError("prior must be a PriorSpec or StateSpace")


def min_expected_tests(prior: Union[PriorSpec, StateSpace]) -> float:
    """Shannon floor: expected binary tests any noiseless strategy needs."""
    return prior_entropy_bits(prior)


def halving_optimality_ratio(
    prior: Union[PriorSpec, StateSpace], measured_tests: float
) -> float:
    """measured / bound — 1.0 is information-theoretic optimality.

    Only meaningful for noiseless binary assays; noise and dilution push
    the true optimum above the Shannon floor, so ratios there overstate
    the gap.
    """
    bound = min_expected_tests(prior)
    if bound <= 0.0:
        raise ValueError("prior carries no uncertainty; bound is zero")
    if measured_tests < 0:
        raise ValueError("measured_tests must be non-negative")
    return float(measured_tests) / bound
