"""Classification quality against simulated ground truth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bayes.posterior import Classification, ClassificationReport

__all__ = ["ConfusionCounts", "evaluate_classification"]


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion matrix of a screen, with undetermined tracked separately.

    Sensitivity/specificity are computed over *determined* individuals;
    ``accuracy`` counts undetermined individuals as errors (the screen
    failed to resolve them), which is the conservative convention used
    in the experiment tables.
    """

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int
    undetermined: int

    @property
    def n_items(self) -> int:
        return (
            self.true_positive
            + self.false_positive
            + self.true_negative
            + self.false_negative
            + self.undetermined
        )

    @property
    def sensitivity(self) -> float:
        denom = self.true_positive + self.false_negative
        return self.true_positive / denom if denom else 1.0

    @property
    def specificity(self) -> float:
        denom = self.true_negative + self.false_positive
        return self.true_negative / denom if denom else 1.0

    @property
    def accuracy(self) -> float:
        if self.n_items == 0:
            return 1.0
        return (self.true_positive + self.true_negative) / self.n_items

    @property
    def determined_fraction(self) -> float:
        if self.n_items == 0:
            return 1.0
        return 1.0 - self.undetermined / self.n_items


def evaluate_classification(report: ClassificationReport, truth_mask: int) -> ConfusionCounts:
    """Score a classification report against the hidden truth mask."""
    tp = fp = tn = fn = und = 0
    for i, status in enumerate(report.statuses):
        truly_positive = bool((int(truth_mask) >> i) & 1)
        if status is Classification.UNDETERMINED:
            und += 1
        elif status is Classification.POSITIVE:
            if truly_positive:
                tp += 1
            else:
                fp += 1
        else:
            if truly_positive:
                fn += 1
            else:
                tn += 1
    return ConfusionCounts(tp, fp, tn, fn, und)
