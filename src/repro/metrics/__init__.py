"""Evaluation metrics: classification quality and testing efficiency."""

from repro.metrics.classification import ConfusionCounts, evaluate_classification
from repro.metrics.efficiency import EfficiencyReport, efficiency_report
from repro.metrics.reporting import format_table, format_speedup_table
from repro.metrics.bounds import (
    halving_optimality_ratio,
    min_expected_tests,
    prior_entropy_bits,
)
from repro.metrics.calibration import (
    CalibrationReport,
    calibration_report,
    collect_screen_calibration,
)

__all__ = [
    "ConfusionCounts",
    "evaluate_classification",
    "EfficiencyReport",
    "efficiency_report",
    "format_table",
    "format_speedup_table",
    "prior_entropy_bits",
    "min_expected_tests",
    "halving_optimality_ratio",
    "CalibrationReport",
    "calibration_report",
    "collect_screen_calibration",
]
