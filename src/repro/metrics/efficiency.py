"""Testing-efficiency metrics: the group-testing savings story.

The Biostatistics'22 headline is tests-per-individual well below one at
low prevalence; the trade-off is more sequential stages.  This module
turns a finished screen into those numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EfficiencyReport", "efficiency_report"]


@dataclass(frozen=True)
class EfficiencyReport:
    """Consumption summary of one screen."""

    n_items: int
    num_tests: int
    num_stages: int
    num_samples_used: int

    @property
    def tests_per_individual(self) -> float:
        return self.num_tests / self.n_items if self.n_items else 0.0

    @property
    def savings_vs_individual(self) -> float:
        """Fraction of tests saved relative to one-test-per-person.

        Negative when the screen spent *more* tests than individual
        testing (can happen at high prevalence — the regime where the
        calculator recommends not pooling).
        """
        return 1.0 - self.tests_per_individual

    @property
    def samples_per_individual(self) -> float:
        return self.num_samples_used / self.n_items if self.n_items else 0.0


def efficiency_report(
    n_items: int, num_tests: int, num_stages: int, num_samples_used: int
) -> EfficiencyReport:
    """Validate and assemble an :class:`EfficiencyReport`."""
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if min(num_tests, num_stages, num_samples_used) < 0:
        raise ValueError("counters must be non-negative")
    return EfficiencyReport(n_items, num_tests, num_stages, num_samples_used)
