"""The always-on flight recorder: a bounded black box for the engine.

Every :class:`~repro.engine.Context` registers a :class:`FlightRecorder`
on its event bus by default (``EngineConfig.flight_recorder``).  It
keeps the last N events in a ring buffer plus a small log of slow
operations, cheap enough to leave on in production: recording an event
is a couple of ``deque.append`` calls, no locking (the bus serializes
delivery; readers tolerate concurrent appends).

Three consumers read it back:

* failure post-mortems — the scheduler attaches :meth:`tail` to any
  exception escaping ``run_job`` (``exc.post_mortem``);
* the serving layer's ``/debug/events``, ``/debug/traces/{id}`` and
  ``/debug/slow`` endpoints;
* the Chrome trace exporter (:func:`repro.obs.chrome.chrome_trace`),
  which renders :meth:`events` into a ``chrome://tracing`` timeline.

All public accessors return plain event *dicts* (see
:meth:`~repro.engine.listener.EngineEvent.to_dict`) so the results are
JSON-ready and safe to hold after the recorder rolls over.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any, Dict, List, Optional

from repro.engine.listener import EngineEvent, EngineListener

__all__ = ["FlightRecorder"]


class FlightRecorder(EngineListener):
    """Lock-free bounded recording of the event stream.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest event is dropped when full.
    slow_threshold_s:
        Events carrying a ``wall_s`` duration above this are copied
        into a separate slow-op log (itself bounded) so a burst of fast
        events cannot roll slow outliers out of reach.
    slow_capacity:
        Size of the slow-op log.
    """

    def __init__(
        self,
        capacity: int = 4096,
        slow_threshold_s: float = 0.1,
        slow_capacity: int = 256,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")
        self.capacity = int(capacity)
        self.slow_threshold_s = float(slow_threshold_s)
        self._ring: deque = deque(maxlen=self.capacity)
        self._slow: deque = deque(maxlen=int(slow_capacity))
        self._seq = 0  # monotone id of the next event (== total seen)
        self._cleared = 0  # events discarded by clear(), not by eviction

    # ------------------------------------------------------------------
    # recording (bus-facing)
    # ------------------------------------------------------------------
    def on_event(self, event: EngineEvent) -> None:
        """Record *event*; O(1) and lock-free, called for every bus post.

        No lock on purpose: the :class:`~repro.engine.listener.EventBus`
        already serializes delivery, ``deque.append`` with ``maxlen`` is
        itself thread-safe, and this runs inside every observed job's
        hot path.  Readers cope with concurrent appends (see
        :meth:`_pairs`).
        """
        seq = self._seq
        self._seq = seq + 1
        self._ring.append((seq, event))
        if getattr(event, "wall_s", 0.0) > self.slow_threshold_s:
            self._slow.append((seq, event))

    # ------------------------------------------------------------------
    # readback
    # ------------------------------------------------------------------
    @staticmethod
    def _to_dict(seq: int, event: EngineEvent) -> Dict[str, Any]:
        out = event.to_dict()
        out["seq"] = seq
        return out

    @staticmethod
    def _snapshot_deque(ring: deque) -> list:
        """Copy a deque that another thread may be appending to."""
        while True:
            try:
                return list(ring)
            except RuntimeError:  # mutated during iteration; rare — retry
                continue

    def events(
        self,
        kind: Optional[str] = None,
        trace_id: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Recorded events oldest-first, optionally filtered.

        ``kind`` filters on the event's kind string (``"task_end"``),
        ``trace_id`` on the stamped originating trace, and ``limit``
        keeps only the *newest* matches.
        """
        pairs = self._snapshot_deque(self._ring)
        out = [self._to_dict(s, e) for s, e in pairs]
        if kind is not None:
            out = [d for d in out if d["kind"] == kind]
        if trace_id is not None:
            out = [d for d in out if d["trace_id"] == trace_id]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def tail(self, n: int = 64) -> List[Dict[str, Any]]:
        """The newest *n* events, oldest-first (the post-mortem window)."""
        return self.events(limit=n)

    def trace(self, trace_id: str) -> List[Dict[str, Any]]:
        """Every retained event stamped with *trace_id*, oldest-first."""
        return self.events(trace_id=trace_id)

    def trace_summary(self, trace_id: str) -> Dict[str, Any]:
        """Aggregate view of one trace: span, event kinds, phases."""
        events = self.trace(trace_id)
        kinds = Counter(d["kind"] for d in events)
        phases = sorted({d["phase"] for d in events if d["phase"]})
        walls = [d["wall"] for d in events]
        return {
            "trace_id": trace_id,
            "events": len(events),
            "kinds": dict(kinds),
            "phases": phases,
            "first_wall": min(walls) if walls else None,
            "last_wall": max(walls) if walls else None,
            "wall_span_s": (max(walls) - min(walls)) if walls else 0.0,
        }

    def traces(self) -> List[str]:
        """Distinct trace ids currently retained, oldest-first."""
        seen: Dict[str, None] = {}
        for d in self.events():
            if d["trace_id"]:
                seen.setdefault(d["trace_id"], None)
        return list(seen)

    def slow(self) -> List[Dict[str, Any]]:
        """Slow-op log: events with ``wall_s`` above the threshold."""
        pairs = self._snapshot_deque(self._slow)
        return [self._to_dict(s, e) for s, e in pairs]

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Counters describing the recorder itself (for ``/debug``)."""
        total, recorded = self._seq, len(self._ring)
        return {
            "capacity": self.capacity,
            "recorded": recorded,
            "total_seen": total,
            "dropped": max(0, total - self._cleared - recorded),
            "slow_threshold_s": self.slow_threshold_s,
            "slow_recorded": len(self._slow),
        }

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        """Forget everything recorded (``total_seen`` survives)."""
        self._cleared += len(self._ring)
        self._ring.clear()
        self._slow.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"FlightRecorder(recorded={snap['recorded']}/{snap['capacity']}, "
            f"total_seen={snap['total_seen']}, slow={snap['slow_recorded']})"
        )
