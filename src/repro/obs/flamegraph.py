"""Self-contained flamegraph HTML from collapsed-stack samples.

The repo's hard constraint is *no third-party runtime dependencies*, so
this renders the folded-stack trie straight into one HTML file — inline
CSS/JS, absolutely positioned divs, click-to-zoom — instead of shelling
out to ``flamegraph.pl`` or speedscope.  Open the file in any browser;
hover shows ``frame — samples (percent)``, clicking a frame re-roots
the view on it.

Input is the profiler's folded mapping (``"a;b;c" -> count``, root
first), the same data :meth:`~repro.obs.sampler.Sampler.dump_collapsed`
writes, so any external flamegraph tool works on the ``.collapsed``
file while this module covers the zero-dependency path.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List

__all__ = ["flamegraph_html", "folded_lines"]


def folded_lines(folded: Dict[str, int]) -> List[str]:
    """Canonical collapsed-stack lines (``stack count``), sorted."""
    return [f"{stack} {count}" for stack, count in sorted(folded.items())]


def _build_tree(folded: Dict[str, int]) -> Dict:
    """Merge folded stacks into a trie: name -> {value, children}."""
    root = {"name": "all", "value": 0, "children": {}}
    for stack, count in folded.items():
        root["value"] += count
        node = root
        for frame in stack.split(";"):
            child = node["children"].get(frame)
            if child is None:
                child = node["children"][frame] = {
                    "name": frame, "value": 0, "children": {},
                }
            child["value"] += count
            node = child
    return root


def _to_jsonable(node: Dict) -> Dict:
    return {
        "name": node["name"],
        "value": node["value"],
        "children": [
            _to_jsonable(c)
            for _, c in sorted(node["children"].items(), key=lambda kv: -kv[1]["value"])
        ],
    }


_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ font: 12px/1.4 -apple-system, "Segoe UI", sans-serif; margin: 16px; }}
  #chart {{ position: relative; width: 100%; }}
  .frame {{
    position: absolute; box-sizing: border-box; height: 17px;
    overflow: hidden; white-space: nowrap; text-overflow: ellipsis;
    border: 1px solid rgba(255,255,255,.6); border-radius: 2px;
    padding: 0 3px; cursor: pointer; font-size: 11px; color: #222;
  }}
  #status {{ margin-top: 8px; color: #555; min-height: 1.2em; }}
  h1 {{ font-size: 16px; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p>{total} samples &middot; click a frame to zoom, click the root to reset</p>
<div id="chart"></div>
<div id="status"></div>
<script>
const ROOT = {data};
const chart = document.getElementById("chart");
const status = document.getElementById("status");
const ROW = 18;
function color(name) {{
  let h = 0;
  for (let i = 0; i < name.length; i++) h = (h * 31 + name.charCodeAt(i)) >>> 0;
  return `hsl(${{20 + (h % 40)}}, ${{60 + (h >> 8) % 30}}%, ${{52 + (h >> 16) % 20}}%)`;
}}
function render(focus) {{
  chart.innerHTML = "";
  const width = chart.clientWidth || 960;
  let depth = 0;
  function walk(node, x, scale, level) {{
    const w = node.value * scale;
    if (w < 0.5) return;
    depth = Math.max(depth, level);
    const div = document.createElement("div");
    div.className = "frame";
    div.style.left = x + "px";
    div.style.top = (level * ROW) + "px";
    div.style.width = Math.max(w - 1, 1) + "px";
    div.style.background = color(node.name);
    div.textContent = node.name;
    const pct = (100 * node.value / ROOT.value).toFixed(1);
    div.title = `${{node.name}} — ${{node.value}} samples (${{pct}}%)`;
    div.onmouseenter = () => {{ status.textContent = div.title; }};
    div.onclick = (ev) => {{ ev.stopPropagation(); render(node === focus ? ROOT : node); }};
    chart.appendChild(div);
    let cx = x;
    for (const child of node.children) {{
      walk(child, cx, scale, level + 1);
      cx += child.value * scale;
    }}
  }}
  walk(focus, 0, width / focus.value, 0);
  chart.style.height = ((depth + 1) * ROW + 4) + "px";
}}
render(ROOT);
window.addEventListener("resize", () => render(ROOT));
</script>
</body>
</html>
"""


def flamegraph_html(folded: Dict[str, int], title: str = "repro profile") -> str:
    """Render *folded* stacks into one dependency-free HTML document."""
    tree = _to_jsonable(_build_tree(folded))
    return _TEMPLATE.format(
        title=html.escape(title),
        total=tree["value"],
        data=json.dumps(tree),
    )
