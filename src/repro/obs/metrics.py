"""The labelled metrics core: one vocabulary, one exposition path.

Before this module the repo spoke three disjoint metric dialects —
engine job/stage/task rollups (:mod:`repro.engine.metrics`), serve's
bespoke latency histograms (:mod:`repro.serve.events`), and surveil's
campaign events — none of them labelled, none exportable to standard
tooling.  :class:`MetricsHub` is the shared registry they all fold
into: Counter / Gauge / Histogram instruments with label sets, exemplar
trace ids on histogram observations (stamped from the active
:func:`~repro.engine.tracing.trace_scope`), a JSON-ready
:meth:`MetricsHub.snapshot`, and a deterministic Prometheus text
exposition (:func:`render_prometheus`) whose output is byte-stable for
a fixed event history — sorted families, sorted series, no timestamps.

Naming conventions (enforced only by review, checked by
:func:`validate_prometheus_text` in CI):

* every metric is ``repro_<layer>_<what>[_<unit>]``;
* counters end in ``_total``;
* histograms carry their unit (``_seconds``, ``_ms``) and expose the
  standard ``_bucket``/``_sum``/``_count`` triplet.

The hub is driver-side machinery (like the :class:`EventBus` it feeds
from) — capture it into a task closure and ``repro lint`` flags C101.
A process-wide hub is available via :func:`default_hub` for scripts;
every :class:`~repro.engine.context.Context` owns its own hub so tests
and servers stay isolated.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.listener import (
    CacheEvict,
    CacheHit,
    CacheMiss,
    EngineListener,
    ShuffleFetch,
    ShuffleWrite,
    TaskRetry,
)
from repro.engine.lockorder import OrderedLock
from repro.engine.tracing import current_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "HubMetricsListener",
    "DEFAULT_BUCKETS",
    "bucket_quantile",
    "render_prometheus",
    "validate_prometheus_text",
    "default_hub",
]

#: Default histogram bucket upper bounds, seconds (log-spaced; the last
#: implicit bucket is +Inf).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def bucket_quantile(
    q: float,
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    max_value: float,
) -> float:
    """Interpolated q-quantile of a bucketed distribution.

    ``counts`` holds one entry per finite bucket plus a trailing
    overflow bucket.  Within the winning bucket the estimate is linear
    between the bucket's lower and upper bound (the Prometheus
    ``histogram_quantile`` convention), clamped to the observed
    ``max_value`` so a lone sample reports itself rather than its
    bucket ceiling.  Observations in the overflow bucket report
    ``max_value`` — there is no finite upper bound to interpolate to.
    """
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        seen += c
        if seen >= rank:
            if i >= len(bounds):
                return max_value
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i])
            frac = (rank - (seen - c)) / c
            frac = min(1.0, max(0.0, frac))
            return min(lo + (hi - lo) * frac, max_value)
    return max_value


def _labels_key(
    labelnames: Tuple[str, ...], labelvalues: Dict[str, Any]
) -> Tuple[str, ...]:
    if set(labelvalues) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labelvalues)} do not match declared "
            f"labelnames {sorted(labelnames)}"
        )
    return tuple(str(labelvalues[name]) for name in labelnames)


class _Child:
    """One labelled series of an instrument family."""

    __slots__ = ("_lock",)

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock


class Counter(_Child):
    """Monotonically increasing count (name it ``*_total``)."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Child):
    """A value that can go anywhere (queue depth, RSS peak, ...)."""

    __slots__ = ("_value",)

    def __init__(self, lock: threading.RLock) -> None:
        super().__init__(lock)
        self._value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def set_max(self, v: float) -> None:
        """Ratchet: keep the largest value ever set (peak trackers)."""
        with self._lock:
            if v > self._value:
                self._value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Child):
    """Bucketed distribution with sum/count/max and one exemplar.

    ``observe`` stamps the active trace id (when inside a
    :func:`~repro.engine.tracing.trace_scope`) as the exemplar of the
    observation, so a spike in a dashboard links back to the exact
    request/screen that caused it.  Exemplars ride the JSON snapshot
    only — the text exposition stays plain format 0.0.4.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "max", "exemplar")

    def __init__(self, lock: threading.RLock, bounds: Tuple[float, ...]) -> None:
        super().__init__(lock)
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.exemplar: Optional[Dict[str, Any]] = None

    def observe(self, v: float, trace_id: Optional[str] = None) -> None:
        v = float(v)
        if trace_id is None:
            trace_id = current_trace_id()
        with self._lock:
            i = 0
            for i, bound in enumerate(self.bounds):  # noqa: B007
                if v <= bound:
                    break
            else:
                i = len(self.bounds)
            self.counts[i] += 1
            self.count += 1
            self.sum += v
            if v > self.max:
                self.max = v
            if trace_id:
                self.exemplar = {"trace_id": trace_id, "value": v}

    def quantile(self, q: float) -> float:
        with self._lock:
            return bucket_quantile(q, self.bounds, self.counts, self.count, self.max)


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named instrument: shared metadata plus its labelled children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} for {name}")
        if kind == "histogram" and list(buckets) != sorted(set(buckets)):
            raise ValueError(f"histogram buckets must be strictly increasing: {buckets}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = tuple(float(b) for b in buckets)
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = lock

    def labels(self, **labelvalues: Any) -> Any:
        """The child series for one label-value combination."""
        key = _labels_key(self.labelnames, labelvalues)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _CHILD_TYPES[self.kind](self._lock)
                self._children[key] = child
            return child

    def series(self) -> Iterator[Tuple[Dict[str, str], _Child]]:
        """All (labels-dict, child) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        for key, child in items:
            yield dict(zip(self.labelnames, key)), child

    # Label-less convenience: a family declared without labelnames acts
    # as its own single series.
    def _solo(self) -> Any:
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def inc(self, n: float = 1.0) -> None:
        self._solo().inc(n)

    def dec(self, n: float = 1.0) -> None:
        self._solo().dec(n)

    def set(self, v: float) -> None:
        self._solo().set(v)

    def set_max(self, v: float) -> None:
        self._solo().set_max(v)

    def observe(self, v: float, trace_id: Optional[str] = None) -> None:
        self._solo().observe(v, trace_id=trace_id)

    @property
    def value(self) -> float:
        return self._solo().value


class MetricsHub:
    """The process's metric registry: declare once, observe anywhere.

    ``counter``/``gauge``/``histogram`` are get-or-create — declaring
    the same name twice returns the same family, declaring it with a
    different kind or label set raises (a name must mean one thing).
    One snapshot feeds every exposition: the serve JSON ``/metrics``
    document and the Prometheus text format render from the same data.
    """

    def __init__(self) -> None:
        # Reentrant and shared with every family/instrument the hub owns:
        # one hierarchy entry (level 85) covers the whole instrument tree.
        self._lock = OrderedLock("MetricsHub._lock", reentrant=True)
        self._families: Dict[str, _Family] = {}

    def _declare(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> _Family:
        labelnames = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already declared as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            family = _Family(name, kind, help_text, labelnames, self._lock, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> _Family:
        if not name.endswith("_total"):
            raise ValueError(f"counter names must end in _total: {name!r}")
        return self._declare(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> _Family:
        return self._declare(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> _Family:
        return self._declare(name, "histogram", help_text, labels, tuple(buckets))

    def get(self, name: str) -> Optional[_Family]:
        """The family registered under *name*, or None."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of every family, sorted and exemplar-carrying."""
        out: Dict[str, Any] = {}
        for family in self.families():
            series = []
            for labels, child in family.series():
                if isinstance(child, Histogram):
                    series.append(
                        {
                            "labels": labels,
                            "buckets": list(child.bounds),
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                            "max": child.max,
                            "exemplar": child.exemplar,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)


def _fmt(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labelstr(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, labels[k]) for k in sorted(labels)]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{_escape(str(v))}"' for k, v in pairs) + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a :meth:`MetricsHub.snapshot` as Prometheus text.

    Deterministic by construction: families and series sort by name and
    label values, no timestamps are emitted, and exemplars stay in the
    JSON snapshot — the same metric history always renders to the same
    bytes, which the exposition tests pin.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        doc = snapshot[name]
        if doc["help"]:
            lines.append(f"# HELP {name} {_escape(doc['help'])}")
        lines.append(f"# TYPE {name} {doc['type']}")
        for series in doc["series"]:
            labels = series["labels"]
            if doc["type"] == "histogram":
                cumulative = 0
                for bound, count in zip(
                    series["buckets"], series["counts"][:-1]
                ):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_labelstr(labels, ('le', _fmt(float(bound))))}"
                        f" {cumulative}"
                    )
                cumulative += series["counts"][-1]
                lines.append(
                    f"{name}_bucket{_labelstr(labels, ('le', '+Inf'))} {cumulative}"
                )
                lines.append(f"{name}_sum{_labelstr(labels)} {_fmt(series['sum'])}")
                lines.append(f"{name}_count{_labelstr(labels)} {series['count']}")
            else:
                lines.append(f"{name}{_labelstr(labels)} {_fmt(series['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prometheus_text(text: str) -> int:
    """Structural check of a text exposition; returns the sample count.

    Verifies what a scraper would choke on: sample syntax, label-pair
    syntax, every sample preceded by a ``# TYPE`` for its family,
    histogram ``_bucket`` series cumulative and ``+Inf``-terminated with
    ``_count`` matching the ``+Inf`` bucket.  Raises ``ValueError`` on
    the first violation — CI runs this over the live ``/metrics`` and
    ``repro metrics --prom`` output.
    """
    types: Dict[str, str] = {}
    samples = 0
    hist_state: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            if parts[2] in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name, labelstr, value = m.group("name"), m.group("labels"), m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: non-numeric value {value!r}"
                ) from None
        labels: Dict[str, str] = {}
        if labelstr:
            for pair in re.split(r",(?=[a-zA-Z_])", labelstr):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(f"line {lineno}: malformed label pair {pair!r}")
                k, v = pair.split("=", 1)
                labels[k] = v[1:-1]
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE line")
        if types[family] == "counter" and not family.endswith("_total"):
            raise ValueError(f"line {lineno}: counter {family!r} must end in _total")
        if types[family] == "histogram":
            serieskey = family + _labelstr({k: v for k, v in labels.items() if k != "le"})
            state = hist_state.setdefault(
                serieskey, {"last_bucket": None, "inf": None, "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(f"line {lineno}: _bucket sample without le label")
                v = float(value)
                if state["last_bucket"] is not None and v < state["last_bucket"]:
                    raise ValueError(
                        f"line {lineno}: non-cumulative histogram buckets for {family}"
                    )
                state["last_bucket"] = v
                if labels["le"] == "+Inf":
                    state["inf"] = v
            elif name.endswith("_count"):
                state["count"] = float(value)
        samples += 1
    for serieskey, state in hist_state.items():
        if state["inf"] is None:
            raise ValueError(f"histogram series {serieskey} lacks an le=\"+Inf\" bucket")
        if state["count"] is not None and state["count"] != state["inf"]:
            raise ValueError(
                f"histogram series {serieskey}: _count {state['count']} != "
                f"+Inf bucket {state['inf']}"
            )
    return samples


# ---------------------------------------------------------------------------
# Bus -> hub folding


class HubMetricsListener(EngineListener):
    """Folds bus-only engine and surveil events into hub instruments.

    Job/stage/task rollups reach the hub through
    :meth:`~repro.engine.metrics.MetricsRegistry.record` (which works in
    every executor mode, bus or no bus); this listener covers the event
    vocabularies that exist *only* on the bus — retries, cache traffic,
    shuffle volume, and the surveillance campaign counters — without
    double-counting the registry-fed families.
    """

    def __init__(self, hub: MetricsHub) -> None:
        self.hub = hub
        self._retries = hub.counter(
            "repro_engine_task_retries_total", "Task attempts that failed and were retried"
        )
        self._cache = hub.counter(
            "repro_engine_cache_events_total",
            "Block-store cache activity by outcome",
            labels=("event",),
        )
        self._shuffle_bytes = hub.counter(
            "repro_engine_shuffle_bytes_total",
            "Out-of-band shuffle payload bytes by direction",
            labels=("direction",),
        )
        self._rounds = hub.counter(
            "repro_surveil_rounds_total", "Completed surveillance rounds"
        )
        self._site_screens = hub.counter(
            "repro_surveil_screens_total",
            "Screens executed per surveillance site",
            labels=("site",),
        )
        self._cases = hub.counter(
            "repro_surveil_cases_total", "Confirmed cases found across all sites"
        )
        self._tests = hub.counter(
            "repro_surveil_tests_total", "Assay tests consumed across all sites"
        )
        self._draws = hub.counter(
            "repro_surveil_allocator_draws_total",
            "Budget allocations drawn, by allocator",
            labels=("allocator",),
        )
        # Fixed-label children resolved once: the cache/shuffle handlers
        # sit on the scheduler's hot path, so they must not pay the
        # labels() lookup per event (see the <3% CI gate in
        # benchmarks/bench_engine_micro.py).
        self._cache_hit = self._cache.labels(event="hit")
        self._cache_miss = self._cache.labels(event="miss")
        self._cache_evict = self._cache.labels(event="evict")
        self._shuffle_write = self._shuffle_bytes.labels(direction="write")
        self._shuffle_fetch = self._shuffle_bytes.labels(direction="fetch")

    def on_task_retry(self, event: TaskRetry) -> None:
        self._retries.inc()

    def on_cache_hit(self, event: CacheHit) -> None:
        self._cache_hit.inc()

    def on_cache_miss(self, event: CacheMiss) -> None:
        self._cache_miss.inc()

    def on_cache_evict(self, event: CacheEvict) -> None:
        self._cache_evict.inc()

    def on_shuffle_write(self, event: ShuffleWrite) -> None:
        self._shuffle_write.inc(event.buffer_bytes)

    def on_shuffle_fetch(self, event: ShuffleFetch) -> None:
        self._shuffle_fetch.inc(event.buffer_bytes)

    # surveil vocabulary (repro.surveil.events; dispatched by kind, so no
    # import of the surveil layer is needed here)
    def on_surveil_round_end(self, event: Any) -> None:
        self._rounds.inc()

    def on_surveil_site_screened(self, event: Any) -> None:
        self._site_screens.labels(site=event.site).inc()
        self._cases.inc(event.cases_found)
        self._tests.inc(event.tests_used)

    def on_surveil_budget_allocated(self, event: Any) -> None:
        self._draws.labels(allocator=event.allocator).inc()


_DEFAULT_HUB: Optional[MetricsHub] = None
_DEFAULT_HUB_LOCK = OrderedLock("_DEFAULT_HUB_LOCK")


def default_hub() -> MetricsHub:
    """The process-wide hub (created on first use)."""
    global _DEFAULT_HUB
    with _DEFAULT_HUB_LOCK:
        if _DEFAULT_HUB is None:
            _DEFAULT_HUB = MetricsHub()
        return _DEFAULT_HUB
