"""Chrome trace-event export: render engine history into ``about:tracing``.

:func:`chrome_trace` converts a stream of *record dicts* — flight
recorder events (:meth:`~repro.obs.flight.FlightRecorder.events`) and/or
tracer JSONL records (:meth:`~repro.obs.Tracer.dump_jsonl`) — into the
Chrome trace-event JSON object format, loadable by ``chrome://tracing``
and Perfetto.

Mapping:

* ``task_end`` → ``X`` (complete) slices on one track per worker, placed
  at the worker-side wall-clock start stamp (``t0_wall``), which is the
  only timestamp that orders correctly across processes;
* ``stage_end`` / ``job_end`` / serve ``request_end`` /
  ``batch_executed`` → ``X`` slices on the driver track (start derived
  as ``wall - wall_s``);
* tracer phase spans (``record == "span"``) → nested ``B``/``E`` pairs
  on a dedicated phases track (spans nest properly by construction);
* cache and shuffle events → ``C`` counter samples (cumulative);
* ``task_retry`` / remaining point events → ``i`` instants.

Timestamps are microseconds relative to the earliest record, so the
viewer opens at t≈0 instead of the Unix epoch.

:func:`validate_chrome_trace` is a dependency-free structural checker
(no ``jsonschema`` in this environment) used by tests and the CI smoke
step to guarantee exported files actually load in the viewer.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Tuple, Union

__all__ = ["chrome_trace", "validate_chrome_trace", "read_jsonl_records"]

#: Driver-side pseudo pid for records with no worker attribution.
_DRIVER_PID = 0
_DRIVER_TID = 0
_PHASES_TID = 1

#: Event kinds rendered as duration slices from their ``wall_s``.
_SLICE_KINDS = (
    "task_end",
    "stage_end",
    "job_end",
    "request_end",
    "batch_executed",
    "surveil_round_end",
)
#: Cumulative counters sampled on every matching event.
_COUNTER_KINDS = {
    "cache_hit": ("cache", "hits"),
    "cache_miss": ("cache", "misses"),
    "cache_evict": ("cache", "evictions"),
    "shuffle_write": ("shuffle", "writes"),
    "shuffle_fetch": ("shuffle", "fetches"),
}


def _instant_name(rec: Dict[str, Any]) -> Union[str, None]:
    """Instant ("i") label for point events; ``None`` = not an instant."""
    kind = rec.get("kind", "")
    if kind == "task_retry":
        return f"retry s{rec.get('stage_id', '?')}p{rec.get('partition', '?')}"
    if kind == "surveil_round_start":
        return f"round {rec.get('round_index', '?')} start (budget {rec.get('budget', '?')})"
    if kind == "surveil_budget_allocated":
        return f"allocate[{rec.get('allocator', '?')}] r{rec.get('round_index', '?')}"
    if kind == "surveil_site_screened":
        return (
            f"{rec.get('site', 'site?')} r{rec.get('round_index', '?')}: "
            f"{rec.get('cases_found', '?')} cases / {rec.get('tests_used', '?')} tests"
        )
    return None


def read_jsonl_records(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Load record dicts from a JSON-lines file (blank lines skipped)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _slice_name(rec: Dict[str, Any]) -> str:
    kind = rec.get("kind", "")
    if kind == "task_end":
        return f"task s{rec.get('stage_id', '?')}p{rec.get('partition', '?')}"
    if kind == "stage_end":
        return f"stage {rec.get('stage_id', '?')} ({rec.get('stage_kind', '')})"
    if kind == "job_end":
        return f"job {rec.get('job_id', '?')}"
    if kind == "request_end":
        return f"request {rec.get('endpoint', '')}".strip()
    if kind == "batch_executed":
        return f"batch n={rec.get('batch_size', '?')}"
    if kind == "surveil_round_end":
        return (
            f"surveil round {rec.get('round_index', '?')} "
            f"({rec.get('cases', '?')} cases)"
        )
    return kind or "event"


def _args(rec: Dict[str, Any]) -> Dict[str, Any]:
    """Slice args: the record minus timing fields already on the event."""
    drop = ("time", "wall", "t0_wall", "seq")
    return {k: v for k, v in rec.items() if k not in drop and v not in (None, "")}


def _worker_track(
    worker: str, tracks: Dict[str, Tuple[int, int]], meta: List[Dict[str, Any]]
) -> Tuple[int, int]:
    """pid/tid for a ``"<pid>/<thread-name>"`` worker string (cached)."""
    track = tracks.get(worker)
    if track is not None:
        return track
    pid_s, _, thread = worker.partition("/")
    try:
        pid = int(pid_s)
    except ValueError:
        pid = _DRIVER_PID
    # tids 0/1 are reserved for the driver and phase tracks.
    tid = 2 + sum(1 for p, _t in tracks.values() if p == pid)
    tracks[worker] = (pid, tid)
    meta.append(_thread_name(pid, tid, thread or worker))
    return pid, tid


def _thread_name(pid: int, tid: int, name: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def chrome_trace(
    records: Iterable[Dict[str, Any]], title: str = "repro"
) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON object from record dicts.

    Accepts flight-recorder event dicts and tracer JSONL records in any
    mix; unknown record shapes are skipped.  Returns the JSON object
    format (``{"traceEvents": [...], ...}``) ready for ``json.dump``.
    """
    recs = [r for r in records if isinstance(r, dict)]

    # Time base: earliest wall stamp across everything convertible.
    starts: List[float] = []
    for r in recs:
        if r.get("record") == "span":
            t0w = r.get("t0_wall", 0.0)
            if t0w:
                starts.append(float(t0w))
        elif "wall" in r:
            w = float(r["wall"])
            t0w = float(r.get("t0_wall", 0.0) or 0.0)
            dur = float(r.get("wall_s", 0.0) or 0.0)
            starts.append(t0w if t0w else w - dur)
    base = min(starts) if starts else 0.0

    def us(wall: float) -> float:
        return round((wall - base) * 1e6, 3)

    meta: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _DRIVER_PID,
            "tid": _DRIVER_TID,
            "args": {"name": f"{title} driver"},
        },
        _thread_name(_DRIVER_PID, _DRIVER_TID, "driver"),
        _thread_name(_DRIVER_PID, _PHASES_TID, "sbgt-phases"),
    ]
    out: List[Dict[str, Any]] = []
    tracks: Dict[str, Tuple[int, int]] = {}
    worker_pids: Dict[int, None] = {}
    counters: Dict[str, float] = {}

    # Tracer spans render as properly nested B/E pairs: sort by entry
    # time, then emit B at t0 and E at t0+wall via an explicit close
    # stack (spans from one tracer thread cannot partially overlap).
    spans = [r for r in recs if r.get("record") == "span" and r.get("t0_wall")]
    spans.sort(key=lambda r: float(r["t0_wall"]))
    open_ends: List[float] = []  # end times of currently open B's

    def close_until(t: float) -> None:
        while open_ends and open_ends[-1] <= t:
            end = open_ends.pop()
            out.append({"ph": "E", "pid": _DRIVER_PID, "tid": _PHASES_TID, "ts": us(end)})

    for r in spans:
        t0 = float(r["t0_wall"])
        close_until(t0)
        out.append(
            {
                "ph": "B",
                "name": r.get("label") or r.get("phase", "span"),
                "cat": r.get("phase", ""),
                "pid": _DRIVER_PID,
                "tid": _PHASES_TID,
                "ts": us(t0),
                "args": {"phase": r.get("phase", ""), "self_s": r.get("self_s", 0.0)},
            }
        )
        open_ends.append(t0 + float(r.get("wall_s", 0.0)))
    close_until(float("inf"))

    for r in recs:
        kind = r.get("kind")
        if kind is None or "wall" not in r:
            continue  # stage/summary JSONL records, foreign shapes
        wall = float(r["wall"])
        if kind in _SLICE_KINDS:
            dur = float(r.get("wall_s", 0.0) or 0.0)
            t0w = float(r.get("t0_wall", 0.0) or 0.0)
            start = t0w if t0w else wall - dur
            worker = r.get("worker", "")
            if worker:
                pid, tid = _worker_track(worker, tracks, meta)
                if pid not in worker_pids:
                    worker_pids[pid] = None
                    meta.append(
                        {
                            "ph": "M",
                            "name": "process_name",
                            "pid": pid,
                            "tid": tid,
                            "args": {"name": f"{title} worker pid {pid}"},
                        }
                    )
            else:
                pid, tid = _DRIVER_PID, _DRIVER_TID
            out.append(
                {
                    "ph": "X",
                    "name": _slice_name(r),
                    "cat": r.get("phase") or kind,
                    "pid": pid,
                    "tid": tid,
                    "ts": us(start),
                    "dur": round(max(dur, 0.0) * 1e6, 3),
                    "args": _args(r),
                }
            )
        elif kind in _COUNTER_KINDS:
            series, col = _COUNTER_KINDS[kind]
            counters[col] = counters.get(col, 0.0) + 1.0
            out.append(
                {
                    "ph": "C",
                    "name": series,
                    "pid": _DRIVER_PID,
                    "tid": _DRIVER_TID,
                    "ts": us(wall),
                    "args": {
                        c: counters.get(c, 0.0)
                        for s, c in _COUNTER_KINDS.values()
                        if s == series
                    },
                }
            )
        else:
            name = _instant_name(r)
            if name is not None:
                out.append(
                    {
                        "ph": "i",
                        "name": name,
                        "cat": "retry" if kind == "task_retry" else (r.get("phase") or kind),
                        "pid": _DRIVER_PID,
                        "tid": _DRIVER_TID,
                        "ts": us(wall),
                        "s": "g",
                        "args": _args(r),
                    }
                )

    out.sort(key=lambda e: e.get("ts", 0.0))
    return {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrome", "title": title},
    }


_KNOWN_PH = {"X", "B", "E", "C", "M", "i", "I"}


def validate_chrome_trace(doc: Any) -> int:
    """Structurally validate a Chrome trace object; returns event count.

    Checks the JSON object format: a ``traceEvents`` list whose entries
    carry a known ``ph``, integer ``pid``/``tid``, numeric ``ts`` (and
    non-negative ``dur`` for ``X``), names where required, and balanced
    ``B``/``E`` nesting per track.  Raises :class:`ValueError` listing
    every problem found — deliberately hand-rolled since the environment
    has no JSON-schema package.
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        raise ValueError(f"trace must be a JSON object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace must contain a 'traceEvents' list")

    open_b: Dict[Tuple[int, int], int] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PH:
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph != "M":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"{where}: ts must be a number")
        if ph in ("X", "B", "C", "M", "i", "I") and not isinstance(ev.get("name"), str):
            problems.append(f"{where}: missing name")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: C event needs an args object")
        if ph in ("B", "E"):
            track = (ev.get("pid"), ev.get("tid"))
            if ph == "B":
                open_b[track] = open_b.get(track, 0) + 1
            else:
                if open_b.get(track, 0) <= 0:
                    problems.append(f"{where}: E without matching B on track {track}")
                else:
                    open_b[track] -= 1
    for track, n in open_b.items():
        if n:
            problems.append(f"{n} unclosed B event(s) on track {track}")

    if problems:
        raise ValueError(
            f"invalid Chrome trace ({len(problems)} problem(s)):\n  "
            + "\n  ".join(problems[:20])
        )
    return len(events)
