"""Phase-tagged tracing for SBGT workloads.

The engine's listener bus reports *engine* coordinates (jobs, stages,
tasks); a screen author thinks in *SBGT* coordinates — lattice
manipulation (R1), test selection (R2), statistical analysis (R3).  The
:class:`Tracer` bridges the two: instrumented SBGT call sites open
phase spans (via :func:`trace_phase`), and because the tracer is itself
an :class:`~repro.engine.listener.EngineListener`, every engine event
that fires while a span is open is attributed to that phase.

Span accounting uses **self time**: a span's ``self_s`` is its wall time
minus the wall time of its direct children, so nested instrumentation
(a selector calling ``down_set_masses``, a session update re-reading
entropy) never double-counts.  Phase totals sum self times and therefore
partition the instrumented wall clock.

One tracer may be *installed* process-wide (``with tracer:`` or
:meth:`Tracer.install`); while none is installed :func:`trace_phase`
degrades to a bare :func:`~repro.engine.tracing.phase_scope` — no span
accounting, just the contextvar stamp that phase-attributes engine
events for the always-on flight recorder.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.engine.listener import (
    EngineListener,
    JobEnd,
    JobStart,
    TaskEnd,
    TaskRetry,
)
from repro.engine.lockorder import OrderedLock
from repro.engine.tracing import EPOCH_OFFSET, phase_scope, reset_phase, set_phase

__all__ = [
    "PHASE_LATTICE",
    "PHASE_SELECTION",
    "PHASE_ANALYSIS",
    "PHASES",
    "PhaseSpan",
    "StageTelemetry",
    "Tracer",
    "current_tracer",
    "trace_phase",
    "traced",
]

#: The three operation classes of the paper's runtime breakdown.
PHASE_LATTICE = "lattice-op"
PHASE_SELECTION = "selection"
PHASE_ANALYSIS = "analysis"
PHASES = (PHASE_LATTICE, PHASE_SELECTION, PHASE_ANALYSIS)


@dataclass
class PhaseSpan:
    """One closed instrumented region."""

    phase: str
    label: str
    t0: float
    wall_s: float = 0.0
    self_s: float = 0.0
    depth: int = 0
    #: Wall-clock epoch of span entry (``t0`` mapped off perf_counter);
    #: 0.0 in records predating the field.  Lets exporters place spans
    #: on the same timeline as cross-process events.
    t0_wall: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "record": "span",
            "phase": self.phase,
            "label": self.label,
            "t0": self.t0,
            "wall_s": self.wall_s,
            "self_s": self.self_s,
            "depth": self.depth,
            "t0_wall": self.t0_wall,
        }


@dataclass
class StageTelemetry:
    """Per-screen-stage counters plus the phase breakdown of its wall."""

    stage: int
    pools_proposed: int = 0
    tests_run: int = 0
    entropy_drop: Optional[float] = None
    states_pruned: int = 0
    wall_s: float = 0.0
    phase_wall: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "record": "stage",
            "stage": self.stage,
            "pools_proposed": self.pools_proposed,
            "tests_run": self.tests_run,
            "entropy_drop": self.entropy_drop,
            "states_pruned": self.states_pruned,
            "wall_s": self.wall_s,
            "phase_wall": dict(self.phase_wall),
        }


class _Frame:
    __slots__ = ("phase", "label", "t0", "child_s", "depth")

    def __init__(self, phase: str, label: str, t0: float, depth: int) -> None:
        self.phase = phase
        self.label = label
        self.t0 = t0
        self.child_s = 0.0
        self.depth = depth


class Tracer(EngineListener):
    """Collects phase spans, per-stage telemetry and engine attribution."""

    def __init__(self, keep_spans: int = 100_000) -> None:
        self._lock = OrderedLock("Tracer._lock")
        self._tls = threading.local()  # driver-thread span stack
        self._keep_spans = keep_spans
        self.spans: List[PhaseSpan] = []
        self.stages: List[StageTelemetry] = []
        # Self-time, span count, engine jobs/tasks/retries per phase.
        self._phase_self: Dict[str, float] = {}
        self._phase_spans: Dict[str, int] = {}
        self._phase_jobs: Dict[str, int] = {}
        self._phase_tasks: Dict[str, int] = {}
        self._phase_retries: Dict[str, int] = {}
        # Event attribution reads the phase most recently entered on the
        # instrumenting (driver) thread; worker-thread events inherit it.
        self._current_phase: str = ""
        self._open_stage: Optional[StageTelemetry] = None
        self._stage_t0 = 0.0
        self._stage_phase_at_begin: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # span API
    # ------------------------------------------------------------------
    def _stack(self) -> List[_Frame]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    @contextmanager
    def phase(self, phase: str, label: str = "") -> Iterator[None]:
        """Open an instrumented region attributed to *phase*."""
        stack = self._stack()
        frame = _Frame(phase, label, time.perf_counter(), len(stack))
        stack.append(frame)
        self._current_phase = phase
        # Mirror into the engine's phase contextvar so every bus event
        # emitted under this span is stamped with the phase (the var
        # follows thread-pool tasks via copy_context; the tls stack
        # above stays driver-thread-local for self-time accounting).
        token = set_phase(phase)
        try:
            yield
        finally:
            reset_phase(token)
            stack.pop()
            wall = time.perf_counter() - frame.t0
            self_s = max(0.0, wall - frame.child_s)
            if stack:
                stack[-1].child_s += wall
                self._current_phase = stack[-1].phase
            else:
                self._current_phase = ""
            span = PhaseSpan(
                phase,
                label,
                frame.t0,
                wall,
                self_s,
                frame.depth,
                t0_wall=frame.t0 + EPOCH_OFFSET,
            )
            with self._lock:
                if len(self.spans) < self._keep_spans:
                    self.spans.append(span)
                self._phase_self[phase] = self._phase_self.get(phase, 0.0) + self_s
                self._phase_spans[phase] = self._phase_spans.get(phase, 0) + 1

    # ------------------------------------------------------------------
    # per-screen-stage telemetry
    # ------------------------------------------------------------------
    def begin_screen_stage(self, stage: int) -> None:
        with self._lock:
            self._open_stage = StageTelemetry(stage=stage)
            self._stage_t0 = time.perf_counter()
            self._stage_phase_at_begin = dict(self._phase_self)

    def end_screen_stage(
        self,
        pools_proposed: int = 0,
        tests_run: int = 0,
        entropy_drop: Optional[float] = None,
        states_pruned: int = 0,
    ) -> Optional[StageTelemetry]:
        with self._lock:
            st = self._open_stage
            if st is None:
                return None
            st.pools_proposed = pools_proposed
            st.tests_run = tests_run
            st.entropy_drop = entropy_drop
            st.states_pruned = states_pruned
            st.wall_s = time.perf_counter() - self._stage_t0
            st.phase_wall = {
                phase: total - self._stage_phase_at_begin.get(phase, 0.0)
                for phase, total in self._phase_self.items()
                if total - self._stage_phase_at_begin.get(phase, 0.0) > 0.0
            }
            self.stages.append(st)
            self._open_stage = None
            return st

    # ------------------------------------------------------------------
    # EngineListener hooks: attribute engine activity to the live phase
    # ------------------------------------------------------------------
    def on_job_start(self, event: JobStart) -> None:
        phase = self._current_phase
        with self._lock:
            self._phase_jobs[phase] = self._phase_jobs.get(phase, 0) + 1

    def on_job_end(self, event: JobEnd) -> None:  # symmetric hook, kept for subclasses
        pass

    def on_task_end(self, event: TaskEnd) -> None:
        phase = self._current_phase
        with self._lock:
            self._phase_tasks[phase] = self._phase_tasks.get(phase, 0) + 1

    def on_task_retry(self, event: TaskRetry) -> None:
        phase = self._current_phase
        with self._lock:
            self._phase_retries[phase] = self._phase_retries.get(phase, 0) + 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def attach(self, ctx) -> "Tracer":
        """Subscribe to a context's event bus (engine attribution)."""
        ctx.add_listener(self)
        return self

    def detach(self, ctx) -> None:
        ctx.remove_listener(self)

    def install(self) -> "Tracer":
        """Make this the process-wide tracer :func:`trace_phase` targets."""
        global _active
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        if _active is self:
            _active = None

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, Dict[str, float]]:
        """Per-phase rollup: self-time wall, span/job/task/retry counts."""
        with self._lock:
            phases = set(self._phase_self) | set(self._phase_jobs) | set(self._phase_tasks)
            return {
                phase: {
                    "wall_s": self._phase_self.get(phase, 0.0),
                    "spans": float(self._phase_spans.get(phase, 0)),
                    "jobs": float(self._phase_jobs.get(phase, 0)),
                    "tasks": float(self._phase_tasks.get(phase, 0)),
                    "retries": float(self._phase_retries.get(phase, 0)),
                }
                for phase in sorted(phases)
            }

    def phase_wall(self, phase: str) -> float:
        """Total self-time attributed to one phase so far."""
        with self._lock:
            return self._phase_self.get(phase, 0.0)

    def summary(self) -> str:
        """Human-readable per-phase and per-stage rollup."""
        lines = ["phase        wall (s)   spans  jobs  tasks"]
        for phase, row in self.totals().items():
            name = phase or "(untagged)"
            lines.append(
                f"{name:<12} {row['wall_s']:>8.4f} {int(row['spans']):>7d}"
                f" {int(row['jobs']):>5d} {int(row['tasks']):>6d}"
            )
        if self.stages:
            lines.append("")
            lines.append("stage  pools  tests  dH        pruned  wall (s)")
            for st in self.stages:
                drop = f"{st.entropy_drop:.4f}" if st.entropy_drop is not None else "-"
                lines.append(
                    f"{st.stage:>5d} {st.pools_proposed:>6d} {st.tests_run:>6d}"
                    f" {drop:>9s} {st.states_pruned:>7d} {st.wall_s:>9.4f}"
                )
        return "\n".join(lines)

    def dump_jsonl(self, path: Union[str, os.PathLike]) -> int:
        """Write spans, stage telemetry and the summary as JSON lines."""
        with self._lock:
            spans = list(self.spans)
            stages = list(self.stages)
        totals = self.totals()
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for span in spans:
                fh.write(json.dumps(span.to_dict()) + "\n")
                n += 1
            for st in stages:
                fh.write(json.dumps(st.to_dict()) + "\n")
                n += 1
            fh.write(json.dumps({"record": "summary", "phases": totals}) + "\n")
        return n + 1

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.stages.clear()
            self._phase_self.clear()
            self._phase_spans.clear()
            self._phase_jobs.clear()
            self._phase_tasks.clear()
            self._phase_retries.clear()
            self._open_stage = None


# ----------------------------------------------------------------------
# module-level dispatch: instrumented call sites stay cheap when untraced
# ----------------------------------------------------------------------
_active: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The installed process-wide tracer, if any."""
    return _active


def trace_phase(phase: str, label: str = ""):
    """Span context manager against the installed tracer.

    Without an installed tracer this degrades to a bare
    :func:`~repro.engine.tracing.phase_scope` — no span accounting, but
    engine events emitted inside the region still carry the phase stamp
    (one contextvar set/reset, cheap enough for the always-on flight
    recorder to rely on).
    """
    tracer = _active
    if tracer is None:
        return phase_scope(phase)
    return tracer.phase(phase, label)


def traced(phase: str, label: str = "") -> Callable:
    """Decorator form of :func:`trace_phase` (label defaults to the name)."""

    def deco(fn: Callable) -> Callable:
        span_label = label or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _active
            if tracer is None:
                with phase_scope(phase):
                    return fn(*args, **kwargs)
            with tracer.phase(phase, span_label):
                return fn(*args, **kwargs)

        return wrapper

    return deco
