"""Observability for SBGT workloads.

Sits between the engine's listener bus (:mod:`repro.engine.listener`)
and the SBGT layers: a :class:`Tracer` tags work by SBGT phase
(``lattice-op`` / ``selection`` / ``analysis``), collects per-stage
screen telemetry, and exports JSON-lines traces readable by
``python -m repro trace``.
"""

from repro.obs.tracer import (
    PHASE_ANALYSIS,
    PHASE_LATTICE,
    PHASE_SELECTION,
    PHASES,
    PhaseSpan,
    StageTelemetry,
    Tracer,
    current_tracer,
    trace_phase,
    traced,
)

__all__ = [
    "PHASE_LATTICE",
    "PHASE_SELECTION",
    "PHASE_ANALYSIS",
    "PHASES",
    "PhaseSpan",
    "StageTelemetry",
    "Tracer",
    "current_tracer",
    "trace_phase",
    "traced",
]
