"""Observability for SBGT workloads.

Sits between the engine's listener bus (:mod:`repro.engine.listener`)
and the SBGT layers: a :class:`Tracer` tags work by SBGT phase
(``lattice-op`` / ``selection`` / ``analysis``), collects per-stage
screen telemetry, and exports JSON-lines traces readable by
``python -m repro trace``.

The :mod:`repro.obs.flight` flight recorder is the always-on
counterpart (registered by every :class:`~repro.engine.Context` unless
configured off), and :mod:`repro.obs.chrome` renders either source into
Chrome trace-event JSON for ``chrome://tracing`` / Perfetto.

:mod:`repro.obs.metrics` is the labelled metrics core — every
:class:`~repro.engine.Context` owns a :class:`MetricsHub` that engine,
serve and surveil telemetry folds into, with one snapshot feeding both
the JSON ``/metrics`` document and the Prometheus text exposition.
:mod:`repro.obs.sampler` adds a wall-clock sampling profiler whose
collapsed stacks render to self-contained flamegraph HTML
(:mod:`repro.obs.flamegraph`).
"""

from repro.obs.chrome import chrome_trace, read_jsonl_records, validate_chrome_trace
from repro.obs.flamegraph import flamegraph_html, folded_lines
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HubMetricsListener,
    MetricsHub,
    bucket_quantile,
    default_hub,
    render_prometheus,
    validate_prometheus_text,
)
from repro.obs.sampler import Sampler, current_profile_hz, current_sampler
from repro.obs.tracer import (
    PHASE_ANALYSIS,
    PHASE_LATTICE,
    PHASE_SELECTION,
    PHASES,
    PhaseSpan,
    StageTelemetry,
    Tracer,
    current_tracer,
    trace_phase,
    traced,
)

__all__ = [
    "PHASE_LATTICE",
    "PHASE_SELECTION",
    "PHASE_ANALYSIS",
    "PHASES",
    "PhaseSpan",
    "StageTelemetry",
    "Tracer",
    "current_tracer",
    "trace_phase",
    "traced",
    "FlightRecorder",
    "chrome_trace",
    "read_jsonl_records",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsHub",
    "HubMetricsListener",
    "DEFAULT_BUCKETS",
    "bucket_quantile",
    "render_prometheus",
    "validate_prometheus_text",
    "default_hub",
    "Sampler",
    "current_sampler",
    "current_profile_hz",
    "flamegraph_html",
    "folded_lines",
]
