"""Observability for SBGT workloads.

Sits between the engine's listener bus (:mod:`repro.engine.listener`)
and the SBGT layers: a :class:`Tracer` tags work by SBGT phase
(``lattice-op`` / ``selection`` / ``analysis``), collects per-stage
screen telemetry, and exports JSON-lines traces readable by
``python -m repro trace``.

The :mod:`repro.obs.flight` flight recorder is the always-on
counterpart (registered by every :class:`~repro.engine.Context` unless
configured off), and :mod:`repro.obs.chrome` renders either source into
Chrome trace-event JSON for ``chrome://tracing`` / Perfetto.
"""

from repro.obs.chrome import chrome_trace, read_jsonl_records, validate_chrome_trace
from repro.obs.flight import FlightRecorder
from repro.obs.tracer import (
    PHASE_ANALYSIS,
    PHASE_LATTICE,
    PHASE_SELECTION,
    PHASES,
    PhaseSpan,
    StageTelemetry,
    Tracer,
    current_tracer,
    trace_phase,
    traced,
)

__all__ = [
    "PHASE_LATTICE",
    "PHASE_SELECTION",
    "PHASE_ANALYSIS",
    "PHASES",
    "PhaseSpan",
    "StageTelemetry",
    "Tracer",
    "current_tracer",
    "trace_phase",
    "traced",
    "FlightRecorder",
    "chrome_trace",
    "read_jsonl_records",
    "validate_chrome_trace",
]
