"""Wall-clock sampling profiler: where is the screen actually spending time?

A background thread wakes ``hz`` times a second, grabs
``sys._current_frames()``, and folds every thread's stack into a
collapsed-stack counter (``"file:func;file:func;..." -> samples``, root
first) — the format ``flamegraph.pl`` and speedscope ingest, and the
input of :func:`repro.obs.flamegraph.flamegraph_html`.  Sampling costs
one frame walk per thread per tick, so at the default 100 Hz the
overhead on the reference screen stays under the CI-asserted 3% bound
(see ``benchmarks/bench_engine_micro.py``).

Driver vs. workers
------------------
``sys._current_frames()`` only sees the calling process.  Serial and
thread executors therefore profile for free under the driver's
installed sampler; pre-forked process workers cannot inherit a thread
started after the fork.  They ride the same channel as PR 4's cache
events instead: the scheduler stamps the installed sampler's rate into
each :class:`~repro.engine.executor.Task` (``profile_hz``), the worker
keeps a module-local sampler matched to that rate via
:func:`worker_sync` and drains its folded counts into the
:class:`~repro.engine.executor.TaskResult`, and the driver merges them
into the installed sampler (:func:`merge_into_installed`).  Samples
taken after a worker's last profiled task are dropped with the pool —
an accepted loss for a statistical profiler.

Like the :class:`~repro.obs.tracer.Tracer`, a sampler becomes *the*
process profiler via :meth:`Sampler.install`; the registry is consulted
through :func:`current_sampler` / :func:`current_profile_hz`.  The
sampler is driver-resident machinery — capturing it into a task closure
is a C101 lint finding.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.engine.lockorder import OrderedLock

__all__ = [
    "Sampler",
    "current_sampler",
    "current_profile_hz",
    "merge_into_installed",
    "worker_sync",
]

#: Stacks deeper than this keep their leaf-most frames (root replaced by
#: a marker) so one runaway recursion cannot bloat every sample.
MAX_FRAMES = 64


def _fold_frame(frame) -> str:
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    return f"{filename}:{code.co_name}"


def _fold_stack(frame) -> str:
    frames: List[str] = []
    while frame is not None and len(frames) < MAX_FRAMES + 1:
        frames.append(_fold_frame(frame))
        frame = frame.f_back
    frames.reverse()  # root first
    if len(frames) > MAX_FRAMES:
        frames = ["<truncated>"] + frames[-MAX_FRAMES:]
    return ";".join(frames)


class Sampler:
    """Low-overhead sampling profiler over ``sys._current_frames()``."""

    def __init__(self, hz: float = 100.0) -> None:
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.hz = float(hz)
        self._interval = 1.0 / self.hz
        self._folded: Dict[str, int] = {}
        self._lock = OrderedLock("Sampler._lock")
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._ticks = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Sampler":
        """Launch the sampling thread (idempotent); returns self."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling; collected samples stay readable."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self._interval):
            self._sample_once(skip_ident=own)

    def _sample_once(self, skip_ident: Optional[int] = None) -> None:
        frames = sys._current_frames()
        with self._lock:
            self._ticks += 1
            for ident, frame in frames.items():
                if ident == skip_ident:
                    continue
                stack = _fold_stack(frame)
                self._folded[stack] = self._folded.get(stack, 0) + 1

    # ------------------------------------------------------------------
    # sample access
    # ------------------------------------------------------------------
    def folded(self) -> Dict[str, int]:
        """Copy of the collapsed-stack counts accumulated so far."""
        with self._lock:
            return dict(self._folded)

    def drain(self) -> List[Tuple[str, int]]:
        """Pop the accumulated counts (worker-side relay primitive)."""
        with self._lock:
            items = list(self._folded.items())
            self._folded.clear()
        return items

    def merge_folded(self, items: Iterable[Tuple[str, int]]) -> None:
        """Fold externally collected samples (e.g. from a worker) in."""
        with self._lock:
            for stack, count in items:
                self._folded[stack] = self._folded.get(stack, 0) + int(count)

    @property
    def sample_count(self) -> int:
        with self._lock:
            return sum(self._folded.values())

    def snapshot(self) -> Dict[str, Union[int, float, bool]]:
        with self._lock:
            return {
                "hz": self.hz,
                "running": self.running,
                "ticks": self._ticks,
                "samples": sum(self._folded.values()),
                "stacks": len(self._folded),
            }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def dump_collapsed(self, path: Union[str, os.PathLike]) -> int:
        """Write ``stack count`` lines (flamegraph.pl/speedscope input)."""
        folded = self.folded()
        with open(path, "w", encoding="utf-8") as fh:
            for stack, count in sorted(folded.items()):
                fh.write(f"{stack} {count}\n")
        return len(folded)

    def flamegraph_html(self, title: str = "repro profile") -> str:
        from repro.obs.flamegraph import flamegraph_html

        return flamegraph_html(self.folded(), title=title)

    def dump_flamegraph(
        self, path: Union[str, os.PathLike], title: str = "repro profile"
    ) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.flamegraph_html(title=title))

    # ------------------------------------------------------------------
    # process-wide registry (the Tracer.install pattern)
    # ------------------------------------------------------------------
    def install(self) -> "Sampler":
        """Make this the process's sampler; returns self for chaining."""
        global _active
        _active = self
        return self

    def uninstall(self) -> None:
        global _active
        if _active is self:
            _active = None


_active: Optional[Sampler] = None


def current_sampler() -> Optional[Sampler]:
    """The installed sampler, or None."""
    return _active


def current_profile_hz() -> float:
    """Sampling rate the scheduler should stamp into tasks (0 = off)."""
    sampler = _active
    return sampler.hz if sampler is not None and sampler.running else 0.0


def merge_into_installed(items: Iterable[Tuple[str, int]]) -> None:
    """Fold worker-drained samples into the installed sampler (if any)."""
    sampler = _active
    if sampler is not None:
        sampler.merge_folded(items)


# ---------------------------------------------------------------------------
# forked-worker side

_worker_sampler: Optional[Sampler] = None


def worker_sync(profile_hz: float) -> List[Tuple[str, int]]:
    """Match the worker's sampler to the driver's rate; drain samples.

    Called by the process-mode worker entry after every task: a positive
    ``profile_hz`` keeps a module-local sampler running at that rate
    (restarting on rate changes), zero stops it.  Either way the
    accumulated folded counts are drained and returned so they travel
    back inside the :class:`~repro.engine.executor.TaskResult`.
    """
    global _worker_sampler
    if profile_hz > 0:
        sampler = _worker_sampler
        if sampler is None or not sampler.running or sampler.hz != profile_hz:
            if sampler is not None:
                sampler.stop()
            sampler = _worker_sampler = Sampler(hz=profile_hz).start()
        return sampler.drain()
    sampler = _worker_sampler
    if sampler is not None:
        _worker_sampler = None
        sampler.stop()
        return sampler.drain()
    return []
