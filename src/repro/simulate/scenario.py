"""Named experiment scenarios.

Presets bundling a cohort prior shape with a response model, matching the
situations the paper's introduction motivates: routine community
surveillance (low uniform prevalence, strong dilution), outbreak contact
tracing (high-risk tier among low-risk), and hospital admission screening
(moderate heterogeneous risk, quantitative assay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.bayes.dilution import (
    BinaryErrorModel,
    DilutionErrorModel,
    LogNormalViralLoadModel,
    ResponseModel,
)
from repro.bayes.priors import PriorSpec
from repro.util.rng import RngLike

__all__ = ["Scenario", "SCENARIOS", "get_scenario"]


@dataclass(frozen=True)
class Scenario:
    """A reproducible (prior, model) pairing for a given cohort size."""

    name: str
    description: str
    make_prior: Callable[[int, RngLike], PriorSpec]
    make_model: Callable[[], ResponseModel]

    def build(self, n: int, rng: RngLike = None):
        """Return ``(prior, model)`` for a cohort of *n* individuals."""
        return self.make_prior(n, rng), self.make_model()


def _community_prior(n: int, rng: RngLike) -> PriorSpec:
    return PriorSpec.uniform(n, 0.02)


def _outbreak_prior(n: int, rng: RngLike) -> PriorSpec:
    n_high = max(1, n // 4)
    return PriorSpec.from_tiers([(n - n_high, 0.01), (n_high, 0.25)])


def _hospital_prior(n: int, rng: RngLike) -> PriorSpec:
    return PriorSpec.sampled(n, 0.08, dispersion=4.0, rng=rng)


SCENARIOS: Dict[str, Scenario] = {
    "community": Scenario(
        name="community",
        description="Routine community surveillance: 2% uniform prevalence, "
        "strongly diluting binary assay.",
        make_prior=_community_prior,
        make_model=lambda: DilutionErrorModel(
            sensitivity=0.98, specificity=0.995, dilution_exponent=0.35
        ),
    ),
    "outbreak": Scenario(
        name="outbreak",
        description="Outbreak contact tracing: a 25%-risk exposed tier inside a "
        "1% background cohort, mildly imperfect assay.",
        make_prior=_outbreak_prior,
        make_model=lambda: BinaryErrorModel(sensitivity=0.99, specificity=0.99),
    ),
    "hospital": Scenario(
        name="hospital",
        description="Hospital admission screening: heterogeneous Beta risks "
        "around 8%, quantitative log-viral-load readout.",
        make_prior=_hospital_prior,
        make_model=lambda: LogNormalViralLoadModel(mu_pos=8.0, sigma_pos=1.2),
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a preset scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}") from None
