"""Line-list workloads: covariates → individual risk priors.

Real surveillance programs don't receive risk probabilities — they
receive a *line list*: per-person records (age band, symptoms, exposure,
vaccination, days since contact).  A risk model turns those covariates
into the prior each individual carries into the lattice.  This module
generates synthetic line lists with plausible covariate structure and
provides the logistic risk model used by the heterogeneous-prior
experiments, exercising the same code path a real deployment would:
records → risks → :class:`~repro.bayes.priors.PriorSpec` → screen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive_int

__all__ = ["PersonRecord", "LogisticRiskModel", "generate_line_list", "line_list_to_prior"]


@dataclass(frozen=True)
class PersonRecord:
    """One line-list row (the covariates a program actually collects)."""

    person_id: int
    age_band: int  # 0: 0-17, 1: 18-39, 2: 40-64, 3: 65+
    symptomatic: bool
    known_exposure: bool
    days_since_exposure: int  # -1 when no known exposure
    vaccinated: bool
    household_size: int


@dataclass
class LogisticRiskModel:
    """Logistic regression from covariates to infection risk.

    Default coefficients encode the qualitative epidemiology the
    scenarios assume: symptoms and recent exposure dominate, vaccination
    protects, risk decays with days since exposure.  Coefficients are
    plain floats so programs can refit them on their own data.
    """

    intercept: float = -4.2  # baseline ≈ 1.5% risk
    symptomatic: float = 2.0
    known_exposure: float = 1.6
    per_day_since_exposure: float = -0.12
    vaccinated: float = -0.9
    age_band: Dict[int, float] = field(
        default_factory=lambda: {0: -0.3, 1: 0.0, 2: 0.15, 3: 0.35}
    )
    per_household_member: float = 0.06

    def risk(self, record: PersonRecord) -> float:
        """Infection probability for one record."""
        z = self.intercept
        if record.symptomatic:
            z += self.symptomatic
        if record.known_exposure:
            z += self.known_exposure
            z += self.per_day_since_exposure * max(0, record.days_since_exposure)
        if record.vaccinated:
            z += self.vaccinated
        z += self.age_band.get(record.age_band, 0.0)
        z += self.per_household_member * max(0, record.household_size - 1)
        return float(1.0 / (1.0 + np.exp(-z)))

    def risks(self, records: Sequence[PersonRecord]) -> np.ndarray:
        return np.array([self.risk(r) for r in records])


def generate_line_list(
    n: int,
    rng: RngLike = None,
    exposure_rate: float = 0.15,
    symptomatic_rate: float = 0.10,
    vaccination_rate: float = 0.6,
) -> List[PersonRecord]:
    """Draw a synthetic line list with correlated covariates.

    Symptoms are more likely among the exposed (2.5×), mirroring how
    line lists look during active contact tracing.
    """
    n = check_positive_int(n, "n")
    gen = as_rng(rng)
    records = []
    for i in range(n):
        exposed = bool(gen.random() < exposure_rate)
        symptom_p = min(1.0, symptomatic_rate * (2.5 if exposed else 1.0))
        records.append(
            PersonRecord(
                person_id=i,
                age_band=int(gen.choice(4, p=[0.2, 0.35, 0.3, 0.15])),
                symptomatic=bool(gen.random() < symptom_p),
                known_exposure=exposed,
                days_since_exposure=int(gen.integers(0, 10)) if exposed else -1,
                vaccinated=bool(gen.random() < vaccination_rate),
                household_size=int(gen.integers(1, 7)),
            )
        )
    return records


def line_list_to_prior(
    records: Sequence[PersonRecord], model: LogisticRiskModel | None = None
) -> PriorSpec:
    """The deployment path: line list → risk model → cohort prior."""
    if not records:
        raise ValueError("empty line list")
    model = model or LogisticRiskModel()
    return PriorSpec(model.risks(records))
