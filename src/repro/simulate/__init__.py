"""Synthetic disease-surveillance workloads.

Stands in for the COVID-19 cohorts and lab assays of the paper's
evaluation: ground-truth infection draws under heterogeneous risk, a
virtual lab applying the dilution response models, and epidemic
prevalence trajectories for longitudinal surveillance scenarios.
"""

from repro.simulate.population import Cohort, draw_truth, draw_truth_from_space, make_cohort
from repro.simulate.testing import TestLab, LabStats
from repro.simulate.epidemic import sir_prevalence, surveillance_priors
from repro.simulate.scenario import Scenario, SCENARIOS, get_scenario
from repro.simulate.linelist import (
    LogisticRiskModel,
    PersonRecord,
    generate_line_list,
    line_list_to_prior,
)

__all__ = [
    "Cohort",
    "draw_truth",
    "draw_truth_from_space",
    "make_cohort",
    "TestLab",
    "LabStats",
    "sir_prevalence",
    "surveillance_priors",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "PersonRecord",
    "LogisticRiskModel",
    "generate_line_list",
    "line_list_to_prior",
]
