"""Epidemic prevalence dynamics for longitudinal surveillance runs.

The surveillance experiments repeat screening day after day while
community prevalence moves.  A discrete-time SIR model supplies the
trajectory; :func:`surveillance_priors` converts it into a dated stream
of cohort priors (with optional risk heterogeneity around the day's
prevalence).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive_int, check_probability

__all__ = ["sir_prevalence", "surveillance_priors"]


def sir_prevalence(
    days: int,
    beta: float = 0.25,
    gamma: float = 0.10,
    i0: float = 0.002,
) -> np.ndarray:
    """Daily infectious fraction I(t) of a discrete-time SIR epidemic.

    Classic deterministic SIR on the unit population::

        S' = -beta S I,   I' = beta S I - gamma I

    with Euler steps of one day.  Defaults give a slow wave peaking near
    ~13% prevalence — a demanding regime for pooling.
    """
    days = check_positive_int(days, "days")
    if beta < 0 or gamma < 0:
        raise ValueError("beta and gamma must be non-negative")
    i0 = check_probability(i0, "i0")
    s, i = 1.0 - i0, i0
    out = np.empty(days, dtype=np.float64)
    for t in range(days):
        out[t] = i
        new_inf = beta * s * i
        new_rec = gamma * i
        s = max(0.0, s - new_inf)
        i = min(1.0, max(0.0, i + new_inf - new_rec))
    return out


def surveillance_priors(
    prevalence_series: np.ndarray,
    cohort_size: int,
    dispersion: float = 8.0,
    rng: RngLike = None,
) -> Iterator[Tuple[int, PriorSpec]]:
    """Yield ``(day, PriorSpec)`` for each day of a prevalence series.

    Individual risks are Beta-distributed around the day's prevalence
    (``dispersion`` = Beta pseudo-count total), reflecting that a real
    surveillance program knows symptoms/exposure, not just one number.
    """
    cohort_size = check_positive_int(cohort_size, "cohort_size")
    gen = as_rng(rng)
    for day, prev in enumerate(np.asarray(prevalence_series, dtype=np.float64)):
        prev = float(min(max(prev, 1e-6), 1 - 1e-6))
        yield day, PriorSpec.sampled(cohort_size, prev, dispersion, gen)
