"""The virtual lab: applies a response model to ground truth.

Every pooled test in an experiment flows through a :class:`TestLab`,
which knows the hidden truth, draws the assay outcome from the response
model (dilution included), and keeps the consumption statistics
(tests, samples pipetted, stages) the efficiency experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple



from repro.bayes.dilution import ResponseModel
from repro.util.rng import RngLike, as_rng

__all__ = ["LabStats", "TestLab"]


@dataclass
class LabStats:
    """Cumulative lab consumption counters."""

    num_tests: int = 0
    num_samples_used: int = 0  # Σ pool sizes: pipetting / reagent volume
    history: List[Tuple[int, Any]] = field(default_factory=list)

    def record(self, pool_mask: int, outcome: Any) -> None:
        self.num_tests += 1
        self.num_samples_used += bin(pool_mask).count("1")
        self.history.append((pool_mask, outcome))


class TestLab:
    """Simulated assay bench bound to one cohort's ground truth."""

    # Not a pytest class, despite the name pattern.
    __test__ = False

    def __init__(self, model: ResponseModel, truth_mask: int, rng: RngLike = None) -> None:
        self.model = model
        self.truth_mask = int(truth_mask)
        self._rng = as_rng(rng)
        self.stats = LabStats()

    def run(self, pool_mask: int) -> Any:
        """Assay one pool; returns the (possibly noisy, diluted) outcome."""
        pool_mask = int(pool_mask)
        if pool_mask <= 0:
            raise ValueError("pool must contain at least one individual")
        pool_size = bin(pool_mask).count("1")
        k_true = bin(pool_mask & self.truth_mask).count("1")
        outcome = self.model.sample(k_true, pool_size, self._rng)
        self.stats.record(pool_mask, outcome)
        return outcome

    def run_batch(self, pool_masks: List[int]) -> List[Any]:
        """Assay a stage's worth of pools (order preserved)."""
        return [self.run(p) for p in pool_masks]

    @property
    def num_tests(self) -> int:
        return self.stats.num_tests
