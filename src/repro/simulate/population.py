"""Cohort generation: priors plus hidden ground truth.

A :class:`Cohort` bundles what the tester knows (the :class:`PriorSpec`)
with what only the simulator knows (the true infection mask).  Truth is
drawn from the prior by default — the well-specified regime — but can be
drawn from *different* risks to study prior misspecification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bayes.priors import PriorSpec
from repro.util.bits import indices_from_mask
from repro.util.rng import RngLike, as_rng

__all__ = ["Cohort", "draw_truth", "make_cohort"]


def draw_truth(risks: np.ndarray, rng: RngLike = None) -> int:
    """Draw a ground-truth infection mask from per-individual risks."""
    gen = as_rng(rng)
    bits = gen.random(len(risks)) < np.asarray(risks, dtype=np.float64)
    mask = 0
    for i in np.flatnonzero(bits):
        mask |= 1 << int(i)
    return mask


@dataclass(frozen=True)
class Cohort:
    """A testing cohort: the prior belief and the hidden truth."""

    prior: PriorSpec
    truth_mask: int

    @property
    def n_items(self) -> int:
        return self.prior.n_items

    @property
    def n_positive(self) -> int:
        return bin(self.truth_mask).count("1")

    @property
    def true_prevalence(self) -> float:
        return self.n_positive / self.n_items

    def positives(self) -> list[int]:
        return indices_from_mask(self.truth_mask)

    def is_positive(self, individual: int) -> bool:
        return bool((self.truth_mask >> individual) & 1)


def draw_truth_from_space(space, rng: RngLike = None) -> int:
    """Draw a ground-truth mask from an arbitrary prior state space.

    Samples one lattice state by its prior probability — the correlated
    analogue of :func:`draw_truth` (which assumes independence).
    """
    gen = as_rng(rng)
    idx = gen.choice(space.size, p=space.probs())
    return int(space.masks[idx])


def make_cohort(
    prior: PriorSpec,
    rng: RngLike = None,
    truth_risks: Optional[np.ndarray] = None,
) -> Cohort:
    """Build a cohort, optionally with misspecified truth risks.

    ``truth_risks`` defaults to the prior's risks (well-specified).  Pass
    a different vector to simulate a tester whose prior is wrong — the
    robustness experiments sweep this gap.
    """
    risks = prior.risks if truth_risks is None else np.asarray(truth_risks, dtype=np.float64)
    if risks.size != prior.n_items:
        raise ValueError("truth_risks length must match the prior")
    return Cohort(prior=prior, truth_mask=draw_truth(risks, rng))
