"""Blocked lattice representation — the unit SBGT distributes.

A :class:`LatticeBlock` is a contiguous chunk of (masks, log_probs).
SBGT's RDDs carry one block per record so partition tasks run whole-block
NumPy kernels; the same blocks also back the serial NumPy baseline, which
keeps the distributed and serial code paths numerically identical.

Block kernels return *partial* statistics (unnormalised log masses,
weighted marginal sums) that compose associatively, which is what lets
SBGT compute them with ``tree_aggregate`` instead of collecting states.

Kernels that need *normalised* probabilities accept a ``log_offset``:
the deferred-normalisation scalar :class:`~repro.sbgt.distributed_lattice.
DistributedLattice` maintains instead of rescaling every block after each
update.  A stored log-prob ``s`` denotes true log-probability
``s - log_offset``; passing the offset into the kernel folds the rescale
into the existing exponentiation, so no extra pass over the data ever
happens.  The default ``0.0`` preserves the original semantics (stored
values are the true log-probs) and skips the subtraction entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.lattice.states import StateSpace
from repro.util.bits import bit_column, intersect_count

__all__ = [
    "LatticeBlock",
    "partition_state_space",
    "merge_blocks",
    "block_log_mass",
    "block_update",
    "block_scale",
    "block_marginal_partial",
    "block_down_set_partial",
    "block_count_distribution_partial",
    "block_entropy_partial",
    "block_histogram_partial",
    "block_count_hists_partial",
    "block_refined_cell_partial",
    "block_top_states",
    "block_filter_consistent",
]

DEFAULT_BLOCK_SIZE = 1 << 16


@dataclass
class LatticeBlock:
    """One chunk of a partitioned state space."""

    n_items: int
    masks: np.ndarray  # uint64
    log_probs: np.ndarray  # float64, unnormalised

    def __post_init__(self) -> None:
        self.masks = np.ascontiguousarray(self.masks, dtype=np.uint64)
        self.log_probs = np.ascontiguousarray(self.log_probs, dtype=np.float64)
        if self.masks.shape != self.log_probs.shape:
            raise ValueError("masks and log_probs must have equal shape")

    @property
    def size(self) -> int:
        return int(self.masks.size)

    def copy(self) -> "LatticeBlock":
        return LatticeBlock(self.n_items, self.masks.copy(), self.log_probs.copy())


def partition_state_space(
    space: StateSpace, block_size: int = DEFAULT_BLOCK_SIZE
) -> List[LatticeBlock]:
    """Split a state space into contiguous blocks of ≤ *block_size* states."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    blocks = []
    for lo in range(0, space.size, block_size):
        hi = min(lo + block_size, space.size)
        blocks.append(
            LatticeBlock(space.n_items, space.masks[lo:hi].copy(), space.log_probs[lo:hi].copy())
        )
    return blocks


def merge_blocks(blocks: Sequence[LatticeBlock]) -> StateSpace:
    """Reassemble blocks into a single (unnormalised) state space."""
    if not blocks:
        raise ValueError("cannot merge zero blocks")
    n_items = blocks[0].n_items
    if any(b.n_items != n_items for b in blocks):
        raise ValueError("blocks disagree on n_items")
    masks = np.concatenate([b.masks for b in blocks])
    log_probs = np.concatenate([b.log_probs for b in blocks])
    return StateSpace(n_items, masks, log_probs)


# ----------------------------------------------------------------------
# associative block kernels (partial statistics)
# ----------------------------------------------------------------------
def block_log_mass(block: LatticeBlock, log_offset: float = 0.0) -> float:
    """log Σ exp(log_probs − log_offset) of the block (−inf when empty)."""
    if block.size == 0:
        return -np.inf
    return float(logsumexp(block.log_probs)) - log_offset


def block_update(block: LatticeBlock, pool_mask: int, log_lik_by_count: np.ndarray) -> LatticeBlock:
    """Bayes-update one block in place (no normalisation — that is global)."""
    ll = np.asarray(log_lik_by_count, dtype=np.float64)
    counts = intersect_count(block.masks, pool_mask)
    block.log_probs += ll[counts]
    return block


def block_scale(block: LatticeBlock, log_shift: float) -> LatticeBlock:
    """Subtract a global log-mass (the distributed normalisation step)."""
    block.log_probs -= log_shift
    return block


def _block_probs(block: LatticeBlock, log_offset: float) -> np.ndarray:
    """Linear probabilities of a block under a deferred normalisation."""
    if log_offset == 0.0:
        return np.exp(block.log_probs)
    return np.exp(block.log_probs - log_offset)


def block_marginal_partial(block: LatticeBlock, log_offset: float = 0.0) -> np.ndarray:
    """Per-individual positive mass within the block."""
    p = _block_probs(block, log_offset)
    out = np.empty(block.n_items, dtype=np.float64)
    for i in range(block.n_items):
        out[i] = p[bit_column(block.masks, i)].sum()
    return out


def block_down_set_partial(
    block: LatticeBlock, pool_masks: np.ndarray, log_offset: float = 0.0
) -> np.ndarray:
    """Down-set mass of each candidate pool within the block.

    The inner loop of distributed test selection.  Iterates candidates
    and masks/sums per row rather than building the full
    (candidates × states) boolean and contracting it — the contraction
    forces a float64 materialisation of the whole matrix, measured ~6×
    slower at 2^20 states.
    """
    p = _block_probs(block, log_offset)
    pools = np.asarray(pool_masks, dtype=np.uint64)
    out = np.empty(pools.size, dtype=np.float64)
    zero = np.uint64(0)
    for c, pool in enumerate(pools):
        out[c] = p[(block.masks & pool) == zero].sum()
    return out


def block_count_distribution_partial(
    block: LatticeBlock, pool_mask: int, pool_size: int, log_offset: float = 0.0
) -> np.ndarray:
    """P(k positives in pool) histogram for the block."""
    counts = intersect_count(block.masks, pool_mask)
    p = _block_probs(block, log_offset)
    return np.bincount(counts, weights=p, minlength=pool_size + 1)


def block_entropy_partial(block: LatticeBlock, log_offset: float = 0.0) -> float:
    """−Σ p log p over the block, in the offset-normalised measure."""
    if block.size == 0:
        return 0.0
    p = _block_probs(block, log_offset)
    nz = p > 0.0
    if log_offset == 0.0:
        return float(-np.sum(p[nz] * block.log_probs[nz]))
    return float(-np.sum(p[nz] * (block.log_probs[nz] - log_offset)))


def block_histogram_partial(
    block: LatticeBlock, edges: np.ndarray, log_offset: float = 0.0
) -> np.ndarray:
    """Linear-mass histogram of the block's log-probs over fixed bin edges.

    Used by distributed pruning to locate a log-prob cutoff without
    sorting the global state set.  Values outside the edges clamp into
    the end bins.  ``edges`` stay in *stored* log-prob space; only the
    masses are offset-normalised.
    """
    if block.size == 0:
        return np.zeros(len(edges) - 1, dtype=np.float64)
    idx = np.clip(np.searchsorted(edges, block.log_probs, side="right") - 1, 0, len(edges) - 2)
    return np.bincount(
        idx, weights=_block_probs(block, log_offset), minlength=len(edges) - 1
    )


def block_count_hists_partial(
    block: LatticeBlock, candidates: np.ndarray, max_size: int, log_offset: float = 0.0
) -> np.ndarray:
    """Per-candidate histograms of positives-in-pool for one block.

    Row ``c`` holds the linear mass of states placing ``k`` positives in
    candidate pool ``c`` (k = 0..max_size; columns beyond a pool's size
    stay zero).  The inner kernel of distributed information-gain
    selection.
    """
    out = np.zeros((candidates.size, max_size + 1))
    if block.size == 0:
        return out
    p = _block_probs(block, log_offset)
    for c, cand in enumerate(candidates):
        counts = intersect_count(block.masks, int(cand))
        out[c, : counts.max() + 1] = np.bincount(counts, weights=p)
    return out


def block_refined_cell_partial(
    block: LatticeBlock,
    chosen: Tuple[int, ...],
    candidates: np.ndarray,
    n_cells: int,
    log_offset: float = 0.0,
) -> np.ndarray:
    """Per-candidate refined-cell masses for one block.

    Returns an (n_candidates, n_cells) array: row ``c`` holds the linear
    mass of every cell of the partition induced by ``chosen + [cand_c]``.
    The chosen-pool cell index is recomputed per block (cheap: the batch
    is at most a handful of pools) so no per-state state needs shuffling.
    The inner kernel of distributed look-ahead batch selection.
    """
    if block.size == 0:
        return np.zeros((candidates.size, n_cells))
    p = _block_probs(block, log_offset)
    cell_idx = np.zeros(block.size, dtype=np.int64)
    for j, pool in enumerate(chosen):
        dirty = (block.masks & np.uint64(pool)) != np.uint64(0)
        cell_idx |= dirty.astype(np.int64) << j
    out = np.empty((candidates.size, n_cells))
    shift = len(chosen)
    for c, cand in enumerate(candidates):
        dirty = (block.masks & cand) != np.uint64(0)
        refined = cell_idx | (dirty.astype(np.int64) << shift)
        out[c] = np.bincount(refined, weights=p, minlength=n_cells)
    return out


def block_top_states(block: LatticeBlock, k: int) -> List[Tuple[int, float]]:
    """Block-local top-k states by unnormalised log-probability."""
    if k <= 0 or block.size == 0:
        return []
    k = min(k, block.size)
    idx = np.argpartition(-block.log_probs, k - 1)[:k]
    idx = idx[np.argsort(-block.log_probs[idx], kind="stable")]
    return [(int(block.masks[i]), float(block.log_probs[i])) for i in idx]


def block_filter_consistent(
    block: LatticeBlock, positive_mask: int = 0, negative_mask: int = 0
) -> LatticeBlock:
    """Keep only states consistent with settled classifications."""
    pos = np.uint64(positive_mask)
    neg = np.uint64(negative_mask)
    keep = ((block.masks & pos) == pos) & ((block.masks & neg) == np.uint64(0))
    return LatticeBlock(block.n_items, block.masks[keep], block.log_probs[keep])


def block_project_out_bit(block: LatticeBlock, bit: int, keep_positive: bool) -> LatticeBlock:
    """Condition on a settled individual and squeeze their bit out.

    Block-local half of :func:`repro.lattice.ops.project_out_bit`;
    renormalisation stays global (absorbed into the caller's deferred
    ``log_offset``).  May return an empty block.
    """
    bit_u = np.uint64(bit)
    one = np.uint64(1)
    has_bit = (block.masks >> bit_u) & one == one
    keep = has_bit if keep_positive else ~has_bit
    masks = block.masks[keep]
    low = masks & ((one << bit_u) - one)
    high = (masks >> (bit_u + one)) << bit_u
    return LatticeBlock(block.n_items - 1, low | high, block.log_probs[keep])
