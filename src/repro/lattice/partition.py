"""Blocked lattice representation — the unit SBGT distributes.

A :class:`LatticeBlock` is a contiguous chunk of (masks, log_probs).
SBGT's RDDs carry one block per record so partition tasks run whole-block
NumPy kernels; the same blocks also back the serial NumPy baseline, which
keeps the distributed and serial code paths numerically identical.

Block kernels return *partial* statistics (unnormalised log masses,
weighted marginal sums) that compose associatively, which is what lets
SBGT compute them with ``tree_aggregate`` instead of collecting states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.lattice.states import StateSpace
from repro.util.bits import bit_column, intersect_count

__all__ = [
    "LatticeBlock",
    "partition_state_space",
    "merge_blocks",
    "block_log_mass",
    "block_update",
    "block_scale",
    "block_marginal_partial",
    "block_down_set_partial",
    "block_count_distribution_partial",
    "block_entropy_partial",
    "block_histogram_partial",
    "block_top_states",
    "block_filter_consistent",
]

DEFAULT_BLOCK_SIZE = 1 << 16


@dataclass
class LatticeBlock:
    """One chunk of a partitioned state space."""

    n_items: int
    masks: np.ndarray  # uint64
    log_probs: np.ndarray  # float64, unnormalised

    def __post_init__(self) -> None:
        self.masks = np.ascontiguousarray(self.masks, dtype=np.uint64)
        self.log_probs = np.ascontiguousarray(self.log_probs, dtype=np.float64)
        if self.masks.shape != self.log_probs.shape:
            raise ValueError("masks and log_probs must have equal shape")

    @property
    def size(self) -> int:
        return int(self.masks.size)

    def copy(self) -> "LatticeBlock":
        return LatticeBlock(self.n_items, self.masks.copy(), self.log_probs.copy())


def partition_state_space(
    space: StateSpace, block_size: int = DEFAULT_BLOCK_SIZE
) -> List[LatticeBlock]:
    """Split a state space into contiguous blocks of ≤ *block_size* states."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    blocks = []
    for lo in range(0, space.size, block_size):
        hi = min(lo + block_size, space.size)
        blocks.append(
            LatticeBlock(space.n_items, space.masks[lo:hi].copy(), space.log_probs[lo:hi].copy())
        )
    return blocks


def merge_blocks(blocks: Sequence[LatticeBlock]) -> StateSpace:
    """Reassemble blocks into a single (unnormalised) state space."""
    if not blocks:
        raise ValueError("cannot merge zero blocks")
    n_items = blocks[0].n_items
    if any(b.n_items != n_items for b in blocks):
        raise ValueError("blocks disagree on n_items")
    masks = np.concatenate([b.masks for b in blocks])
    log_probs = np.concatenate([b.log_probs for b in blocks])
    return StateSpace(n_items, masks, log_probs)


# ----------------------------------------------------------------------
# associative block kernels (partial statistics)
# ----------------------------------------------------------------------
def block_log_mass(block: LatticeBlock) -> float:
    """log Σ exp(log_probs) of the block (−inf for an empty block)."""
    if block.size == 0:
        return -np.inf
    return float(logsumexp(block.log_probs))


def block_update(block: LatticeBlock, pool_mask: int, log_lik_by_count: np.ndarray) -> LatticeBlock:
    """Bayes-update one block in place (no normalisation — that is global)."""
    ll = np.asarray(log_lik_by_count, dtype=np.float64)
    counts = intersect_count(block.masks, pool_mask)
    block.log_probs += ll[counts]
    return block


def block_scale(block: LatticeBlock, log_shift: float) -> LatticeBlock:
    """Subtract a global log-mass (the distributed normalisation step)."""
    block.log_probs -= log_shift
    return block


def block_marginal_partial(block: LatticeBlock) -> np.ndarray:
    """Unnormalised per-individual positive mass within the block."""
    p = np.exp(block.log_probs)
    out = np.empty(block.n_items, dtype=np.float64)
    for i in range(block.n_items):
        out[i] = p[bit_column(block.masks, i)].sum()
    return out


def block_down_set_partial(block: LatticeBlock, pool_masks: np.ndarray) -> np.ndarray:
    """Unnormalised down-set mass of each candidate pool within the block.

    The inner loop of distributed test selection.  Iterates candidates
    and masks/sums per row rather than building the full
    (candidates × states) boolean and contracting it — the contraction
    forces a float64 materialisation of the whole matrix, measured ~6×
    slower at 2^20 states.
    """
    p = np.exp(block.log_probs)
    pools = np.asarray(pool_masks, dtype=np.uint64)
    out = np.empty(pools.size, dtype=np.float64)
    zero = np.uint64(0)
    for c, pool in enumerate(pools):
        out[c] = p[(block.masks & pool) == zero].sum()
    return out


def block_count_distribution_partial(block: LatticeBlock, pool_mask: int, pool_size: int) -> np.ndarray:
    """Unnormalised P(k positives in pool) histogram for the block."""
    counts = intersect_count(block.masks, pool_mask)
    p = np.exp(block.log_probs)
    return np.bincount(counts, weights=p, minlength=pool_size + 1)


def block_entropy_partial(block: LatticeBlock) -> float:
    """−Σ p log p over the block (valid when blocks are globally normalised)."""
    if block.size == 0:
        return 0.0
    p = np.exp(block.log_probs)
    nz = p > 0.0
    return float(-np.sum(p[nz] * block.log_probs[nz]))


def block_histogram_partial(
    block: LatticeBlock, edges: np.ndarray
) -> np.ndarray:
    """Linear-mass histogram of the block's log-probs over fixed bin edges.

    Used by distributed pruning to locate a log-prob cutoff without
    sorting the global state set.  Values outside the edges clamp into
    the end bins.
    """
    if block.size == 0:
        return np.zeros(len(edges) - 1, dtype=np.float64)
    idx = np.clip(np.searchsorted(edges, block.log_probs, side="right") - 1, 0, len(edges) - 2)
    return np.bincount(idx, weights=np.exp(block.log_probs), minlength=len(edges) - 1)


def block_top_states(block: LatticeBlock, k: int) -> List[Tuple[int, float]]:
    """Block-local top-k states by unnormalised log-probability."""
    if k <= 0 or block.size == 0:
        return []
    k = min(k, block.size)
    idx = np.argpartition(-block.log_probs, k - 1)[:k]
    idx = idx[np.argsort(-block.log_probs[idx], kind="stable")]
    return [(int(block.masks[i]), float(block.log_probs[i])) for i in idx]


def block_filter_consistent(
    block: LatticeBlock, positive_mask: int = 0, negative_mask: int = 0
) -> LatticeBlock:
    """Keep only states consistent with settled classifications."""
    pos = np.uint64(positive_mask)
    neg = np.uint64(negative_mask)
    keep = ((block.masks & pos) == pos) & ((block.masks & neg) == np.uint64(0))
    return LatticeBlock(block.n_items, block.masks[keep], block.log_probs[keep])


def block_project_out_bit(block: LatticeBlock, bit: int, keep_positive: bool) -> LatticeBlock:
    """Condition on a settled individual and squeeze their bit out.

    Block-local half of :func:`repro.lattice.ops.project_out_bit`;
    renormalisation stays global (the usual two-pass).  May return an
    empty block.
    """
    bit_u = np.uint64(bit)
    one = np.uint64(1)
    has_bit = (block.masks >> bit_u) & one == one
    keep = has_bit if keep_positive else ~has_bit
    masks = block.masks[keep]
    low = masks & ((one << bit_u) - one)
    high = (masks >> (bit_u + one)) << bit_u
    return LatticeBlock(block.n_items - 1, low | high, block.log_probs[keep])
