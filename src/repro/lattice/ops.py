"""Vectorised lattice-model operations.

These are the three operation classes SBGT's evaluation times:

* *manipulation* — :func:`posterior_update`, :func:`normalize_log_probs`,
  :func:`condition_on_classification` (and pruning, in
  :mod:`repro.lattice.prune`);
* *test selection* — :func:`down_set_mass` / :func:`up_set_mass`, the
  quantities the Bayesian Halving Algorithm ranks candidate pools by;
* *statistical analysis* — :func:`marginals`, :func:`entropy`,
  :func:`map_state`, :func:`top_states`, :func:`kl_divergence`.

Every function is a pure NumPy sweep over the mask/log-prob arrays.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.special import logsumexp

from repro.lattice.states import StateSpace
from repro.util.bits import bit_column, intersect_count

__all__ = [
    "normalize_log_probs",
    "entropy",
    "marginals",
    "map_state",
    "top_states",
    "down_set_mass",
    "up_set_mass",
    "pool_count_distribution",
    "posterior_update",
    "condition_on_classification",
    "kl_divergence",
]


def normalize_log_probs(log_probs: np.ndarray) -> np.ndarray:
    """Shift log-probabilities so they sum (in linear space) to one."""
    lp = np.asarray(log_probs, dtype=np.float64)
    total = logsumexp(lp)
    if not np.isfinite(total):
        raise ValueError("cannot normalize: total mass is zero or non-finite")
    return lp - total


def entropy(space: StateSpace) -> float:
    """Shannon entropy (nats) of the normalised state distribution."""
    p = space.probs()
    nz = p[p > 0.0]
    return float(-np.sum(nz * np.log(nz)))


def marginals(space: StateSpace) -> np.ndarray:
    """Per-individual posterior infection probability.

    ``marginals(space)[i] = P(individual i infected)`` — the quantity the
    classification thresholds act on.
    """
    p = space.probs()
    out = np.empty(space.n_items, dtype=np.float64)
    for i in range(space.n_items):
        out[i] = p[bit_column(space.masks, i)].sum()
    return out


def map_state(space: StateSpace) -> int:
    """Most probable state (maximum a posteriori mask)."""
    return int(space.masks[int(np.argmax(space.log_probs))])


def top_states(space: StateSpace, k: int) -> List[Tuple[int, float]]:
    """The *k* highest-probability states as ``(mask, probability)``."""
    if k <= 0:
        return []
    k = min(k, space.size)
    p = space.probs()
    idx = np.argpartition(-p, k - 1)[:k]
    idx = idx[np.argsort(-p[idx], kind="stable")]
    return [(int(space.masks[i]), float(p[i])) for i in idx]


def down_set_mass(space: StateSpace, pool_mask: int) -> float:
    """Posterior mass of the down-set {states with no positive in pool}.

    This is ``P(pool is truly all-negative)`` — the halving statistic:
    BHA drives it toward 1/2 before each test.
    """
    p = space.probs()
    clean = (space.masks & np.uint64(pool_mask)) == np.uint64(0)
    return float(p[clean].sum())


def up_set_mass(space: StateSpace, pool_mask: int) -> float:
    """Posterior mass of states with at least one positive in the pool."""
    return 1.0 - down_set_mass(space, pool_mask)


def pool_count_distribution(space: StateSpace, pool_mask: int) -> np.ndarray:
    """Distribution of the number of positives ``k`` inside a pool.

    Entry ``k`` is ``P(|s ∩ pool| = k)`` for ``k`` in ``0..|pool|`` —
    exactly the mixing weights of the predictive distribution of a pooled
    test under a dilution model.
    """
    pool_size = int(bin(int(pool_mask)).count("1"))
    counts = intersect_count(space.masks, pool_mask)
    p = space.probs()
    return np.bincount(counts, weights=p, minlength=pool_size + 1)


def posterior_update(
    space: StateSpace, pool_mask: int, log_lik_by_count: np.ndarray
) -> StateSpace:
    """Bayes update for a pooled-test outcome (in place, returns space).

    ``log_lik_by_count[k]`` must be the log-likelihood of the observed
    outcome given ``k`` positives in the pool (precomputed by the dilution
    model for ``k = 0..|pool|``).  The update is a gather + add over the
    whole state array — the single hottest kernel in the system.
    """
    ll = np.asarray(log_lik_by_count, dtype=np.float64)
    counts = intersect_count(space.masks, pool_mask)
    if counts.max(initial=0) >= ll.size:
        raise ValueError(
            f"log_lik_by_count has {ll.size} entries but a state places "
            f"{int(counts.max())} positives in the pool"
        )
    space.log_probs += ll[counts]
    space.log_probs = normalize_log_probs(space.log_probs)
    return space


def condition_on_classification(
    space: StateSpace, positive_mask: int = 0, negative_mask: int = 0
) -> StateSpace:
    """Restrict the lattice to states consistent with settled diagnoses.

    States missing a confirmed-positive bit, or containing a
    confirmed-negative bit, are removed from the support (the lattice
    interval ``[positive_mask, complement(negative_mask)]``).
    """
    if int(positive_mask) & int(negative_mask):
        raise ValueError("an individual cannot be classified both ways")
    pos = np.uint64(positive_mask)
    neg = np.uint64(negative_mask)
    keep = ((space.masks & pos) == pos) & ((space.masks & neg) == np.uint64(0))
    if not keep.any():
        raise ValueError("conditioning removed every state (contradictory evidence)")
    masks = space.masks[keep]
    log_probs = normalize_log_probs(space.log_probs[keep])
    return StateSpace(space.n_items, masks, log_probs)


def project_out_bit(space: StateSpace, bit: int, keep_positive: bool) -> StateSpace:
    """Condition on individual *bit*'s settled status and remove the bit.

    The lattice interval consistent with the settled diagnosis is kept
    (bit = 1 for a settled positive, 0 for a settled negative), then the
    bit is squeezed out of every mask, halving the representable index
    space: remaining individuals above *bit* shift down one position.
    This is the "lattice contraction" manipulation that keeps sequential
    screens tractable as diagnoses settle — the caller must track the
    index remapping.
    """
    if not 0 <= bit < space.n_items:
        raise ValueError(f"bit {bit} outside [0, {space.n_items})")
    if space.n_items == 1:
        raise ValueError("cannot project the last remaining individual out")
    bit_u = np.uint64(bit)
    one = np.uint64(1)
    has_bit = (space.masks >> bit_u) & one == one
    keep = has_bit if keep_positive else ~has_bit
    if not keep.any():
        raise ValueError("projection removed every state (contradictory evidence)")
    masks = space.masks[keep]
    low = masks & ((one << bit_u) - one)
    high = (masks >> (bit_u + one)) << bit_u
    new_masks = low | high
    log_probs = normalize_log_probs(space.log_probs[keep])
    return StateSpace(space.n_items - 1, new_masks, log_probs)


def kl_divergence(p_space: StateSpace, q_space: StateSpace) -> float:
    """KL(p ‖ q) between two distributions on the *same* mask family."""
    if p_space.size != q_space.size or not np.array_equal(p_space.masks, q_space.masks):
        raise ValueError("KL divergence requires identical state supports")
    lp = normalize_log_probs(p_space.log_probs)
    lq = normalize_log_probs(q_space.log_probs)
    p = np.exp(lp)
    mask = p > 0.0
    return float(np.sum(p[mask] * (lp[mask] - lq[mask])))
