"""Lattice models: the belief-state representation of Bayesian group testing.

A *state* is a candidate infection pattern — the subset of individuals who
are truly positive — encoded as a ``uint64`` bit mask.  The family of all
states under consideration, with a (log-space) probability per state, is a
:class:`StateSpace`; the partial order by subset inclusion makes it the
Boolean lattice the Biostatistics'22 framework is built on.  Up-sets and
down-sets of pooled tests, marginalisation, conditioning and pruning are
provided as vectorised kernels.
"""

from repro.lattice.states import StateSpace
from repro.lattice.builder import build_dense_prior, build_restricted_prior, enumerate_restricted_masks
from repro.lattice.ops import (
    normalize_log_probs,
    entropy,
    marginals,
    map_state,
    top_states,
    down_set_mass,
    up_set_mass,
    pool_count_distribution,
    posterior_update,
    condition_on_classification,
    project_out_bit,
    kl_divergence,
)
from repro.lattice.prune import prune_below, prune_by_mass, PruneStats
from repro.lattice.partition import LatticeBlock, partition_state_space, merge_blocks
from repro.lattice.serialize import (
    load_posterior,
    load_state_space,
    save_posterior,
    save_state_space,
)

__all__ = [
    "StateSpace",
    "build_dense_prior",
    "build_restricted_prior",
    "enumerate_restricted_masks",
    "normalize_log_probs",
    "entropy",
    "marginals",
    "map_state",
    "top_states",
    "down_set_mass",
    "up_set_mass",
    "pool_count_distribution",
    "posterior_update",
    "condition_on_classification",
    "project_out_bit",
    "kl_divergence",
    "prune_by_mass",
    "prune_below",
    "PruneStats",
    "PruneResult",
    "LatticeBlock",
    "partition_state_space",
    "merge_blocks",
    "save_state_space",
    "load_state_space",
    "save_posterior",
    "load_posterior",
]


def __getattr__(name: str):
    if name == "PruneResult":
        # Deprecated alias; the warning fires in repro.lattice.prune.
        from repro.lattice import prune as _prune

        return _prune.PruneResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
