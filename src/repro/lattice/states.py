"""The :class:`StateSpace`: masks + log-probabilities.

Log space is used throughout: a sequential screen can apply dozens of
likelihood updates, and products of small sensitivities underflow float64
quickly in linear space.  Normalisation is a ``logsumexp`` away and only
done when a caller needs calibrated masses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np
from scipy.special import logsumexp

from repro.util.bits import MAX_ITEMS, popcount64

__all__ = ["StateSpace"]


@dataclass
class StateSpace:
    """A weighted family of infection states over ``n_items`` individuals.

    Attributes
    ----------
    n_items:
        Number of individuals (bit positions used), at most 64.
    masks:
        ``uint64`` array of states; bit ``i`` set = individual ``i``
        infected.  Must be duplicate-free (not re-checked in hot paths).
    log_probs:
        Unnormalised log-probability per state (same length as masks).
    """

    n_items: int
    masks: np.ndarray
    log_probs: np.ndarray

    def __post_init__(self) -> None:
        if not 1 <= self.n_items <= MAX_ITEMS:
            raise ValueError(f"n_items must be in [1, {MAX_ITEMS}]")
        self.masks = np.ascontiguousarray(self.masks, dtype=np.uint64)
        self.log_probs = np.ascontiguousarray(self.log_probs, dtype=np.float64)
        if self.masks.shape != self.log_probs.shape or self.masks.ndim != 1:
            raise ValueError("masks and log_probs must be 1-D arrays of equal length")
        if self.masks.size == 0:
            raise ValueError("a state space must contain at least one state")
        if self.n_items < MAX_ITEMS and np.any(self.masks >> np.uint64(self.n_items)):
            raise ValueError("mask uses bits beyond n_items")

    # ------------------------------------------------------------------
    @classmethod
    def dense(cls, n_items: int, log_probs: Optional[np.ndarray] = None) -> "StateSpace":
        """The full Boolean lattice 2^{n_items} (uniform if no weights)."""
        if not 1 <= n_items <= 30:
            raise ValueError("dense enumeration supported for n_items in [1, 30]")
        size = 1 << n_items
        masks = np.arange(size, dtype=np.uint64)
        if log_probs is None:
            log_probs = np.full(size, -np.log(size))
        return cls(n_items, masks, np.asarray(log_probs, dtype=np.float64))

    @classmethod
    def from_masks(
        cls, n_items: int, masks: Iterable[int], log_probs: Optional[np.ndarray] = None
    ) -> "StateSpace":
        m = np.asarray(list(masks) if not isinstance(masks, np.ndarray) else masks, dtype=np.uint64)
        if log_probs is None:
            log_probs = np.full(m.size, -np.log(max(m.size, 1)))
        return cls(n_items, m, np.asarray(log_probs, dtype=np.float64))

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of states currently represented."""
        return int(self.masks.size)

    @property
    def log_total_mass(self) -> float:
        """log Σ exp(log_probs) — 0.0 when normalised."""
        return float(logsumexp(self.log_probs))

    def probs(self) -> np.ndarray:
        """Normalised linear-space probabilities."""
        return np.exp(self.log_probs - self.log_total_mass)

    def positive_counts(self) -> np.ndarray:
        """Per-state number of infected individuals (lattice rank)."""
        return popcount64(self.masks)

    def copy(self) -> "StateSpace":
        return StateSpace(self.n_items, self.masks.copy(), self.log_probs.copy())

    def is_normalized(self, atol: float = 1e-9) -> bool:
        return abs(self.log_total_mass) <= atol

    # Convenience delegates (implementations live in repro.lattice.ops;
    # imported lazily to keep the dataclass import-light).
    def normalize(self) -> "StateSpace":
        from repro.lattice.ops import normalize_log_probs

        self.log_probs = normalize_log_probs(self.log_probs)
        return self

    def marginals(self) -> np.ndarray:
        from repro.lattice.ops import marginals

        return marginals(self)

    def entropy(self) -> float:
        from repro.lattice.ops import entropy

        return entropy(self)

    def map_state(self) -> int:
        from repro.lattice.ops import map_state

        return map_state(self)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StateSpace(n_items={self.n_items}, size={self.size})"
