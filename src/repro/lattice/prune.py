"""Mass-based lattice pruning.

Sequential screens concentrate posterior mass onto a few states quickly;
carrying the full lattice after that wastes every subsequent sweep.
Pruning keeps the smallest state set holding at least ``1 - epsilon`` of
the posterior (plus anything tied at the boundary), renormalises, and
reports what was dropped so sessions can bound the approximation error
they have accumulated — the paper's lattice "manipulation" class includes
exactly this shrinking of the model.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.lattice.ops import normalize_log_probs
from repro.lattice.states import StateSpace

__all__ = ["PruneStats", "PruneResult", "prune_by_mass", "prune_below"]


@dataclass(frozen=True)
class PruneStats:
    """Outcome of a pruning pass (serial or distributed).

    The serial kernels (:func:`prune_by_mass`, :func:`prune_below`)
    attach the surviving :class:`StateSpace` as ``space``; distributed
    and backend prunes mutate in place and leave ``space`` as ``None``.
    """

    kept_states: int
    dropped_states: int
    dropped_mass: float  # posterior mass removed (pre-renormalisation)
    space: Optional[StateSpace] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PruneStats(kept={self.kept_states}, dropped={self.dropped_states}, "
            f"mass={self.dropped_mass:.3g})"
        )


def __getattr__(name: str):
    if name == "PruneResult":
        warnings.warn(
            "PruneResult is deprecated; use repro.lattice.PruneStats "
            "(same fields, `space` moved last and optional)",
            DeprecationWarning,
            stacklevel=2,
        )
        return PruneStats
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def prune_by_mass(space: StateSpace, epsilon: float) -> PruneStats:
    """Keep the smallest high-probability set covering ``1 - epsilon`` mass.

    States are ranked by probability; the prefix reaching the target mass
    survives.  ``epsilon = 0`` only removes states of exactly zero
    probability.  The MAP state always survives.
    """
    if not 0.0 <= epsilon < 1.0:
        raise ValueError("epsilon must be in [0, 1)")
    p = space.probs()
    order = np.argsort(-p, kind="stable")
    cum = np.cumsum(p[order])
    # Index of the first position where cumulative mass reaches target:
    # everything up to and including it is kept.
    target = 1.0 - epsilon
    cut = int(np.searchsorted(cum, target, side="left"))
    cut = min(cut, p.size - 1)
    keep_idx = order[: cut + 1]
    if epsilon == 0.0:
        keep_idx = order[p[order] > 0.0]
        if keep_idx.size == 0:
            keep_idx = order[:1]
    keep_idx = np.sort(keep_idx)  # preserve the original linear extension
    dropped_mass = float(1.0 - p[keep_idx].sum())
    new_space = StateSpace(
        space.n_items,
        space.masks[keep_idx],
        normalize_log_probs(space.log_probs[keep_idx]),
    )
    return PruneStats(
        space=new_space,
        kept_states=int(keep_idx.size),
        dropped_states=int(p.size - keep_idx.size),
        dropped_mass=max(0.0, dropped_mass),
    )


def prune_below(space: StateSpace, floor: float) -> PruneStats:
    """Drop states with posterior probability strictly below *floor*."""
    if not 0.0 <= floor < 1.0:
        raise ValueError("floor must be in [0, 1)")
    p = space.probs()
    keep = p >= floor
    if not keep.any():
        keep[int(np.argmax(p))] = True
    keep_idx = np.flatnonzero(keep)
    dropped_mass = float(p[~keep].sum())
    new_space = StateSpace(
        space.n_items,
        space.masks[keep_idx],
        normalize_log_probs(space.log_probs[keep_idx]),
    )
    return PruneStats(
        space=new_space,
        kept_states=int(keep_idx.size),
        dropped_states=int(p.size - keep_idx.size),
        dropped_mass=dropped_mass,
    )
