"""Lattice persistence: save/load state spaces and posteriors.

A long surveillance screen is interruptible work: results arrive over
hours and the program must survive restarts.  State spaces serialize to
NumPy's ``.npz`` (masks + log-probs + n_items); a posterior checkpoint
additionally carries its evidence trail so a resumed session reports the
complete test history.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.lattice.states import StateSpace

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids lattice↔bayes cycle)
    from repro.bayes.dilution import ResponseModel
    from repro.bayes.posterior import Posterior

__all__ = ["save_state_space", "load_state_space", "save_posterior", "load_posterior"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_state_space(space: StateSpace, path: PathLike) -> None:
    """Write a state space to ``.npz`` (compressed)."""
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        n_items=np.int64(space.n_items),
        masks=space.masks,
        log_probs=space.log_probs,
    )


def load_state_space(path: PathLike) -> StateSpace:
    """Read a state space written by :func:`save_state_space`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported lattice file version {version}")
        return StateSpace(
            int(data["n_items"]),
            data["masks"].copy(),
            data["log_probs"].copy(),
        )


def save_posterior(posterior: "Posterior", path: PathLike) -> None:
    """Checkpoint a posterior: lattice + evidence trail (not the model).

    The response model is configuration, not state — the loader takes it
    as an argument, so checkpoints stay valid across code upgrades of
    the model classes.  Contracted (settled) individuals are not yet
    supported: checkpoint before enabling contraction or settle after
    restore.
    """
    if posterior._index.any_settled:
        raise ValueError("checkpointing a contracted posterior is not supported")
    trail = [
        {
            "stage": r.stage,
            "pool_mask": int(r.pool_mask),
            "pool_size": r.pool_size,
            "outcome": r.outcome if isinstance(r.outcome, bool) else float(r.outcome),
            "log_predictive": r.log_predictive,
            "entropy_before": r.entropy_before,
            "entropy_after": r.entropy_after,
        }
        for r in posterior.log.records
    ]
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        n_items=np.int64(posterior.space.n_items),
        masks=posterior.space.masks,
        log_probs=posterior.space.log_probs,
        stage=np.int64(posterior._stage),
        track_entropy=np.bool_(posterior.track_entropy),
        trail_json=np.bytes_(json.dumps(trail).encode()),
    )


def load_posterior(path: PathLike, model: "ResponseModel") -> "Posterior":
    """Restore a checkpointed posterior against the given response model."""
    from repro.bayes.evidence import TestRecord
    from repro.bayes.posterior import Posterior

    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        space = StateSpace(
            int(data["n_items"]), data["masks"].copy(), data["log_probs"].copy()
        )
        posterior = Posterior(space, model, track_entropy=bool(data["track_entropy"]))
        posterior._stage = int(data["stage"])
        for rec in json.loads(bytes(data["trail_json"]).decode()):
            posterior.log.append(
                TestRecord(
                    stage=rec["stage"],
                    pool_mask=rec["pool_mask"],
                    pool_size=rec["pool_size"],
                    outcome=rec["outcome"],
                    log_predictive=rec["log_predictive"],
                    entropy_before=rec["entropy_before"],
                    entropy_after=rec["entropy_after"],
                )
            )
    return posterior
