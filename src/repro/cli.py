"""Command-line interface: ``python -m repro <command>``.

Commands covering the workflows a surveillance program actually runs:

* ``screen``       — classify one simulated cohort and print the report;
* ``calculator``   — the pool/don't-pool decision table over prevalences;
* ``surveillance`` — a multi-day campaign over an SIR epidemic wave;
* ``surveil``      — a multi-site campaign with Thompson-sampling
  budget allocation (:mod:`repro.surveil`);
* ``scenarios``    — list the named (prior, assay) presets;
* ``metrics``      — run a reference screen and print the metrics hub
  (``--prom`` for the Prometheus text exposition);
* ``serve``        — the asyncio JSON API server (``repro.serve``);
* ``trace``        — summarize a JSONL trace captured with ``--trace``
  (or :meth:`Tracer.dump_jsonl` / :meth:`MetricsRegistry.dump_jsonl`);
* ``lint``         — static closure-safety / engine-concurrency analysis
  (:mod:`repro.lint`); exit 0 clean, 1 findings, 2 usage error.

Every command is deterministic given ``--seed``.  ``screen --json`` and
``calculator --json`` print exactly the payload the server returns for
the equivalent request, so CLI runs and API responses are diffable.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional

from repro.bayes.dilution import ResponseModel
from repro.bayes.priors import PriorSpec
from repro.engine import Context
from repro.halving.policy import BHAPolicy, SelectionPolicy
from repro.metrics.reporting import format_table
from repro.sbgt.config import SBGTConfig
from repro.sbgt.session import SBGTSession
from repro.simulate.scenario import SCENARIOS, get_scenario
from repro.workflows.calculator import format_calculator_table, pooling_calculator
from repro.workflows.payloads import (
    BACKEND_HELP,
    POLICY_HELP,
    dump_payload,
    make_model,
    make_policy,
)
from repro.surveil import ALLOCATOR_HELP, FLEET_KINDS
from repro.workflows.surveillance import run_surveillance

__all__ = ["main", "build_parser"]


def _make_policy(name: str) -> SelectionPolicy:
    try:
        return make_policy(name)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _policy_spec(policy) -> str:
    """Recover the API spelling from a parsed ``--policy`` value."""
    name = policy.name if isinstance(policy, SelectionPolicy) else policy
    return "hybrid" if name == "hybrid-auto" else name


def _make_model(args: argparse.Namespace) -> ResponseModel:
    return make_model(args.assay, args.sensitivity, args.specificity, args.dilution)


def _assay_spec(args: argparse.Namespace):
    from repro.serve.protocol import AssaySpec

    return AssaySpec(
        assay=args.assay,
        sensitivity=args.sensitivity,
        specificity=args.specificity,
        dilution=args.dilution,
    )


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=["dense", "sparse", "particle"],
                   default="dense",
                   help=f"posterior representation ({BACKEND_HELP})")


def _add_profile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--profile", metavar="PREFIX", default=None,
                   help="attach the sampling profiler; writes PREFIX.collapsed "
                        "(flamegraph.pl/speedscope input) and PREFIX.html "
                        "(self-contained flamegraph)")
    p.add_argument("--profile-hz", type=float, default=100.0,
                   help="profiler sampling rate (default 100)")


@contextlib.contextmanager
def _profiled(args: argparse.Namespace, title: str):
    """Sample the wrapped command run and write the profile artifacts.

    Engine work in serial/thread mode is sampled directly; pre-forked
    process workers relay their samples through task results (see
    :mod:`repro.obs.sampler`).
    """
    from repro.obs.sampler import Sampler

    sampler = Sampler(hz=args.profile_hz).start().install()
    try:
        yield
    finally:
        sampler.stop()
        sampler.uninstall()
        collapsed, html = f"{args.profile}.collapsed", f"{args.profile}.html"
        try:
            stacks = sampler.dump_collapsed(collapsed)
            sampler.dump_flamegraph(html, title=title)
        except OSError as exc:
            print(f"error: cannot write profile to {args.profile}.*: {exc}",
                  file=sys.stderr)
        else:
            print(f"profile: {sampler.sample_count} samples over {stacks} "
                  f"stacks -> {collapsed}, {html}", file=sys.stderr)


def _add_assay_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--assay", choices=["perfect", "binary", "dilution"], default="dilution")
    p.add_argument("--sensitivity", type=float, default=0.98)
    p.add_argument("--specificity", type=float, default=0.995)
    p.add_argument("--dilution", type=float, default=0.3, help="dilution exponent δ")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SBGT: scaling Bayesian-based group testing (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_screen = sub.add_parser("screen", help="classify one simulated cohort")
    p_screen.add_argument("--cohort", type=int, default=16,
                          help="cohort size (<= 24 dense, larger with an "
                               "approximate backend)")
    p_screen.add_argument("--prevalence", type=float, default=0.02)
    p_screen.add_argument("--scenario", choices=sorted(SCENARIOS), default=None,
                          help="use a named scenario instead of --prevalence/assay")
    p_screen.add_argument("--policy", type=_make_policy, default="bha",
                          help=f"selection policy ({POLICY_HELP})")
    p_screen.add_argument("--seed", type=int, default=0)
    p_screen.add_argument("--max-stages", type=int, default=60)
    p_screen.add_argument("--workers", type=int, default=4)
    p_screen.add_argument("--compact", action="store_true",
                          help="enable lattice contraction of settled diagnoses")
    p_screen.add_argument("--trace", metavar="PATH", default=None,
                          help="dump a phase-tagged JSONL trace of the screen")
    p_screen.add_argument("--chrome", metavar="PATH", default=None,
                          help="export a Chrome trace-event JSON of the screen "
                               "(open in chrome://tracing or Perfetto)")
    p_screen.add_argument("--json", action="store_true",
                          help="emit the API payload (same shape as POST /screen)")
    _add_profile_args(p_screen)
    _add_backend_arg(p_screen)
    _add_assay_args(p_screen)

    p_calc = sub.add_parser("calculator", help="pool/don't-pool decision table")
    p_calc.add_argument("--cohort", type=int, default=12)
    p_calc.add_argument("--prevalences", type=float, nargs="+",
                        default=[0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.30])
    p_calc.add_argument("--replications", type=int, default=15)
    p_calc.add_argument("--policy", type=_make_policy, default="bha",
                        help=f"selection policy ({POLICY_HELP})")
    p_calc.add_argument("--seed", type=int, default=0)
    p_calc.add_argument("--json", action="store_true",
                        help="emit the API payload (same shape as POST /calculator)")
    _add_backend_arg(p_calc)
    _add_assay_args(p_calc)

    p_surv = sub.add_parser("surveillance", help="multi-day campaign over an epidemic wave")
    p_surv.add_argument("--days", type=int, default=30)
    p_surv.add_argument("--cohort", type=int, default=12)
    p_surv.add_argument("--beta", type=float, default=0.35, help="SIR transmission rate")
    p_surv.add_argument("--gamma", type=float, default=0.10, help="SIR recovery rate")
    p_surv.add_argument("--i0", type=float, default=0.005, help="initial prevalence")
    p_surv.add_argument("--seed", type=int, default=0)
    _add_backend_arg(p_surv)
    _add_assay_args(p_surv)

    p_sv = sub.add_parser(
        "surveil", help="multi-site campaign with bandit budget allocation"
    )
    p_sv.add_argument("--sites", type=int, default=6, help="fleet size (<= 64)")
    p_sv.add_argument("--cohort", type=int, default=10, help="cohort size per site")
    p_sv.add_argument("--rounds", type=int, default=8)
    p_sv.add_argument("--budget", type=int, default=6,
                      help="screens per round across the fleet")
    p_sv.add_argument("--allocator", default="thompson",
                      help=f"budget allocator ({ALLOCATOR_HELP})")
    p_sv.add_argument("--fleet", choices=list(FLEET_KINDS), default="heterogeneous",
                      help="fleet generator (site mix and prevalence dynamics)")
    p_sv.add_argument("--policy", type=_make_policy, default="bha",
                      help=f"selection policy ({POLICY_HELP})")
    p_sv.add_argument("--seed", type=int, default=0)
    p_sv.add_argument("--max-stages", type=int, default=40)
    p_sv.add_argument("--workers", type=int, default=4)
    p_sv.add_argument("--chrome", metavar="PATH", default=None,
                      help="export a Chrome trace-event JSON of the campaign "
                           "(open in chrome://tracing or Perfetto)")
    p_sv.add_argument("--json", action="store_true",
                      help="emit the API payload (same shape as POST /surveil)")
    _add_profile_args(p_sv)
    _add_backend_arg(p_sv)
    _add_assay_args(p_sv)
    # Match the server-side default so `repro surveil --json` with no
    # flags is byte-identical to an empty-body POST /surveil.
    p_sv.set_defaults(assay="binary")

    sub.add_parser("scenarios", help="list named scenario presets")

    p_metrics = sub.add_parser(
        "metrics", help="run a reference screen and print the metrics hub"
    )
    p_metrics.add_argument("--prom", action="store_true",
                           help="Prometheus text exposition instead of JSON")
    p_metrics.add_argument("--cohort", type=int, default=12)
    p_metrics.add_argument("--prevalence", type=float, default=0.05)
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--workers", type=int, default=4)
    p_metrics.add_argument("--mode", choices=["serial", "threads", "processes"],
                           default="threads",
                           help="executor backend of the reference screen")

    p_serve = sub.add_parser("serve", help="run the asyncio JSON API server")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="listen port (0 picks an ephemeral port)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="engine parallelism of the shared context")
    p_serve.add_argument("--compute-threads", type=int, default=4,
                         help="threads running workload jobs off the event loop")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="micro-batcher collection window (0 disables)")
    p_serve.add_argument("--cache-entries", type=int, default=256,
                         help="result-cache capacity (0 disables caching)")
    p_serve.add_argument("--max-inflight", type=int, default=32,
                         help="admission bound before requests get 429s")
    p_serve.add_argument("--max-sessions", type=int, default=64)
    p_serve.add_argument("--session-ttl", type=float, default=900.0,
                         help="idle session expiry, seconds")
    p_serve.add_argument("--engine-mode", choices=["serial", "threads", "processes"],
                         default="threads",
                         help="executor backend of the shared engine context")
    p_serve.add_argument("--flight-capacity", type=int, default=4096,
                         help="flight-recorder ring size behind /debug endpoints")
    p_serve.add_argument("--slow-threshold", type=float, default=0.1,
                         help="ops slower than this (s) land in GET /debug/slow")
    p_serve.add_argument("--backend", choices=["dense", "sparse", "particle"],
                         default="dense",
                         help="default posterior backend for requests that "
                              f"don't name one ({BACKEND_HELP})")

    p_trace = sub.add_parser("trace", help="summarize or convert a dumped JSONL trace")
    p_trace.add_argument("path", help="trace file written by --trace or dump_jsonl()")
    p_trace.add_argument("--chrome", metavar="OUT", default=None,
                         help="convert to Chrome trace-event JSON instead of summarizing")
    p_trace.add_argument("--validate", action="store_true",
                         help="with --chrome: structurally validate the exported trace")

    p_lint = sub.add_parser(
        "lint", help="static closure-safety / engine-concurrency analysis"
    )
    p_lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories (default: src examples benchmarks, "
                             "whichever exist)")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"], default="text",
                        dest="fmt", help="report format")
    p_lint.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to check exclusively "
                             "(e.g. C101,C102)")
    p_lint.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    p_lint.add_argument("--explain", metavar="RULE", default=None,
                        help="print a rule's rationale with bad/good examples "
                             "('all' prints every rule) and exit")
    p_lint.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze files on N worker processes (default: 1)")
    p_lint.add_argument("--cache", metavar="FILE", default=None,
                        help="per-file mtime cache; reused when the analysis "
                             "configuration and engine call graph are unchanged")
    p_lint.add_argument("--baseline", metavar="FILE", default=None,
                        help="suppress findings recorded in FILE; only new "
                             "findings are reported and gate the exit code")
    p_lint.add_argument("--write-baseline", metavar="FILE", default=None,
                        dest="write_baseline",
                        help="record current findings to FILE and exit 0")
    p_lint.add_argument("--output", metavar="FILE", default=None,
                        help="write the report to FILE instead of stdout")
    return parser


def _cmd_screen(args: argparse.Namespace) -> int:
    from repro.serve.protocol import MAX_COHORT, MAX_COHORT_APPROX

    limit = MAX_COHORT if args.backend == "dense" else MAX_COHORT_APPROX
    if args.cohort < 1 or args.cohort > limit:
        hint = "dense lattice" if args.backend == "dense" else f"{args.backend} backend"
        print(f"error: --cohort must be in [1, {limit}] ({hint})", file=sys.stderr)
        return 2
    if args.json:
        from repro.serve.protocol import ScreenRequest

        request = ScreenRequest(
            cohort=args.cohort,
            prevalence=args.prevalence,
            scenario=args.scenario,
            policy=_policy_spec(args.policy),
            seed=args.seed,
            max_stages=args.max_stages,
            compact=args.compact,
            backend=args.backend,
            assay=_assay_spec(args),
        )
        if args.backend == "dense":
            with Context(mode="threads", parallelism=args.workers) as ctx:
                payload = request.execute(ctx)
        else:
            payload = request.execute(None)
        print(dump_payload(payload), end="")
        return 0
    if args.scenario:
        prior, model = get_scenario(args.scenario).build(args.cohort, rng=args.seed)
    else:
        prior = PriorSpec.uniform(args.cohort, args.prevalence)
        model = _make_model(args)
    policy = args.policy if isinstance(args.policy, SelectionPolicy) else _make_policy(args.policy)
    config = SBGTConfig(max_stages=args.max_stages, compact_classified=args.compact,
                        backend=args.backend)
    tracer = None
    if args.trace or args.chrome:
        from repro.obs import Tracer

        tracer = Tracer().install()
    recorder = None
    try:
        if args.backend == "dense":
            with Context(mode="threads", parallelism=args.workers) as ctx:
                if tracer is not None:
                    tracer.attach(ctx)
                recorder = ctx.flight_recorder
                session = SBGTSession(ctx, prior, model, config)
                result = session.run_screen(policy, rng=args.seed)
                session.close()
        else:
            session = SBGTSession(None, prior, model, config)
            result = session.run_screen(policy, rng=args.seed)
            session.close()
    finally:
        if tracer is not None:
            tracer.uninstall()
    if tracer is not None and args.trace:
        try:
            tracer.dump_jsonl(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace}: {exc}", file=sys.stderr)
        else:
            print(f"trace written to {args.trace}", file=sys.stderr)
    if args.chrome:
        from repro.obs import chrome_trace

        records = [span.to_dict() for span in tracer.spans] if tracer else []
        if recorder is not None:
            records.extend(recorder.events(limit=recorder.capacity))
        try:
            with open(args.chrome, "w", encoding="utf-8") as fh:
                json.dump(chrome_trace(records, title="screen"), fh)
        except OSError as exc:
            print(f"error: cannot write trace to {args.chrome}: {exc}", file=sys.stderr)
        else:
            print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    rows = [
        ["truly infected", str(result.cohort.positives())],
        ["called positive", str(result.report.positives())],
        ["undetermined", str(result.report.undetermined())],
        ["tests", result.efficiency.num_tests],
        ["tests/individual", f"{result.tests_per_individual:.3f}"],
        ["stages", result.stages_used],
        ["accuracy", f"{result.accuracy:.1%}"],
        ["sensitivity", f"{result.confusion.sensitivity:.1%}"],
        ["specificity", f"{result.confusion.specificity:.1%}"],
    ]
    print(format_table(["metric", "value"], rows, title=f"Screen ({policy.name})"))
    return 0


def _cmd_calculator(args: argparse.Namespace) -> int:
    from repro.serve.protocol import MAX_COHORT, MAX_COHORT_APPROX

    limit = MAX_COHORT if args.backend == "dense" else MAX_COHORT_APPROX
    if args.cohort < 1 or args.cohort > limit:
        hint = "dense lattice" if args.backend == "dense" else f"{args.backend} backend"
        print(f"error: --cohort must be in [1, {limit}] ({hint})", file=sys.stderr)
        return 2
    if args.json:
        from repro.serve.protocol import CalculatorRequest

        request = CalculatorRequest(
            cohort=args.cohort,
            prevalences=tuple(float(p) for p in args.prevalences),
            replications=args.replications,
            policy=_policy_spec(args.policy),
            seed=args.seed,
            backend=args.backend,
            assay=_assay_spec(args),
        )
        print(dump_payload(request.execute()), end="")
        return 0
    model = _make_model(args)
    policy_name = _policy_spec(args.policy)

    def factory() -> SelectionPolicy:
        return _make_policy(policy_name)

    entries = pooling_calculator(
        model,
        factory,
        prevalences=args.prevalences,
        cohort_size=args.cohort,
        replications=args.replications,
        rng=args.seed,
        backend=args.backend,
    )
    print(format_calculator_table(entries))
    return 0


def _cmd_surveillance(args: argparse.Namespace) -> int:
    from repro.simulate.epidemic import sir_prevalence

    model = _make_model(args)
    prevalence = sir_prevalence(args.days, args.beta, args.gamma, args.i0)
    campaign = run_surveillance(
        model, BHAPolicy, days=args.days, cohort_size=args.cohort,
        rng=args.seed, prevalence=prevalence, backend=args.backend,
    )
    rows = [
        [d.day, f"{d.prevalence:.1%}", d.result.efficiency.num_tests,
         f"{d.result.tests_per_individual:.2f}", f"{d.result.accuracy:.0%}"]
        for d in campaign.days
    ]
    print(format_table(
        ["day", "prevalence", "tests", "tests/ind", "accuracy"], rows,
        title="Surveillance campaign",
    ))
    print(f"\ntotals: {campaign.total_tests} tests / {campaign.total_individuals} "
          f"individuals = {campaign.overall_tests_per_individual:.2f} tests/individual; "
          f"{campaign.detected_positives()}/{campaign.true_positives_present()} positives found")
    return 0


def _cmd_surveil(args: argparse.Namespace) -> int:
    from repro.serve.protocol import BadRequest, SurveilRequest

    body = {
        "sites": args.sites,
        "cohort": args.cohort,
        "rounds": args.rounds,
        "budget": args.budget,
        "allocator": args.allocator,
        "policy": _policy_spec(args.policy),
        "fleet": args.fleet,
        "seed": args.seed,
        "max_stages": args.max_stages,
        "backend": args.backend,
        "assay": _assay_spec(args).canonical(),
    }
    try:
        request = SurveilRequest.from_payload(body)
    except BadRequest as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with Context(mode="threads", parallelism=args.workers) as ctx:
        recorder = ctx.flight_recorder
        payload = request.execute(ctx)
        if args.chrome:
            from repro.obs import chrome_trace

            records = recorder.events(limit=recorder.capacity) if recorder else []
            try:
                with open(args.chrome, "w", encoding="utf-8") as fh:
                    json.dump(chrome_trace(records, title="surveil"), fh)
            except OSError as exc:
                print(f"error: cannot write trace to {args.chrome}: {exc}",
                      file=sys.stderr)
            else:
                print(f"chrome trace written to {args.chrome}", file=sys.stderr)
    if args.json:
        print(dump_payload(payload), end="")
        return 0
    summary = payload["summary"]
    rows = [
        [r["round"], " ".join(str(a) for a in r["allocations"]),
         r["screens"], r["tests"], r["cases"]]
        for r in payload["rounds"]
    ]
    print(format_table(
        ["round", "allocations", "screens", "tests", "cases"], rows,
        title=f"Surveil campaign ({summary['allocator']} allocator)",
    ))
    site_rows = [
        [s["name"], s["kind"], f"{s['prevalence']:.1%}", s["screens"],
         s["tests"], s["cases"], f"{s['belief']['mean']:.1%}"]
        for s in payload["sites"]
    ]
    print()
    print(format_table(
        ["site", "kind", "prevalence", "screens", "tests", "cases", "belief"],
        site_rows, title="Sites",
    ))
    print(f"\ntotals: {summary['total_cases']} cases in {summary['total_screens']} "
          f"screens ({summary['cases_per_screen']:.2f} cases/screen), "
          f"{summary['total_tests']} tests "
          f"({summary['tests_per_case']:.1f} tests/case); "
          f"learned hyperprior mean {summary['hyperprior']['mean']:.1%}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.app import ServeConfig, serve

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            compute_threads=args.compute_threads,
            batch_window_s=args.batch_window_ms / 1000.0,
            cache_entries=args.cache_entries,
            max_inflight=args.max_inflight,
            max_sessions=args.max_sessions,
            session_ttl_s=args.session_ttl,
            engine_mode=args.engine_mode,
            flight_capacity=args.flight_capacity,
            slow_threshold_s=args.slow_threshold,
            default_backend=args.backend,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def ready(host: str, port: int) -> None:
        print(f"repro serve listening on http://{host}:{port}", file=sys.stderr)

    try:
        asyncio.run(serve(config, ready=ready))
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import HubMetricsListener

    prior = PriorSpec.uniform(args.cohort, args.prevalence)
    model = make_model("dilution", 0.98, 0.995, 0.3)
    config = SBGTConfig()
    with Context(mode=args.mode, parallelism=args.workers) as ctx:
        ctx.add_listener(HubMetricsListener(ctx.metrics_hub))
        session = SBGTSession(ctx, prior, model, config)
        session.run_screen(make_policy("bha"), rng=args.seed)
        session.close()
        if args.prom:
            print(ctx.metrics_hub.render_prometheus(), end="")
        else:
            print(json.dumps(ctx.metrics_hub.snapshot(), indent=2, sort_keys=True))
    return 0


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    rows = [[name, s.description] for name, s in sorted(SCENARIOS.items())]
    print(format_table(["name", "description"], rows, title="Scenario presets"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        with open(args.path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.path} is not JSON lines: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"error: {args.path} holds no records", file=sys.stderr)
        return 2

    if args.chrome:
        from repro.obs import chrome_trace, validate_chrome_trace

        doc = chrome_trace(records, title=args.path)
        if args.validate:
            try:
                n = validate_chrome_trace(doc)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"validated {n} trace event(s)", file=sys.stderr)
        try:
            with open(args.chrome, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)
        except OSError as exc:
            print(f"error: cannot write {args.chrome}: {exc}", file=sys.stderr)
            return 2
        print(f"chrome trace written to {args.chrome}", file=sys.stderr)
        return 0

    by_kind: dict = {}
    for rec in records:
        by_kind.setdefault(rec.get("record", "?"), []).append(rec)

    spans = by_kind.get("span", [])
    if spans:
        agg: dict = {}
        for s in spans:
            key = (s["phase"], s.get("label", ""))
            cnt, wall, self_s = agg.get(key, (0, 0.0, 0.0))
            agg[key] = (cnt + 1, wall + s["wall_s"], self_s + s.get("self_s", s["wall_s"]))
        rows = [
            [phase, label, cnt, f"{wall:.4f}", f"{self_s:.4f}"]
            for (phase, label), (cnt, wall, self_s) in sorted(
                agg.items(), key=lambda kv: -kv[1][2]
            )
        ]
        print(format_table(
            ["phase", "label", "spans", "wall (s)", "self (s)"], rows,
            title="Phase spans",
        ))

    summaries = by_kind.get("summary", [])
    if summaries:
        rows = [
            [phase or "(untagged)", f"{row['wall_s']:.4f}", int(row["spans"]),
             int(row["jobs"]), int(row["tasks"])]
            for phase, row in sorted(summaries[-1].get("phases", {}).items())
        ]
        print(format_table(
            ["phase", "wall (s)", "spans", "jobs", "tasks"], rows,
            title="Per-phase totals",
        ))

    stages = by_kind.get("stage", [])
    if stages:
        rows = [
            [st["stage"], st["pools_proposed"], st["tests_run"],
             f"{st['entropy_drop']:.4f}" if st.get("entropy_drop") is not None else "-",
             st["states_pruned"], f"{st['wall_s']:.4f}"]
            for st in stages
        ]
        print(format_table(
            ["stage", "pools", "tests", "dH", "pruned", "wall (s)"], rows,
            title="Screen stages",
        ))

    jobs = by_kind.get("job", [])
    if jobs:
        rows = [
            [j["job_id"], j.get("description", "") or "-", len(j.get("stages", [])),
             sum(s.get("num_tasks", 0) for s in j.get("stages", [])),
             f"{j['wall_s']:.4f}"]
            for j in jobs
        ]
        print(format_table(
            ["job", "description", "stages", "tasks", "wall (s)"], rows,
            title="Engine jobs",
        ))

    known = sum(len(by_kind.get(k, [])) for k in ("span", "stage", "summary", "job"))
    if known < len(records):
        print(f"({len(records) - known} unrecognized record(s) skipped)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (
        RULES,
        LintError,
        filter_new_findings,
        format_explain,
        format_json,
        format_sarif,
        format_text,
        lint_paths,
        load_baseline,
        write_baseline,
    )

    if args.explain:
        wanted = sorted(RULES) if args.explain.lower() == "all" else [args.explain.upper()]
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            print(
                f"error: unknown rule {', '.join(unknown)} "
                f"(known: {', '.join(sorted(RULES))})",
                file=sys.stderr,
            )
            return 2
        print("\n".join(format_explain(RULES[r]) for r in wanted), end="")
        return 0

    paths = args.paths or [p for p in ("src", "examples", "benchmarks") if Path(p).is_dir()]
    if not paths:
        print("error: no paths given and no default directories found", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.baseline and args.write_baseline:
        print("error: --baseline and --write-baseline are mutually exclusive",
              file=sys.stderr)
        return 2
    try:
        findings, files_checked = lint_paths(
            paths, select=select, ignore=ignore,
            jobs=args.jobs, cache_path=args.cache,
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        recorded = write_baseline(args.write_baseline, findings)
        print(f"baseline: recorded {recorded} finding(s) to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        known = len(findings)
        findings = filter_new_findings(findings, baseline)
        suppressed = known - len(findings)
        if suppressed:
            print(f"baseline: {suppressed} known finding(s) suppressed",
                  file=sys.stderr)

    if args.fmt == "json":
        formatter = format_json
    elif args.fmt == "sarif":
        formatter = format_sarif
    else:
        formatter = format_text
    report = formatter(findings, files_checked)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    if any(f.rule == "X001" for f in findings):
        return 2
    return 1 if findings else 0


_COMMANDS = {
    "screen": _cmd_screen,
    "calculator": _cmd_calculator,
    "surveillance": _cmd_surveillance,
    "surveil": _cmd_surveil,
    "scenarios": _cmd_scenarios,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    if getattr(args, "profile", None):
        with _profiled(args, title=f"repro {args.command}"):
            return handler(args)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
