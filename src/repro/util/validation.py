"""Argument-validation helpers shared across the public API surface."""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "check_probability",
    "check_probability_array",
    "check_positive_int",
    "check_in_range",
]


def check_probability(value: float, name: str = "value") -> float:
    """Validate a scalar probability in [0, 1] and return it as float."""
    v = float(value)
    if not np.isfinite(v) or not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return v


def check_probability_array(values: Any, name: str = "values") -> np.ndarray:
    """Validate an array of probabilities in [0, 1]; returns float64 array."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)) or np.any(arr < 0.0) or np.any(arr > 1.0):
        raise ValueError(f"{name} must contain probabilities in [0, 1]")
    return arr


def check_positive_int(value: Any, name: str = "value") -> int:
    """Validate a strictly positive integer and return it as int."""
    v = int(value)
    if v != value or v <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return v


def check_in_range(value: float, lo: float, hi: float, name: str = "value") -> float:
    """Validate ``lo <= value <= hi`` and return it as float."""
    v = float(value)
    if not np.isfinite(v) or not lo <= v <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return v
