"""Vectorised bit-mask kernels used by the lattice representation.

Lattice states are encoded as ``uint64`` bit masks: bit ``i`` set means
individual ``i`` is infected in that state.  All kernels below operate on
whole NumPy arrays of masks at once; no per-state Python loops.  These are
the innermost primitives of every hot path in the library, so they stick to
branch-free integer arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "MAX_ITEMS",
    "mask_from_indices",
    "indices_from_mask",
    "as_mask_array",
    "popcount64",
    "popcount_any",
    "intersect_count",
    "is_subset",
    "bit_column",
]

#: Maximum number of individuals representable in a single uint64 mask.
MAX_ITEMS = 64

# SWAR popcount constants (Hacker's Delight, fig. 5-2), as unsigned 64-bit.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SHIFT56 = np.uint64(56)


def mask_from_indices(indices: Iterable[int]) -> np.uint64:
    """Build a uint64 mask with the given bit positions set.

    Parameters
    ----------
    indices:
        Iterable of bit positions in ``[0, 64)``.  Duplicates are allowed
        and collapse to a single set bit.
    """
    mask = 0
    for i in indices:
        i = int(i)
        if not 0 <= i < MAX_ITEMS:
            raise ValueError(f"bit index {i} outside [0, {MAX_ITEMS})")
        mask |= 1 << i
    return np.uint64(mask)


def indices_from_mask(mask: int) -> list[int]:
    """Return the sorted list of set-bit positions of *mask*."""
    mask = int(mask)
    if mask < 0:
        raise ValueError("mask must be non-negative")
    out = []
    pos = 0
    while mask:
        if mask & 1:
            out.append(pos)
        mask >>= 1
        pos += 1
    return out


def as_mask_array(masks: Iterable[int]) -> np.ndarray:
    """Pack masks into a NumPy array, widening past 64 bits when needed.

    Cohorts up to :data:`MAX_ITEMS` individuals pack into ``uint64``
    (the fast path every lattice kernel assumes); larger cohorts — the
    approximate posterior backends go well past 64 — fall back to an
    ``object`` array of Python ints, which keeps exact bitwise semantics
    at the cost of vectorisation.
    """
    vals = [int(m) for m in masks]
    if all(0 <= v < (1 << MAX_ITEMS) for v in vals):
        return np.asarray(vals, dtype=np.uint64)
    return np.asarray(vals, dtype=object)


def popcount_any(masks: np.ndarray) -> np.ndarray:
    """Population count accepting uint64 *or* object (big-int) arrays."""
    arr = np.asarray(masks)
    if arr.dtype == object:
        return np.asarray([int(m).bit_count() for m in arr], dtype=np.int64)
    return popcount64(arr)


def _popcount64_swar(masks: np.ndarray) -> np.ndarray:
    """SWAR popcount (Hacker's Delight fig. 5-2) for NumPy < 2.0."""
    x = np.ascontiguousarray(masks, dtype=np.uint64)
    x = x - ((x >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return ((x * _H01) >> _SHIFT56).astype(np.int64)


def _popcount64_native(masks: np.ndarray) -> np.ndarray:
    """Hardware popcount via ``np.bitwise_count`` (NumPy ≥ 2.0).

    Measured ~14× faster than the SWAR chain on this build — it is the
    innermost op of every Bayes update and down-set sweep, so the
    dispatch below is worth its one-time check.
    """
    return np.bitwise_count(np.ascontiguousarray(masks, dtype=np.uint64)).astype(
        np.int64
    )


if hasattr(np, "bitwise_count"):
    _popcount64_impl = _popcount64_native
else:  # pragma: no cover - depends on installed NumPy
    _popcount64_impl = _popcount64_swar


def popcount64(masks: np.ndarray) -> np.ndarray:
    """Per-element population count of a uint64 array.

    Returns an ``int64`` array of the same shape.  This is the vectorised
    replacement for per-state ``bin(s).count('1')`` loops in the baseline;
    uses the hardware instruction on NumPy ≥ 2.0, SWAR otherwise.
    """
    return _popcount64_impl(masks)


def intersect_count(masks: np.ndarray, pool_mask: int) -> np.ndarray:
    """Number of infected individuals each state places inside *pool_mask*.

    For a pooled test of the individuals in ``pool_mask`` this is the
    per-state positive count ``k`` that the dilution likelihood
    ``f(y | k, n)`` depends on.
    """
    return popcount64(np.asarray(masks, dtype=np.uint64) & np.uint64(pool_mask))


def is_subset(masks: np.ndarray, super_mask: int) -> np.ndarray:
    """Boolean array: does each state lie entirely inside *super_mask*?"""
    m = np.asarray(masks, dtype=np.uint64)
    return (m & ~np.uint64(super_mask)) == np.uint64(0)


def bit_column(masks: np.ndarray, bit: int) -> np.ndarray:
    """Boolean array: is *bit* set in each mask?  (Marginal indicator.)"""
    if not 0 <= bit < MAX_ITEMS:
        raise ValueError(f"bit index {bit} outside [0, {MAX_ITEMS})")
    m = np.asarray(masks, dtype=np.uint64)
    return (m >> np.uint64(bit)) & np.uint64(1) == np.uint64(1)


def masks_for_pool(pool: Sequence[int]) -> np.uint64:
    """Alias of :func:`mask_from_indices` reading better at call sites."""
    return mask_from_indices(pool)
