"""Deterministic random-number-generator plumbing.

Every stochastic API in the library accepts ``rng`` as either a seed, a
``numpy.random.Generator``, or ``None`` and normalises it through
:func:`as_rng`, so whole experiments replay bit-identically from one seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["as_rng", "spawn_rngs", "RngLike"]


def as_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce *rng* into a ``numpy.random.Generator``.

    ``None`` yields a fresh non-deterministic generator; an int seeds one;
    an existing generator passes through untouched (shared mutable state —
    intentional, so sequential calls advance one stream).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {type(rng).__name__} as an RNG")


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators (for per-worker streams)."""
    if n < 0:
        raise ValueError("n must be non-negative")
    base = as_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
