"""Shared low-level utilities: bit manipulation, RNG handling, validation.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.util.bits import (
    mask_from_indices,
    indices_from_mask,
    popcount64,
    intersect_count,
    is_subset,
)
from repro.util.numerics import log1mexp
from repro.util.rng import as_rng, spawn_rngs
from repro.util.timer import Timer, WallClock
from repro.util.validation import (
    check_probability,
    check_probability_array,
    check_positive_int,
    check_in_range,
)

__all__ = [
    "mask_from_indices",
    "indices_from_mask",
    "popcount64",
    "intersect_count",
    "is_subset",
    "log1mexp",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "WallClock",
    "check_probability",
    "check_probability_array",
    "check_positive_int",
    "check_in_range",
]
