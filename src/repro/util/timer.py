"""Wall-clock timing helpers used by the benchmark harness and metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Timer", "WallClock"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


@dataclass
class WallClock:
    """Named accumulating timers (e.g. 'update', 'select', 'analyze').

    Collects a list of samples per label so reports can show totals,
    means and counts per operation class.
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, label: str, seconds: float) -> None:
        self.samples.setdefault(label, []).append(float(seconds))

    def time(self, label: str) -> "_ClockCtx":
        return _ClockCtx(self, label)

    def total(self, label: str) -> float:
        return float(sum(self.samples.get(label, ())))

    def count(self, label: str) -> int:
        return len(self.samples.get(label, ()))

    def mean(self, label: str) -> float:
        xs = self.samples.get(label, ())
        return float(sum(xs) / len(xs)) if xs else 0.0

    def merge(self, other: "WallClock") -> None:
        for label, xs in other.samples.items():
            self.samples.setdefault(label, []).extend(xs)

    def report(self) -> Dict[str, Dict[str, float]]:
        return {
            label: {
                "total_s": self.total(label),
                "mean_s": self.mean(label),
                "count": float(self.count(label)),
            }
            for label in sorted(self.samples)
        }


class _ClockCtx:
    def __init__(self, clock: WallClock, label: str) -> None:
        self._clock = clock
        self._label = label
        self._start = 0.0

    def __enter__(self) -> "_ClockCtx":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._clock.record(self._label, time.perf_counter() - self._start)
