"""Numerically stable log-space helpers.

The group-testing code spends its life in log space; the classic trap is
``log(1 - exp(x))`` for ``x`` near 0 or very negative.  ``log1mexp``
implements the standard two-branch formulation (Mächler 2012): for
``x > -ln 2`` use ``log(-expm1(x))`` (``1 - e^x`` loses precision but
``expm1`` does not), otherwise ``log1p(-exp(x))`` (``e^x`` is tiny, so
``log1p`` keeps the leading digits).
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["log1mexp"]

_LOG_HALF = float(np.log(0.5))  # -ln 2, the branch point


def log1mexp(x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
    """Stable ``log(1 - exp(x))`` for ``x <= 0``.

    Returns ``-inf`` at ``x == 0`` (and for tiny positive drift, which a
    renormalisation residual can legitimately produce); raises for
    genuinely positive ``x`` where ``1 - e^x`` is negative.
    """
    arr = np.asarray(x, dtype=np.float64)
    if np.any(arr > 1e-9):
        raise ValueError("log1mexp requires x <= 0 (1 - exp(x) must be non-negative)")
    arr = np.minimum(arr, 0.0)
    with np.errstate(divide="ignore"):  # log(0) -> -inf is the wanted answer
        out = np.where(
            arr > _LOG_HALF,
            np.log(-np.expm1(arr)),
            np.log1p(-np.exp(arr)),
        )
    if np.isscalar(x) or np.ndim(x) == 0:
        return float(out)
    return out
