"""The DAG scheduler: stages → tasks → results.

``run_job`` is the single entry point every RDD action funnels through.
It builds the stage graph for the target RDD, executes missing
shuffle-map stages bottom-up (skipping shuffles already materialized —
the payoff of caching lineage), then runs the result stage applying the
action's partition function, and merges accumulator deltas exactly once
per successful task.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.dag import Stage, build_stages
from repro.engine.errors import JobFailedError
from repro.engine.executor import Task, TaskEnv
from repro.engine.listener import JobEnd, JobStart, StageEnd, StageStart
from repro.engine.metrics import JobMetrics, StageMetrics, TaskMetrics
from repro.engine.rdd import RDD, TaskContext
from repro.engine.tracing import EPOCH_OFFSET, current_trace_id

__all__ = ["Scheduler"]


def _installed_profile_hz() -> float:
    """Sampling rate of the installed profiler (0.0 = not profiling).

    Imported lazily — :mod:`repro.obs` sits above the engine (the
    flight-recorder precedent in :class:`~repro.engine.context.Context`).
    """
    try:
        from repro.obs.sampler import current_profile_hz
    except ImportError:  # pragma: no cover - obs layer always ships
        return 0.0
    return current_profile_hz()


def _make_map_body(rdd: RDD, partition: int, stage_id: int, dep) -> Callable[[TaskEnv], list]:
    """Build the closure a shuffle-map task runs: compute + bucket."""

    def body(env: TaskEnv) -> list:
        tc = TaskContext(env, stage_id, partition)
        part = dep.partitioner
        agg = dep.aggregator
        buckets: List[list] = [[] for _ in range(part.num_partitions)]
        records = rdd.iterator(partition, tc)
        if agg is not None and agg.map_side_combine:
            combiners: dict = {}
            for k, v in records:
                if k in combiners:
                    combiners[k] = agg.merge_value(combiners[k], v)
                else:
                    combiners[k] = agg.create(v)
            for k, c in combiners.items():
                buckets[part.partition(k)].append((k, c))
        else:
            for k, v in records:
                buckets[part.partition(k)].append((k, v))
        return buckets

    return body


def _make_result_body(
    rdd: RDD, partition: int, stage_id: int, func: Callable
) -> Callable[[TaskEnv], Any]:
    def body(env: TaskEnv) -> Any:
        tc = TaskContext(env, stage_id, partition)
        return func(rdd.iterator(partition, tc))

    return body


class Scheduler:
    """Drives stage-ordered execution for one :class:`Context`."""

    def __init__(self, ctx) -> None:
        self._ctx = ctx
        self._job_ids = itertools.count()

    # ------------------------------------------------------------------
    def run_job(
        self,
        rdd: RDD,
        func: Callable,
        partitions: Optional[Sequence[int]] = None,
        description: str = "",
    ) -> List[Any]:
        """Execute ``func`` over the given partitions of *rdd*.

        Returns one value per requested partition, in request order.
        """
        ctx = self._ctx
        ctx.ensure_running()
        bus = ctx.event_bus
        job = JobMetrics(job_id=next(self._job_ids), description=description)
        job.trace_id = current_trace_id()
        t_job = time.perf_counter()
        job.t0_wall = t_job + EPOCH_OFFSET
        if bus:
            bus.post(JobStart(job_id=job.job_id, description=description))

        succeeded = False
        try:
            final_stage = build_stages(rdd)
            for stage in self._topo_order(final_stage):
                if stage.shuffle_dep is None:
                    continue
                if ctx.shuffle_manager.is_materialized(stage.shuffle_dep.shuffle_id):
                    continue
                self._run_map_stage(stage, job)

            if partitions is None:
                partitions = range(rdd.num_partitions)
            else:
                for p in partitions:
                    if not 0 <= p < rdd.num_partitions:
                        raise JobFailedError(
                            f"partition {p} out of range for RDD with "
                            f"{rdd.num_partitions} partitions"
                        )
            results = self._run_result_stage(final_stage, func, list(partitions), job)
            succeeded = True
        except Exception as exc:
            # Failure post-mortem: ship the flight recorder's last event
            # window with the exception so the caller sees what the
            # engine was doing when the job died.
            recorder = getattr(ctx, "flight_recorder", None)
            if recorder is not None and getattr(exc, "post_mortem", None) is None:
                try:
                    exc.post_mortem = recorder.tail(64)
                except (AttributeError, TypeError):  # exceptions with __slots__
                    pass
            raise
        finally:
            t1 = time.perf_counter()
            job.wall_s = t1 - t_job
            job.t1_wall = t1 + EPOCH_OFFSET
            job.succeeded = succeeded
            ctx.metrics.record(job)
            if bus:
                bus.post(JobEnd(job_id=job.job_id, wall_s=job.wall_s, succeeded=succeeded))
        return results

    # ------------------------------------------------------------------
    def _topo_order(self, final: Stage) -> List[Stage]:
        """Post-order over the stage DAG (parents before children)."""
        order: List[Stage] = []
        seen = set()

        def visit(stage: Stage) -> None:
            if stage.id in seen:
                return
            seen.add(stage.id)
            for p in stage.parents:
                visit(p)
            order.append(stage)

        visit(final)
        return order

    def _attach_payloads(self, tasks: List[Task], rdd: RDD, parts: List[int]) -> None:
        """Process mode: assemble each task's self-contained data plane.

        One walk of the task partition's narrow lineage collects
        everything the worker cannot reach from its own process:

        * shuffle buckets the task will fetch,
        * cache generations of every cached RDD (so the worker-resident
          store can serve entries across jobs yet drop stale ones),
        * the task's own partitions of driver-held source RDDs (whose
          pickles deliberately ship without data).
        """
        ctx = self._ctx
        if ctx.config.mode != "processes":
            return
        mgr = ctx.shuffle_manager
        worker_cache_bytes = ctx.config.worker_cache_capacity_bytes
        profile_hz = _installed_profile_hz()
        for task, p in zip(tasks, parts):
            task.profile_hz = profile_hz
            shuffle: Dict[Tuple[int, int], list] = {}
            gens: Dict[int, int] = {}
            sources: Dict[Tuple[int, int], list] = {}
            for node, sp in rdd.narrow_lineage(p):
                for sid, rid in node._direct_shuffle_reads(sp):
                    shuffle[(sid, rid)] = mgr.gather_payload(sid, rid)
                if node._cached:
                    gens[node.id] = ctx.cache_generation(node.id)
                src = node.source_records(sp)
                if src is not None:
                    sources[(node.id, sp)] = src
            task.shuffle_payload = shuffle
            task.cache_generations = gens
            task.source_payload = sources
            task.worker_cache_bytes = worker_cache_bytes

    def _run_map_stage(self, stage: Stage, job: JobMetrics) -> None:
        ctx = self._ctx
        dep = stage.shuffle_dep
        assert dep is not None
        n = stage.rdd.num_partitions
        ctx.shuffle_manager.expect(dep.shuffle_id, n)
        parts = list(range(n))
        tasks = [
            Task(stage.id, p, _make_map_body(stage.rdd, p, stage.id, dep)) for p in parts
        ]
        self._attach_payloads(tasks, stage.rdd, parts)
        bus = ctx.event_bus
        sm = StageMetrics(stage.id, "shuffle-map", num_tasks=n)
        t0 = time.perf_counter()
        if bus:
            bus.post(StageStart(stage.id, "shuffle-map", n, job.job_id))
        results = ctx.executor.submit(tasks)
        for res in results:
            ctx.shuffle_manager.put(dep.shuffle_id, res.partition, res.value)
            ctx.accumulator_registry.merge_deltas(res.acc_deltas)
            sm.tasks.append(
                TaskMetrics(
                    stage.id,
                    res.partition,
                    res.wall_s,
                    attempts=res.attempts,
                    cpu_s=res.cpu_s,
                    rss_peak_kb=res.rss_peak_kb,
                    gc_collections=res.gc_collections,
                )
            )
        sm.wall_s = time.perf_counter() - t0
        job.stages.append(sm)
        if bus:
            bus.post(StageEnd(stage.id, "shuffle-map", sm.wall_s, job.job_id))

    def _run_result_stage(
        self, stage: Stage, func: Callable, parts: List[int], job: JobMetrics
    ) -> List[Any]:
        ctx = self._ctx
        tasks = [
            Task(stage.id, p, _make_result_body(stage.rdd, p, stage.id, func)) for p in parts
        ]
        self._attach_payloads(tasks, stage.rdd, parts)
        bus = ctx.event_bus
        sm = StageMetrics(stage.id, "result", num_tasks=len(parts))
        t0 = time.perf_counter()
        if bus:
            bus.post(StageStart(stage.id, "result", len(parts), job.job_id))
        results = ctx.executor.submit(tasks)
        by_partition = {res.partition: res for res in results}
        out: List[Any] = []
        for p in parts:
            res = by_partition[p]
            ctx.accumulator_registry.merge_deltas(res.acc_deltas)
            sm.tasks.append(
                TaskMetrics(
                    stage.id,
                    p,
                    res.wall_s,
                    attempts=res.attempts,
                    cpu_s=res.cpu_s,
                    rss_peak_kb=res.rss_peak_kb,
                    gc_collections=res.gc_collections,
                )
            )
            out.append(res.value)
        sm.wall_s = time.perf_counter() - t0
        job.stages.append(sm)
        if bus:
            bus.post(StageEnd(stage.id, "result", sm.wall_s, job.job_id))
        return out
