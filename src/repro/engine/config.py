"""Engine configuration.

The configuration mirrors the knobs the paper's Spark deployment exposes
(executor count, default parallelism, shuffle partitions) plus the
execution-mode switch that replaces cluster deployment in this
reproduction: ``serial`` (debugging / baseline), ``threads`` (default —
NumPy kernels release the GIL so partition tasks genuinely overlap), and
``processes`` (fork-based isolation, closest to separate executors).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace


__all__ = ["EngineConfig", "ExecMode"]

ExecMode = str  # "serial" | "threads" | "processes"

_VALID_MODES = ("serial", "threads", "processes")


@dataclass(frozen=True)
class EngineConfig:
    """Immutable engine settings.

    Parameters
    ----------
    mode:
        Execution backend: ``"serial"``, ``"threads"`` or ``"processes"``.
    parallelism:
        Number of concurrent task slots (and the default partition count
        for new RDDs).  ``0`` means "number of CPUs".
    shuffle_partitions:
        Default reduce-side partition count for shuffles; ``0`` mirrors
        ``parallelism``.
    max_task_retries:
        How many times a failing task is retried before the job aborts.
    cache_capacity_bytes:
        LRU budget of the block store for ``cache()``-ed partitions.
    worker_cache_capacity_bytes:
        Process mode only: LRU budget of each forked worker's resident
        block store (every worker holds its own).  Smaller than the
        driver budget by default because the total is multiplied by the
        worker count.
    task_batch_size:
        Hint: number of tasks handed to the executor per submission wave.
    enable_events:
        Master switch of the listener bus.  ``False`` hard-disables
        event delivery even with listeners registered (overhead
        experiments); the default ``True`` still costs nothing until a
        listener subscribes.
    flight_recorder:
        Register the always-on :class:`~repro.obs.flight.FlightRecorder`
        on the context's bus (the black box behind ``/debug`` endpoints
        and failure post-mortems).  Requires ``enable_events``.
    flight_capacity:
        Ring-buffer size of the flight recorder, events.
    slow_threshold_s:
        Operations (tasks, stages, jobs, requests) slower than this are
        copied into the recorder's slow-op log.
    lock_sanitizer:
        Runtime lock-order sanitizer mode applied when the context is
        created: ``"off"``, ``"record"`` (log violations, post bus
        events, count them in the hub) or ``"raise"`` (fail loudly at
        the inverted acquisition).  The default ``""`` leaves the
        process-wide mode alone (i.e. whatever ``REPRO_LOCK_SANITIZER``
        or an earlier :func:`repro.engine.lockorder.set_sanitizer_mode`
        call selected).
    """

    mode: ExecMode = "threads"
    parallelism: int = 0
    shuffle_partitions: int = 0
    max_task_retries: int = 2
    cache_capacity_bytes: int = 1 << 30
    worker_cache_capacity_bytes: int = 256 << 20
    task_batch_size: int = 64
    enable_events: bool = True
    flight_recorder: bool = True
    flight_capacity: int = 4096
    slow_threshold_s: float = 0.1
    lock_sanitizer: str = ""

    def __post_init__(self) -> None:
        if self.mode not in _VALID_MODES:
            raise ValueError(f"mode must be one of {_VALID_MODES}, got {self.mode!r}")
        if self.parallelism < 0:
            raise ValueError("parallelism must be >= 0")
        if self.shuffle_partitions < 0:
            raise ValueError("shuffle_partitions must be >= 0")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.cache_capacity_bytes <= 0:
            raise ValueError("cache_capacity_bytes must be positive")
        if self.worker_cache_capacity_bytes <= 0:
            raise ValueError("worker_cache_capacity_bytes must be positive")
        if self.flight_capacity <= 0:
            raise ValueError("flight_capacity must be positive")
        if self.slow_threshold_s < 0:
            raise ValueError("slow_threshold_s must be >= 0")
        if self.lock_sanitizer not in ("", "off", "record", "raise"):
            raise ValueError(
                "lock_sanitizer must be '', 'off', 'record' or 'raise', "
                f"got {self.lock_sanitizer!r}"
            )

    @property
    def effective_parallelism(self) -> int:
        if self.parallelism:
            return self.parallelism
        return max(1, os.cpu_count() or 1)

    @property
    def effective_shuffle_partitions(self) -> int:
        return self.shuffle_partitions or self.effective_parallelism

    def with_(self, **kwargs) -> "EngineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
