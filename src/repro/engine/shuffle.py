"""Partitioners and the in-memory shuffle subsystem.

A shuffle decouples two stages: map-side tasks bucket their output records
by ``partitioner(key)`` and register the buckets with the
:class:`ShuffleManager`; reduce-side tasks fetch every map task's bucket
for their reduce partition through a :class:`ShuffleFetcher`.

Two fetchers exist because of the execution modes:

* :class:`LocalShuffleFetcher` reads the driver-resident manager directly
  (serial / thread executors share the driver address space).
* :class:`PayloadShuffleFetcher` wraps buckets that the scheduler copied
  into the task payload before shipping it to a worker process.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.errors import ShuffleFetchError
from repro.engine.listener import EventBus, ShuffleFetch, ShuffleWrite
from repro.engine.lockorder import OrderedLock

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "ShuffleManager",
    "ShuffleFetcher",
    "LocalShuffleFetcher",
    "PayloadShuffleFetcher",
    "stable_hash",
]


def _blake_int(data: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def stable_hash(key: Hashable) -> int:
    """A ``hash()`` replacement that is stable across interpreter runs.

    Builtin ``hash`` salts ``str``/``bytes`` with ``PYTHONHASHSEED``, so
    two runs of the same program can route the same key to different
    shuffle partitions — fine for a single job, fatal for comparing runs
    or resuming from persisted shuffle output.  This function hashes text
    and byte keys with blake2b and recurses into containers; numbers (and
    everything else) keep builtin ``hash`` because numeric hashing is
    unsalted and must stay consistent with ``==`` across types
    (``hash(2) == hash(2.0)`` keeps ``2`` and ``2.0`` co-partitioned).
    """
    if isinstance(key, str):
        return _blake_int(key.encode("utf-8"))
    if isinstance(key, (bytes, bytearray)):
        return _blake_int(bytes(key))
    if isinstance(key, tuple):
        mask = (1 << 64) - 1
        acc = b"".join((stable_hash(el) & mask).to_bytes(8, "big") for el in key)
        return _blake_int(acc)
    if isinstance(key, frozenset):
        # Order-independent: XOR the element hashes.
        acc = 0
        for el in key:
            acc ^= stable_hash(el) & ((1 << 64) - 1)
        return acc
    return hash(key)


class Partitioner:
    """Maps keys to reduce-partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = int(num_partitions)

    def partition(self, key: Hashable) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """``stable_hash(key) mod p`` — the default for key-value shuffles.

    Uses :func:`stable_hash` rather than builtin ``hash`` so partition
    assignments are identical across interpreter runs regardless of
    ``PYTHONHASHSEED``.
    """

    def partition(self, key: Hashable) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Order-preserving partitioner over sampled split points.

    Used by ``sort_by``: partition ``i`` receives keys in
    ``(bounds[i-1], bounds[i]]`` so concatenating sorted partitions yields
    a globally sorted dataset.
    """

    def __init__(self, bounds: Sequence[Any], ascending: bool = True) -> None:
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)
        self.ascending = ascending

    def partition(self, key: Any) -> int:
        import bisect

        idx = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            idx = self.num_partitions - 1 - idx
        return idx

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.bounds == other.bounds
            and self.ascending == other.ascending
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(self.bounds), self.ascending))


Bucket = List[Tuple[Hashable, Any]]


def _bucket_buffer_bytes(buckets: Iterable[Bucket]) -> int:
    """NumPy bytes inside shuffle records — what rides out-of-band.

    Values that are arrays (or tuples containing arrays, the lattice
    block idiom) transfer as raw protocol-5 buffers in process mode;
    this sum feeds the ``buffer_bytes`` field of shuffle events.
    """
    total = 0
    for bucket in buckets:
        for _k, v in bucket:
            if isinstance(v, np.ndarray):
                total += v.nbytes
            elif isinstance(v, tuple):
                total += sum(x.nbytes for x in v if isinstance(x, np.ndarray))
    return total


class ShuffleManager:
    """Driver-resident store of map-output buckets.

    Layout: ``blocks[shuffle_id][map_id][reduce_id] -> bucket``.  A shuffle
    id is "registered" once every map task has reported, which is the
    scheduler's signal that reduce stages may run.
    """

    def __init__(self, bus: Optional[EventBus] = None) -> None:
        self._blocks: Dict[int, Dict[int, List[Bucket]]] = {}
        self._complete: Dict[int, int] = {}  # shuffle_id -> expected map tasks
        self._lock = OrderedLock("ShuffleManager._lock")
        self._ids = itertools.count()
        self._bus = bus

    def new_shuffle_id(self) -> int:
        with self._lock:
            return next(self._ids)

    def expect(self, shuffle_id: int, num_map_tasks: int) -> None:
        with self._lock:
            self._complete[shuffle_id] = num_map_tasks
            self._blocks.setdefault(shuffle_id, {})

    def put(self, shuffle_id: int, map_id: int, buckets: List[Bucket]) -> None:
        with self._lock:
            self._blocks.setdefault(shuffle_id, {})[map_id] = buckets
        bus = self._bus
        if bus:
            bus.post(
                ShuffleWrite(
                    shuffle_id,
                    map_id,
                    sum(len(b) for b in buckets),
                    buffer_bytes=_bucket_buffer_bytes(buckets),
                )
            )

    def is_materialized(self, shuffle_id: int) -> bool:
        with self._lock:
            expected = self._complete.get(shuffle_id)
            if expected is None:
                return False
            return len(self._blocks.get(shuffle_id, {})) >= expected

    def fetch(self, shuffle_id: int, reduce_id: int) -> Iterator[Tuple[Hashable, Any]]:
        with self._lock:
            maps = self._blocks.get(shuffle_id)
            if maps is None:
                raise ShuffleFetchError(f"shuffle {shuffle_id} has no map output")
            buckets = [maps[m][reduce_id] for m in sorted(maps)]
        bus = self._bus
        if bus:
            bus.post(
                ShuffleFetch(
                    shuffle_id, reduce_id, buffer_bytes=_bucket_buffer_bytes(buckets)
                )
            )
        return itertools.chain.from_iterable(buckets)

    def gather_payload(self, shuffle_id: int, reduce_id: int) -> Bucket:
        """Materialize one reduce partition's records for a task payload."""
        return list(self.fetch(shuffle_id, reduce_id))

    def remove(self, shuffle_id: int) -> None:
        with self._lock:
            self._blocks.pop(shuffle_id, None)
            self._complete.pop(shuffle_id, None)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._complete.clear()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            n_records = sum(
                len(bucket)
                for maps in self._blocks.values()
                for buckets in maps.values()
                for bucket in buckets
            )
            return {"shuffles": len(self._blocks), "records": n_records}


class ShuffleFetcher:
    """Reduce-side view of map output (mode-dependent implementation)."""

    def fetch(self, shuffle_id: int, reduce_id: int) -> Iterable[Tuple[Hashable, Any]]:
        raise NotImplementedError  # pragma: no cover - abstract


class LocalShuffleFetcher(ShuffleFetcher):
    """Reads buckets straight out of the shared driver manager."""

    def __init__(self, manager: ShuffleManager) -> None:
        self._manager = manager

    def fetch(self, shuffle_id: int, reduce_id: int) -> Iterable[Tuple[Hashable, Any]]:
        return self._manager.fetch(shuffle_id, reduce_id)


class PayloadShuffleFetcher(ShuffleFetcher):
    """Reads buckets copied into the task payload (process mode)."""

    def __init__(self, payload: Dict[Tuple[int, int], Bucket]) -> None:
        self._payload = payload

    def fetch(self, shuffle_id: int, reduce_id: int) -> Iterable[Tuple[Hashable, Any]]:
        try:
            return self._payload[(shuffle_id, reduce_id)]
        except KeyError:
            raise ShuffleFetchError(
                f"payload missing shuffle={shuffle_id} reduce={reduce_id}"
            ) from None
