"""Broadcast variables.

A broadcast wraps a read-only value the driver wants every task to see
(candidate pool tables, dilution likelihood caches, ...).  In thread and
serial modes tasks share the driver's object directly (zero copy).  In
process mode the value rides along with the task payload once and is
memoised per worker process in ``_WORKER_CACHE`` keyed by broadcast id, so
repeated tasks on the same worker deserialize it only once.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Generic, Optional, TypeVar

from repro.engine.lockorder import OrderedLock

__all__ = ["Broadcast"]

T = TypeVar("T")

_ids = itertools.count()
_ids_lock = OrderedLock("_ids_lock")

# Worker-process-side cache: bc_id -> value.  Populated by the executor
# when it unpacks a task payload.  In thread mode it is simply unused.
_WORKER_CACHE: Dict[int, Any] = {}


def _next_id() -> int:
    with _ids_lock:
        return next(_ids)


class Broadcast(Generic[T]):
    """Handle to a driver-published read-only value."""

    __slots__ = ("id", "_value", "_destroyed")

    def __init__(self, value: T) -> None:
        self.id = _next_id()
        self._value: Optional[T] = value
        self._destroyed = False

    @property
    def value(self) -> T:
        """The broadcast value (worker cache first, then driver copy)."""
        if self._destroyed:
            raise ValueError(f"broadcast {self.id} has been destroyed")
        if self._value is None and self.id in _WORKER_CACHE:
            self._value = _WORKER_CACHE[self.id]
        if self._value is None:
            raise ValueError(f"broadcast {self.id} has no value on this worker")
        return self._value

    def destroy(self) -> None:
        """Release the driver-side reference (tasks must not use it after)."""
        self._destroyed = True
        self._value = None
        _WORKER_CACHE.pop(self.id, None)

    # -- pickling: ship (id, value); worker side repopulates the cache ----
    def __getstate__(self):
        return (self.id, self._value, self._destroyed)

    def __setstate__(self, state):
        self.id, value, self._destroyed = state
        if value is not None:
            _WORKER_CACHE[self.id] = value
        self._value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Broadcast(id={self.id})"
